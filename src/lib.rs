//! # nestwx — divide-and-conquer scheduling for multi-nest weather simulations
//!
//! This is the façade crate of the `nestwx` workspace, a reproduction of
//! *"A divide and conquer strategy for scaling weather simulations with
//! multiple regions of interest"* (Malakar et al., SC 2012 / Scientific
//! Programming 21 (2013) 93–107).
//!
//! The workspace implements, from scratch:
//!
//! * [`grid`] — simulation domains, nests, rectangles and 2-D domain
//!   decomposition over a virtual processor grid;
//! * [`topo`] — 3-D torus interconnect model, routing, and the paper's
//!   2-D → 3-D mapping heuristics (topology-oblivious, TXYZ, partition and
//!   multi-level folded mappings);
//! * [`predict`] — the Delaunay-triangulation / barycentric-interpolation
//!   performance-prediction model of §3.1;
//! * [`alloc`] — the Huffman-tree + balanced-split-tree processor-allocation
//!   algorithm of §3.2 (Algorithm 1) and its baselines;
//! * [`netsim`] — a discrete-event simulator of Blue Gene-class machines
//!   (torus network with link contention, WRF-like iteration schedule,
//!   MPI_Wait accounting, PnetCDF-style parallel I/O model) standing in for
//!   the paper's BG/L and BG/P testbeds;
//! * [`miniwrf`] — a real, multi-threaded nested shallow-water solver that
//!   executes both the default sequential-nest strategy and the paper's
//!   concurrent-sibling strategy on actual threads;
//! * [`core`] — the planner that glues prediction, allocation and mapping
//!   into an execution plan and runs it on either substrate.
//!
//! ## Quickstart
//!
//! ```
//! use nestwx::core::{Planner, Strategy, MappingKind, AllocPolicy};
//! use nestwx::grid::{Domain, NestSpec};
//! use nestwx::netsim::Machine;
//!
//! // A Blue Gene/L rack (1024 cores in virtual-node mode).
//! let machine = Machine::bgl_rack();
//! // Parent domain at 24 km with two sibling nests at 8 km.
//! let parent = Domain::parent(286, 307, 24.0);
//! let nests = vec![
//!     NestSpec::new(259, 229, 3, (10, 12)),
//!     NestSpec::new(259, 229, 3, (150, 40)),
//! ];
//! let planner = Planner::new(machine)
//!     .strategy(Strategy::Concurrent)
//!     .alloc_policy(AllocPolicy::HuffmanSplitTree)
//!     .mapping(MappingKind::MultiLevel);
//! let plan = planner.plan(&parent, &nests).unwrap();
//! let report = plan.simulate(3).unwrap();
//! assert!(report.total_time > 0.0);
//! ```

pub use nestwx_alloc as alloc;
pub use nestwx_core as core;
pub use nestwx_grid as grid;
pub use nestwx_miniwrf as miniwrf;
pub use nestwx_netsim as netsim;
pub use nestwx_predict as predict;
pub use nestwx_topo as topo;

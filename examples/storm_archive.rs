//! Forecast archival: a two-level nested storm simulation writing periodic
//! history frames — the miniature analogue of the paper's high-frequency
//! output scenario (§4.5), with the I/O share of wall-clock reported like
//! Fig. 14.
//!
//! ```text
//! cargo run --release --example storm_archive
//! ```

use nestwx::miniwrf::nest::NestGeometry;
use nestwx::miniwrf::output::read_frame_h;
use nestwx::miniwrf::{run_iterations, HistoryWriter, NestedModel, ThreadStrategy};
use std::time::Instant;

fn main() -> std::io::Result<()> {
    // Parent storm basin with one tracked depression; a second-level nest
    // zooms into the storm core.
    let geos = [NestGeometry {
        ratio: 3,
        offset: (12, 10),
        nx: 90,
        ny: 84,
    }];
    let mut model = NestedModel::new(80, 70, 24_000.0, 1000.0, &geos);
    model.add_depression(25.0, 22.0, -25.0, 6.0);
    model.add_child_nest(
        0,
        NestGeometry {
            ratio: 3,
            offset: (25, 22),
            nx: 60,
            ny: 54,
        },
    );

    let dir = std::env::temp_dir().join(format!("nestwx_storm_archive_{}", std::process::id()));
    let mut writer = HistoryWriter::new(&dir, 2)?;

    let iterations = 12;
    let t0 = Instant::now();
    for _ in 0..iterations {
        run_iterations(&mut model, 1, 2, &ThreadStrategy::Sequential);
        writer.maybe_write(&model)?;
    }
    let wall = t0.elapsed();

    println!("simulated {iterations} iterations of an 80x70 basin (24 km) with a");
    println!("two-level nest (8 km core, 2.7 km inner core)\n");
    println!(
        "history frames : {} ({} files, {:.1} MiB)",
        writer.stats.frames,
        std::fs::read_dir(&dir)?.count(),
        writer.stats.bytes as f64 / (1024.0 * 1024.0)
    );
    println!(
        "integration    : {:.3} s",
        (wall - writer.stats.elapsed).as_secs_f64()
    );
    println!(
        "output         : {:.3} s ({:.1} % of wall-clock — the Fig. 14 fraction)",
        writer.stats.elapsed.as_secs_f64(),
        writer.stats.elapsed.as_secs_f64() / wall.as_secs_f64() * 100.0
    );

    // Read a frame back and locate the storm core in the inner nest.
    let inner = dir.join(format!("nest0_{:05}_c0.csv", model.iterations));
    let (nx, ny, h) = read_frame_h(&inner)?;
    let (mut min_v, mut min_at) = (f64::INFINITY, (0usize, 0usize));
    for j in 0..ny {
        for i in 0..nx {
            if h[j * nx + i] < min_v {
                min_v = h[j * nx + i];
                min_at = (i, j);
            }
        }
    }
    println!(
        "\ninner-core frame {}x{}: storm centre at cell {:?}, depth {:.2} m below rest",
        nx,
        ny,
        min_at,
        1000.0 - min_v
    );
    println!("frames archived under {}", dir.display());
    std::fs::remove_dir_all(&dir)?;
    Ok(())
}

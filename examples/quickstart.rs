//! Quickstart: plan and simulate a two-nest weather run on a Blue Gene/L
//! rack, comparing WRF's default sequential strategy with the paper's
//! divide-and-conquer strategy.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nestwx::core::{compare_strategies, AllocPolicy, MappingKind, Planner, Strategy};
use nestwx::grid::{Domain, NestSpec};
use nestwx::netsim::Machine;

fn main() {
    // A rack of Blue Gene/L: 512 nodes, 1024 ranks in virtual-node mode.
    let machine = Machine::bgl_rack();

    // The Pacific parent domain at 24 km with two tropical depressions
    // tracked by 8 km nests (refinement ratio 3).
    let parent = Domain::parent(286, 307, 24.0);
    let nests = vec![
        NestSpec::new(259, 229, 3, (10, 12)),
        NestSpec::new(259, 229, 3, (150, 40)),
    ];

    let planner = Planner::new(machine)
        .strategy(Strategy::Concurrent)
        .alloc_policy(AllocPolicy::HuffmanSplitTree)
        .mapping(MappingKind::MultiLevel);

    // Inspect the plan: predicted ratios and processor rectangles.
    let plan = planner.plan(&parent, &nests).expect("valid configuration");
    println!("predicted time shares: {:?}", plan.predicted_ratios);
    for p in &plan.partitions {
        println!(
            "nest {} runs on a {}x{} processor rectangle ({} ranks)",
            p.domain + 1,
            p.rect.w,
            p.rect.h,
            p.rect.area()
        );
    }

    // Head-to-head against the default strategy.
    let cmp = compare_strategies(&planner, &parent, &nests, 5).expect("simulation runs");
    println!();
    println!(
        "default (sequential) : {:.3} s/iteration",
        cmp.default_run.per_iteration()
    );
    println!(
        "divide-and-conquer   : {:.3} s/iteration",
        cmp.planned_run.per_iteration()
    );
    println!("improvement          : {:.1} %", cmp.improvement_pct());
    println!(
        "MPI_Wait improvement : {:.1} %",
        cmp.mpi_wait_improvement_pct()
    );
    println!("avg hops reduction   : {:.1} %", cmp.hops_reduction_pct());
}

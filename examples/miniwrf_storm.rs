//! Real computation: two tropical depressions simulated with the threaded
//! shallow-water mini-app, comparing the sequential and concurrent sibling
//! strategies on actual OS threads.
//!
//! This is the §5 "generality" demonstration in miniature: the same
//! predict-allocate-execute pipeline that schedules WRF nests on a Blue
//! Gene drives thread allocation for any application with independent
//! subtasks inside a main simulation.
//!
//! ```text
//! cargo run --release --example miniwrf_storm
//! ```

use nestwx::core::threads::thread_allocation;
use nestwx::miniwrf::nest::NestGeometry;
use nestwx::miniwrf::{run_iterations, NestedModel, ThreadStrategy};

fn build_model() -> NestedModel {
    // 24 km parent over the Pacific (downscaled grid), two 8 km nests
    // tracking depressions of different sizes.
    let geos = [
        NestGeometry {
            ratio: 3,
            offset: (20, 20),
            nx: 240,
            ny: 210,
        },
        NestGeometry {
            ratio: 3,
            offset: (130, 110),
            nx: 150,
            ny: 132,
        },
    ];
    let mut m = NestedModel::new(260, 220, 24_000.0, 1000.0, &geos);
    m.add_depression(50.0, 45.0, -28.0, 9.0);
    m.add_depression(150.0, 128.0, -20.0, 6.0);
    m
}

fn main() {
    let iterations = 10;
    // At least one thread per sibling; on a single-core box the concurrent
    // strategy degrades to time-slicing (correctness still holds — and is
    // asserted below).
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .clamp(2, 8);
    println!("running {iterations} coupled iterations with {threads} worker threads\n");

    // Allocate threads proportionally to nest work (the thread analogue of
    // Algorithm 1). Nest cost ∝ points × r; both nests share r = 3.
    let ratios: Vec<f64> = build_model()
        .nests
        .iter()
        .map(|n| (n.geo.nx * n.geo.ny) as f64)
        .collect();
    let allocation = thread_allocation(&ratios, threads);
    println!("thread allocation (proportional to nest points): {allocation:?}");

    // Sequential: each nest on all threads, one after the other.
    let mut seq_model = build_model();
    let seq = run_iterations(
        &mut seq_model,
        iterations,
        threads,
        &ThreadStrategy::Sequential,
    );

    // Concurrent: both nests at once on their allocated thread groups.
    let mut conc_model = build_model();
    let conc = run_iterations(
        &mut conc_model,
        iterations,
        threads,
        &ThreadStrategy::Concurrent { allocation },
    );

    println!(
        "\nsequential:  total {:>8.3} s  ({:.3} s/iter; parent {:.3} s, nests {:.3} s)",
        seq.total.as_secs_f64(),
        seq.per_iteration(),
        seq.parent.as_secs_f64(),
        seq.siblings.as_secs_f64()
    );
    println!(
        "concurrent:  total {:>8.3} s  ({:.3} s/iter; parent {:.3} s, nests {:.3} s)",
        conc.total.as_secs_f64(),
        conc.per_iteration(),
        conc.parent.as_secs_f64(),
        conc.siblings.as_secs_f64()
    );
    println!(
        "improvement: {:.1} % of total wall-clock",
        (1.0 - conc.total.as_secs_f64() / seq.total.as_secs_f64()) * 100.0
    );

    // The two strategies reorder independent work only: identical physics.
    assert_eq!(
        seq_model.parent.h, conc_model.parent.h,
        "strategies must agree bitwise"
    );
    for (a, b) in seq_model.nests.iter().zip(&conc_model.nests) {
        assert_eq!(a.solver.h, b.solver.h);
    }
    println!("\nverified: sequential and concurrent results are bitwise identical.");
    println!(
        "storm centres deepened to {:.1} m (nest 1) / {:.1} m (nest 2) below rest depth",
        1000.0 - conc_model.nests[0].solver.h.get(120, 105).min(1000.0),
        1000.0 - conc_model.nests[1].solver.h.get(75, 66).min(1000.0),
    );
}

//! Mapping explorer: visualises the 2-D → 3-D mappings of §3.3 on the
//! Fig. 5/6 example (32 ranks, 4×4×2 torus, two sibling partitions) and
//! reports hop metrics for a full Blue Gene/L rack.
//!
//! ```text
//! cargo run --release --example mapping_explorer
//! ```

use nestwx::grid::{ProcGrid, Rect};
use nestwx::topo::metrics::{halo_edges, CommStats};
use nestwx::topo::torus::{MachineShape, Torus};
use nestwx::topo::Mapping;

fn show_torus(label: &str, m: &Mapping, torus: &Torus) {
    println!("\n{label}:");
    for z in 0..torus.dims[2] {
        println!("  plane z={z}:");
        for y in 0..torus.dims[1] {
            let mut line = String::from("    ");
            for x in 0..torus.dims[0] {
                // Find the rank mapped to this node (cores_per_node = 1).
                let rank = (0..m.len()).find(|&r| {
                    let c = m.node_coord(r);
                    (c.x, c.y, c.z) == (x, y, z)
                });
                match rank {
                    Some(r) => line.push_str(&format!("{r:>3} ")),
                    None => line.push_str("  . "),
                }
            }
            println!("{line}");
        }
    }
}

fn main() {
    // ---- the paper's illustration: 8×4 virtual grid on a 4×4×2 torus ----
    let shape = MachineShape::new(Torus::new(4, 4, 2), 1);
    let grid = ProcGrid::new(8, 4);
    let parts = [Rect::new(0, 0, 4, 4), Rect::new(4, 0, 4, 4)];

    let oblivious = Mapping::oblivious(shape, 32).unwrap();
    let partition = Mapping::partition(shape, &grid, &parts).unwrap();
    let multilevel = Mapping::multilevel(shape, &grid, &parts).unwrap();

    println!("Fig. 5/6 example: 32 ranks, two 4x4 sibling partitions, 4x4x2 torus");
    show_torus("topology-oblivious (Fig. 5b)", &oblivious, &shape.torus);
    show_torus("partition mapping (Fig. 6a)", &partition, &shape.torus);
    show_torus("multi-level mapping (Fig. 6b)", &multilevel, &shape.torus);

    // Hop statistics over the nest halo edges.
    let mut edges = Vec::new();
    for p in &parts {
        edges.extend(halo_edges(&grid, p, 1.0));
    }
    println!("\nnest-halo hop statistics (32-rank example):");
    for (name, m) in [
        ("oblivious", &oblivious),
        ("partition", &partition),
        ("multilevel", &multilevel),
    ] {
        let s = CommStats::compute(m, &edges);
        println!(
            "  {name:<11} avg {:.2} hops, max {}",
            s.avg_hops, s.max_hops
        );
    }

    // ---- full BG/L rack with the Table 2 partitions ----
    let shape = MachineShape::bgl_rack_vn();
    let grid = ProcGrid::new(32, 32);
    let parts = [
        Rect::new(0, 0, 18, 24),
        Rect::new(0, 24, 18, 8),
        Rect::new(18, 0, 14, 12),
        Rect::new(18, 12, 14, 20),
    ];
    let mut edges = Vec::new();
    for p in &parts {
        edges.extend(halo_edges(&grid, p, 1.0));
    }
    println!("\nBG/L rack (1024 ranks), Table 2 partitions — nest-halo hops:");
    let oblivious = Mapping::oblivious(shape, 1024).unwrap();
    let txyz = Mapping::txyz(shape, 1024).unwrap();
    let partition = Mapping::partition(shape, &grid, &parts).unwrap();
    let multilevel = Mapping::multilevel(shape, &grid, &parts).unwrap();
    for (name, m) in [
        ("oblivious", &oblivious),
        ("TXYZ", &txyz),
        ("partition", &partition),
        ("multilevel", &multilevel),
    ] {
        let s = CommStats::compute(m, &edges);
        println!(
            "  {name:<11} avg {:.2} hops, max {:>2}, hop-bytes {:>7.0}, max link load {:>5.0}",
            s.avg_hops, s.max_hops, s.hop_bytes, s.max_link_bytes
        );
    }
    println!("\nTopology-aware mappings roughly halve the average hop count (Fig. 12b).");
}

//! South East Asia scenario (§4.1.1 of the paper).
//!
//! A 4.5 km parent domain covering Malaysia, Singapore, Thailand, Cambodia,
//! Vietnam, Brunei and the Philippines, with 1.5 km nests over the major
//! business centres — all affected by weather developing over the South
//! China Sea. The paper ran eight such configurations; this example builds
//! one with four innermost nests and studies how the divide-and-conquer
//! strategy behaves as machine size grows, including the I/O effect of
//! writing each nest's forecast with its own sub-communicator.
//!
//! ```text
//! cargo run --release --example southeast_asia
//! ```

use nestwx::core::{compare_strategies, Planner};
use nestwx::grid::{Domain, NestSpec};
use nestwx::netsim::{IoMode, Machine};

fn main() {
    // 4.5 km parent covering the region.
    let parent = Domain::parent(420, 360, 4.5);
    // 1.5 km nests over key metropolitan areas.
    let cities = [
        ("Singapore/Johor", NestSpec::new(280, 240, 3, (60, 210))),
        ("Bangkok", NestSpec::new(220, 260, 3, (30, 20))),
        ("Ho Chi Minh City", NestSpec::new(240, 220, 3, (180, 90))),
        ("Manila", NestSpec::new(260, 280, 3, (310, 40))),
    ];
    let nests: Vec<NestSpec> = cities.iter().map(|(_, n)| n.clone()).collect();

    println!("South East Asia: 4.5 km parent, four 1.5 km nests\n");
    println!(
        "{:<7} {:>11} {:>11} {:>9}   {:>11} {:>11} {:>9}",
        "", "", "", "", "", "(with hourly", "output)"
    );
    println!(
        "{:<7} {:>11} {:>11} {:>9}   {:>11} {:>11} {:>9}",
        "cores", "default", "parallel", "gain", "default", "parallel", "gain"
    );
    for cores in [256u32, 512, 1024, 2048, 4096] {
        let quiet = Planner::new(Machine::bgp(cores));
        let cmp = compare_strategies(&quiet, &parent, &nests, 4).unwrap();
        let noisy = Planner::new(Machine::bgp(cores)).output(IoMode::PnetCdf, 4);
        let cmp_io = compare_strategies(&noisy, &parent, &nests, 4).unwrap();
        println!(
            "{:<7} {:>10.3}s {:>10.3}s {:>8.1}%   {:>10.3}s {:>10.3}s {:>8.1}%",
            cores,
            cmp.default_run.per_iteration(),
            cmp.planned_run.per_iteration(),
            cmp.improvement_pct(),
            cmp_io.default_run.per_iteration(),
            cmp_io.planned_run.per_iteration(),
            cmp_io.improvement_pct(),
        );
    }

    // Show the final allocation at 1024 cores.
    let plan = Planner::new(Machine::bgp(1024))
        .plan(&parent, &nests)
        .unwrap();
    println!("\nallocation on 1024 cores (32x32 grid):");
    for ((name, nest), p) in cities.iter().zip(&plan.partitions) {
        println!(
            "  {name:<17} {:>3}x{:<3} nest → {:>2}x{:<2} ranks ({:>3})",
            nest.nx,
            nest.ny,
            p.rect.w,
            p.rect.h,
            p.rect.area()
        );
    }
    println!("\nThe concurrent strategy wins once the nests saturate, and the gain is");
    println!("larger when forecast output is included (fewer writers per history file).");
}

//! Pacific typhoon season scenario (§4.1.2 of the paper).
//!
//! The western Pacific (100°E–180°E, 10°S–50°N) is simulated at 24 km with a
//! 286×307 parent domain. During the July 2010 typhoon season several
//! depressions form simultaneously; each triggers a high-resolution (8 km)
//! nest. This example walks the full divide-and-conquer pipeline:
//!
//! 1. profile 13 basis domains on the machine simulator and fit the
//!    Delaunay execution-time predictor;
//! 2. plan processor allocation for four tracked depressions;
//! 3. compare the default sequential strategy against the concurrent
//!    strategy under each mapping.
//!
//! ```text
//! cargo run --release --example pacific_typhoons
//! ```

use nestwx::core::profile::fit_predictor;
use nestwx::core::{compare_strategies, MappingKind, Planner};
use nestwx::grid::{Domain, DomainFeatures, NestSpec};
use nestwx::netsim::Machine;

fn main() {
    let machine = Machine::bgl_rack();
    let parent = Domain::parent(286, 307, 24.0);

    // Four depressions tracked over the Pacific, different sizes.
    let depressions = [
        ("TD Omais", NestSpec::new(394, 418, 3, (10, 10))),
        ("TS Conson", NestSpec::new(232, 202, 3, (160, 20))),
        ("TD 06W", NestSpec::new(232, 256, 3, (20, 170))),
        ("TY Chanthu", NestSpec::new(313, 337, 3, (160, 170))),
    ];
    let nests: Vec<NestSpec> = depressions.iter().map(|(_, n)| n.clone()).collect();

    // Step 1: profiling runs + predictor fit.
    println!("fitting execution-time predictor from 13 profiling runs …");
    let predictor = fit_predictor(&machine, 2010);
    for (name, nest) in &depressions {
        let t = predictor.predict(&DomainFeatures::from(nest)).unwrap();
        println!(
            "  {name:<12} {:>3}x{:<3} → predicted {:.3} s/step on 64 ranks",
            nest.nx, nest.ny, t
        );
    }

    // Step 2: plan.
    let planner = Planner::new(machine).with_predictor(predictor);
    let plan = planner.plan(&parent, &nests).unwrap();
    println!("\nprocessor allocation over the 32x32 grid:");
    for ((name, _), p) in depressions.iter().zip(&plan.partitions) {
        println!(
            "  {name:<12} {:>2}x{:<2} = {:>3} ranks ({:.1} % — predicted share {:.1} %)",
            p.rect.w,
            p.rect.h,
            p.rect.area(),
            p.rect.area() as f64 / 10.24,
            plan.predicted_ratios[p.domain] * 100.0
        );
    }

    // Step 3: strategy × mapping comparison.
    println!("\nstrategy comparison (5 iterations):");
    for kind in MappingKind::ALL {
        let cmp = compare_strategies(&planner.clone().mapping(kind), &parent, &nests, 5).unwrap();
        println!(
            "  {:<11?} {:.3} s/iter  (+{:.1} % vs default {:.3} s; hops −{:.0} %)",
            kind,
            cmp.planned_run.per_iteration(),
            cmp.improvement_pct(),
            cmp.default_run.per_iteration(),
            cmp.hops_reduction_pct(),
        );
    }
}

//! Offline replacement for the real `serde_derive` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal serde stack. This proc-macro crate implements just enough of
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the types that
//! actually appear in this repository:
//!
//! * non-generic structs with named fields,
//! * non-generic tuple/newtype structs,
//! * non-generic enums with unit, tuple and struct variants,
//! * the field attributes `#[serde(default)]` (ignored — typed
//!   deserialization is never exercised) and
//!   `#[serde(skip_serializing_if = "path")]`.
//!
//! `Serialize` expands to a real JSON emitter (used by the CLI's
//! `serde_json::to_string_pretty` calls); `Deserialize` expands to a marker
//! impl because nothing in the workspace deserializes into typed values.
//!
//! The parser works directly on `proc_macro::TokenStream` — no `syn`/`quote`
//! — and panics with a clear message on anything outside the supported
//! subset (e.g. generic types), so silent misbehaviour is impossible.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    skip_serializing_if: Option<String>,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

impl Item {
    fn name(&self) -> &str {
        match self {
            Item::NamedStruct { name, .. }
            | Item::TupleStruct { name, .. }
            | Item::UnitStruct { name }
            | Item::Enum { name, .. } => name,
        }
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Consumes one `#[...]` attribute (the `#` has already been consumed) and
/// returns the serde `skip_serializing_if` path if the attribute carries one.
fn parse_attr(group: &proc_macro::Group) -> Option<String> {
    let mut it = group.stream().into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let args = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
        _ => return None,
    };
    let toks: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        if let TokenTree::Ident(id) = &toks[i] {
            let key = id.to_string();
            if key == "skip_serializing_if" {
                // expect `= "literal"`
                if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                    (toks.get(i + 1), toks.get(i + 2))
                {
                    if eq.as_char() == '=' {
                        let raw = lit.to_string();
                        let path = raw.trim_matches('"').to_string();
                        return Some(path);
                    }
                }
                panic!("serde_derive (vendored): malformed skip_serializing_if");
            } else if key == "default" || key == "rename" || key == "skip" {
                // `default` is a no-op for the marker Deserialize impl;
                // rename/skip are unused in this workspace but tolerated
                // only when they would not change emitted JSON.
                if key != "default" {
                    panic!("serde_derive (vendored): unsupported serde attribute `{key}`");
                }
            } else {
                panic!("serde_derive (vendored): unsupported serde attribute `{key}`");
            }
        }
        i += 1;
    }
    None
}

/// Parses the fields of a brace-delimited body: `{ pub a: T, #[attr] b: U }`.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut skip_if = None;
        // attributes
        loop {
            match (&toks.get(i), &toks.get(i + 1)) {
                (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                    if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
                {
                    if let Some(path) = parse_attr(g) {
                        skip_if = Some(path);
                    }
                    i += 2;
                }
                _ => break,
            }
        }
        // visibility
        if matches!(&toks.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(&toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive (vendored): expected field name, got {other:?}"),
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive (vendored): expected `:` after field, got {other:?}"),
        }
        // skip the type: consume until a top-level `,` (commas inside
        // parenthesised groups are invisible; only `<...>` depth matters)
        let mut angle = 0i32;
        while let Some(t) = toks.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field {
            name,
            skip_serializing_if: skip_if,
        });
    }
    fields
}

/// Counts the fields of a paren-delimited tuple body: `(pub T, U)`.
fn parse_tuple_arity(group: &proc_macro::Group) -> usize {
    let mut arity = 0usize;
    let mut angle = 0i32;
    let mut pending = false;
    for t in group.stream() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                arity += 1;
                pending = false;
            }
            _ => pending = true,
        }
    }
    if pending {
        arity += 1;
    }
    arity
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // attributes
        loop {
            match (&toks.get(i), &toks.get(i + 1)) {
                (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                    if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
                {
                    parse_attr(g);
                    i += 2;
                }
                _ => break,
            }
        }
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive (vendored): expected variant name, got {other:?}"),
        };
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(parse_tuple_arity(g))
            }
            _ => VariantKind::Unit,
        };
        // skip an explicit discriminant `= expr` up to the separating comma
        while let Some(t) = toks.get(i) {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // outer attributes + visibility
    loop {
        match (&toks.get(i), &toks.get(i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                parse_attr(g);
                i += 2;
            }
            (Some(TokenTree::Ident(id)), _) if id.to_string() == "pub" => {
                i += 1;
                if matches!(&toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => break,
        }
    }
    let kw = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive (vendored): expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive (vendored): expected type name, got {other:?}"),
    };
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic type `{name}` is not supported");
    }
    match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: parse_tuple_arity(g),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("serde_derive (vendored): unsupported struct body {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g),
            },
            other => panic!("serde_derive (vendored): unsupported enum body {other:?}"),
        },
        other => panic!("serde_derive (vendored): unsupported item kind `{other}`"),
    }
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn emit_named_fields(out: &mut String, fields: &[Field], access: impl Fn(&str) -> String) {
    out.push_str("__out.push('{');\n");
    out.push_str("let mut __first = true;\n");
    for f in fields {
        let expr = access(&f.name);
        if let Some(path) = &f.skip_serializing_if {
            out.push_str(&format!("if !{path}(&{expr}) {{\n"));
        }
        out.push_str("if !__first { __out.push(','); }\n__first = false;\n");
        out.push_str(&format!(
            "__out.push_str(\"\\\"{}\\\":\");\n::serde::Serialize::serialize_json(&{expr}, __out);\n",
            f.name
        ));
        if f.skip_serializing_if.is_some() {
            out.push_str("}\n");
        }
    }
    out.push_str("let _ = __first;\n__out.push('}');\n");
}

fn serialize_impl(item: &Item) -> String {
    let name = item.name();
    let mut body = String::new();
    match item {
        Item::NamedStruct { fields, .. } => {
            emit_named_fields(&mut body, fields, |f| format!("self.{f}"));
        }
        Item::TupleStruct { arity, .. } => {
            if *arity == 1 {
                body.push_str("::serde::Serialize::serialize_json(&self.0, __out);\n");
            } else {
                body.push_str("__out.push('[');\n");
                for k in 0..*arity {
                    if k > 0 {
                        body.push_str("__out.push(',');\n");
                    }
                    body.push_str(&format!(
                        "::serde::Serialize::serialize_json(&self.{k}, __out);\n"
                    ));
                }
                body.push_str("__out.push(']');\n");
            }
        }
        Item::UnitStruct { .. } => {
            body.push_str("__out.push_str(\"null\");\n");
        }
        Item::Enum { variants, .. } => {
            body.push_str("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        body.push_str(&format!(
                            "{name}::{vn} => __out.push_str(\"\\\"{vn}\\\"\"),\n"
                        ));
                    }
                    VariantKind::Tuple(arity) => {
                        let binders: Vec<String> = (0..*arity).map(|k| format!("__f{k}")).collect();
                        body.push_str(&format!("{name}::{vn}({}) => {{\n", binders.join(", ")));
                        body.push_str(&format!("__out.push_str(\"{{\\\"{vn}\\\":\");\n"));
                        if *arity == 1 {
                            body.push_str("::serde::Serialize::serialize_json(__f0, __out);\n");
                        } else {
                            body.push_str("__out.push('[');\n");
                            for (k, b) in binders.iter().enumerate() {
                                if k > 0 {
                                    body.push_str("__out.push(',');\n");
                                }
                                body.push_str(&format!(
                                    "::serde::Serialize::serialize_json({b}, __out);\n"
                                ));
                            }
                            body.push_str("__out.push(']');\n");
                        }
                        body.push_str("__out.push('}');\n},\n");
                    }
                    VariantKind::Struct(fields) => {
                        let binders: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        body.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{\n",
                            binders.join(", ")
                        ));
                        body.push_str(&format!("__out.push_str(\"{{\\\"{vn}\\\":\");\n"));
                        emit_named_fields(&mut body, fields, |f| f.to_string());
                        body.push_str("__out.push('}');\n},\n");
                    }
                }
            }
            body.push_str("}\n");
        }
    }
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_assignments, clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize_json(&self, __out: &mut ::std::string::String) {{\n{body}\n}}\n\
         }}\n"
    )
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    serialize_impl(&item)
        .parse()
        .expect("serde_derive (vendored): generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!(
        "#[automatically_derived]\nimpl<'de> ::serde::Deserialize<'de> for {} {{}}\n",
        item.name()
    )
    .parse()
    .expect("serde_derive (vendored): generated Deserialize impl failed to parse")
}

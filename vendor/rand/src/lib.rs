//! Offline replacement for the `rand` 0.8 subset the workspace uses.
//!
//! Provides `rngs::StdRng` (xoshiro256++ under the hood — the exact stream
//! differs from upstream `rand`, which is fine because no recorded results
//! depend on upstream's stream), `SeedableRng::{from_seed, seed_from_u64}`,
//! and the `Rng` extension trait with `gen` and `gen_range` over integer and
//! float ranges.

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// Core traits
// ---------------------------------------------------------------------------

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = sm.next().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator standing in for upstream `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *w = u64::from_le_bytes(b);
            }
            if s == [0, 0, 0, 0] {
                // All-zero state would lock xoshiro at zero forever.
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

// ---------------------------------------------------------------------------
// Distributions and ranges
// ---------------------------------------------------------------------------

pub mod distributions {
    use super::{unit_f64, RngCore};

    pub struct Standard;

    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    macro_rules! std_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    std_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng.next_u64())
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            unit_f64(rng.next_u64()) as f32
        }
    }
}

/// Types that can be drawn uniformly from a range. The single blanket
/// `SampleRange` impl below is what lets `gen_range(0.5..=1.5)` infer the
/// float type the same way upstream `rand` does.
pub trait SampleUniform: PartialOrd + Sized + Copy {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

/// Multiply-shift bounded draw over an inclusive span (no modulo bias
/// beyond 2^-64).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span_inclusive: u128) -> u128 {
    debug_assert!(span_inclusive >= 1);
    (rng.next_u64() as u128 * span_inclusive) >> 64
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + if inclusive { 1 } else { 0 };
                let off = bounded_u64(rng, span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let u = unit_f64(rng.next_u64()) as $t;
                let v = lo + u * (hi - lo);
                // Guard against rounding to the excluded endpoint.
                if !inclusive && v >= hi { lo } else { v }
            }
        }
    )*};
}
float_uniform!(f32, f64);

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: u64 = StdRng::seed_from_u64(7).gen();
        let b: u64 = StdRng::seed_from_u64(7).gen();
        let c: u64 = StdRng::seed_from_u64(8).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5u64..=5);
            assert_eq!(w, 5);
            let f = rng.gen_range(0.5f64..=1.5);
            assert!((0.5..=1.5).contains(&f));
            let g = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&g));
        }
    }

    #[test]
    fn full_u64_range_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut hi = 0u64;
        for _ in 0..1000 {
            hi = hi.max(rng.gen_range(0u64..=u64::MAX));
        }
        assert!(hi > u64::MAX / 4);
    }
}

//! Offline replacement for the `criterion` subset the workspace uses.
//!
//! Implements `Criterion::bench_function`, `Bencher::iter`, `black_box`,
//! `criterion_group!` and `criterion_main!` with a simple adaptive timing
//! loop: warm up, pick an iteration count that makes one sample take
//! roughly `sample_ms`, then report min/mean/max over the samples.
//! Wall-clock budgets are configurable through `NESTWX_BENCH_MS` (per
//! benchmark, default 1500).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub struct Criterion {
    /// Total measurement budget per benchmark.
    measurement: Duration,
    /// Number of samples the budget is split into.
    samples: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("NESTWX_BENCH_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(1500);
        Criterion {
            measurement: Duration::from_millis(ms),
            samples: 10,
        }
    }
}

impl Criterion {
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2) as u32;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Calibration: run single iterations until we know the cost.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let calib_start = Instant::now();
        let mut per_iter = Duration::from_nanos(1);
        loop {
            f(&mut b);
            if !b.elapsed.is_zero() {
                per_iter = b.elapsed / b.iters as u32;
            }
            if calib_start.elapsed() >= self.measurement / 10 || per_iter >= self.measurement {
                break;
            }
            b.iters = (b.iters * 2).min(1 << 20);
        }

        let sample_budget = self.measurement / self.samples;
        let iters_per_sample =
            (sample_budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;

        let mut times = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            b.iters = iters_per_sample;
            f(&mut b);
            times.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
        }
        times.sort_by(f64::total_cmp);
        let min = times[0];
        let max = times[times.len() - 1];
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        println!(
            "{id:<50} time: [{} {} {}]  ({iters_per_sample} iters/sample, {} samples)",
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max),
            times.len()
        );
        self
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs() {
        std::env::set_var("NESTWX_BENCH_MS", "30");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }
}

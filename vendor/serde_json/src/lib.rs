//! Offline replacement for the `serde_json` subset the workspace uses:
//! `to_string` / `to_string_pretty` over the vendored `serde::Serialize`
//! trait, plus `from_slice` / `from_str` into a dynamic [`Value`] with
//! `Index<&str>` / `Index<usize>` accessors and `as_*` conversions.

use serde::Serialize;
use std::fmt;

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

/// Dynamic JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn get_index(&self, idx: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(idx),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.get_index(idx).unwrap_or(&NULL)
    }
}

impl Serialize for Value {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => serde::write_f64(*n, out),
            Value::String(s) => serde::write_escaped_str(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.serialize_json(out);
                }
                out.push(']');
            }
            Value::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    serde::write_escaped_str(k, out);
                    out.push(':');
                    v.serialize_json(out);
                }
                out.push('}');
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

#[derive(Debug)]
pub struct Error {
    msg: String,
    offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Serialization entry points
// ---------------------------------------------------------------------------

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let compact = to_string(value)?;
    let v = from_str(&compact)?;
    let mut out = String::new();
    pretty(&v, 0, &mut out);
    Ok(out)
}

/// Builds a [`Value`] from any serializable type (round-trips through the
/// compact encoding, like `serde_json::to_value`).
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    from_str(&to_string(value)?)
}

fn pretty(v: &Value, indent: usize, out: &mut String) {
    const STEP: usize = 2;
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                pretty(item, indent + STEP, out);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                serde::write_escaped_str(k, out);
                out.push_str(": ");
                pretty(item, indent + STEP, out);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
        other => other.serialize_json(out),
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

pub fn from_slice(bytes: &[u8]) -> Result<Value> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error {
        msg: format!("invalid UTF-8: {e}"),
        offset: e.valid_up_to(),
    })?;
    from_str(s)
}

pub fn from_str(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: msg.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for the repo's
                            // own output; map unpaired surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8 inside string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let src = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny"}, "d": null, "e": true}"#;
        let v = from_str(src).unwrap();
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["a"][2].as_f64(), Some(-300.0));
        assert_eq!(v["b"]["c"].as_str(), Some("x\ny"));
        assert!(v["d"].is_null());
        assert_eq!(v["e"].as_bool(), Some(true));
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn pretty_is_reparsable() {
        let v = from_str(r#"{"k":[1,{"x":2}],"s":"hi"}"#).unwrap();
        let p = to_string_pretty(&v).unwrap();
        assert!(p.contains("\n"));
        assert_eq!(from_str(&p).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{,}").is_err());
        assert!(from_str("[1 2]").is_err());
        assert!(from_str("").is_err());
    }
}

//! Shim synchronization primitives: std types with yield injection at
//! every operation. Guard types are std's own, so `PoisonError` handling
//! written against std works unchanged under `--cfg loom`.

pub use std::sync::Arc;
pub use std::sync::{LockResult, MutexGuard, PoisonError, WaitTimeoutResult};

/// `std::sync::Mutex` with a schedule perturbation before every `lock`.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// A new unlocked mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Locks, yielding the scheduler first.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        crate::rt::maybe_yield();
        let guard = self.0.lock();
        crate::rt::maybe_yield();
        guard
    }

    /// Non-blocking lock attempt.
    pub fn try_lock(&self) -> std::sync::TryLockResult<MutexGuard<'_, T>> {
        crate::rt::maybe_yield();
        self.0.try_lock()
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        self.0.into_inner()
    }
}

/// `std::sync::Condvar` with schedule perturbations around waits and
/// notifies.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// A new condition variable.
    pub fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Waits on the condition, releasing the guard's mutex.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        crate::rt::maybe_yield();
        let res = self.0.wait(guard);
        crate::rt::maybe_yield();
        res
    }

    /// Waits with a timeout (forwarded to std).
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: std::time::Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        crate::rt::maybe_yield();
        self.0.wait_timeout(guard, dur)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        crate::rt::maybe_yield();
        self.0.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        crate::rt::maybe_yield();
        self.0.notify_all();
    }
}

/// Atomics with yield injection on every access.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    macro_rules! shim_atomic {
        ($name:ident, $std:ty, $val:ty) => {
            /// Std atomic with a schedule perturbation before every access.
            #[derive(Debug, Default)]
            pub struct $name($std);

            impl $name {
                /// A new atomic holding `v`.
                pub fn new(v: $val) -> $name {
                    $name(<$std>::new(v))
                }

                /// Atomic load.
                pub fn load(&self, order: Ordering) -> $val {
                    crate::rt::maybe_yield();
                    self.0.load(order)
                }

                /// Atomic store.
                pub fn store(&self, v: $val, order: Ordering) {
                    crate::rt::maybe_yield();
                    self.0.store(v, order)
                }

                /// Atomic swap.
                pub fn swap(&self, v: $val, order: Ordering) -> $val {
                    crate::rt::maybe_yield();
                    self.0.swap(v, order)
                }

                /// Atomic compare-exchange.
                pub fn compare_exchange(
                    &self,
                    current: $val,
                    new: $val,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$val, $val> {
                    crate::rt::maybe_yield();
                    self.0.compare_exchange(current, new, success, failure)
                }
            }
        };
    }

    shim_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);

    macro_rules! shim_atomic_int {
        ($name:ident, $std:ty, $val:ty) => {
            shim_atomic!($name, $std, $val);

            impl $name {
                /// Atomic add, returning the previous value.
                pub fn fetch_add(&self, v: $val, order: Ordering) -> $val {
                    crate::rt::maybe_yield();
                    self.0.fetch_add(v, order)
                }

                /// Atomic subtract, returning the previous value.
                pub fn fetch_sub(&self, v: $val, order: Ordering) -> $val {
                    crate::rt::maybe_yield();
                    self.0.fetch_sub(v, order)
                }

                /// Atomic max, returning the previous value.
                pub fn fetch_max(&self, v: $val, order: Ordering) -> $val {
                    crate::rt::maybe_yield();
                    self.0.fetch_max(v, order)
                }
            }
        };
    }

    shim_atomic_int!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    shim_atomic_int!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
}

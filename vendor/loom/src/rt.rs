//! The shim "runtime": a per-iteration seed plus a per-thread xorshift
//! stream deciding where `yield_now` gets injected.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static SEED: AtomicU64 = AtomicU64::new(0x5EED);
static THREAD_SALT: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static LOCAL: Cell<u64> = const { Cell::new(0) };
}

/// SplitMix64 — the seed expander (public so `model` can derive
/// per-iteration seeds with the same mixer).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Installs the iteration seed (called by `model` before each run).
pub fn set_seed(seed: u64) {
    SEED.store(seed, Ordering::SeqCst);
}

/// Decides — pseudo-randomly, from the iteration seed and a per-thread
/// stream — whether this synchronization point yields the CPU. Called by
/// every shim primitive before the underlying std operation.
pub fn maybe_yield() {
    let r = LOCAL.with(|s| {
        let mut x = s.get();
        if x == 0 {
            // First sync op on this thread this process: fold the global
            // iteration seed with a unique thread salt.
            let salt = THREAD_SALT.fetch_add(1, Ordering::Relaxed);
            x = splitmix64(SEED.load(Ordering::Relaxed) ^ salt.wrapping_mul(0xA24B_AED4_963E_E407));
        }
        // xorshift64* step
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        s.set(x);
        x
    });
    // Yield on ~1 in 4 synchronization points.
    if r & 0b11 == 0 {
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn maybe_yield_never_panics_and_streams_vary() {
        super::set_seed(42);
        for _ in 0..1000 {
            super::maybe_yield();
        }
    }
}

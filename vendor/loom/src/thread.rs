//! Thread spawning with a yield injected at the spawn point.

pub use std::thread::{current, yield_now, JoinHandle};

/// Spawns an OS thread (the shim explores schedules by perturbing real
/// threads rather than simulating them).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    crate::rt::maybe_yield();
    std::thread::spawn(move || {
        crate::rt::maybe_yield();
        f()
    })
}

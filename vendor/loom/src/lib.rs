//! Offline stand-in for the `loom` model checker.
//!
//! The real `loom` crate exhaustively explores thread interleavings with
//! DPOR (dynamic partial-order reduction). This build environment has no
//! network access, so this shim provides the same *API surface* the
//! workspace uses (`model`, `thread`, `sync::{Arc, Mutex, Condvar,
//! atomic}`) backed by **bounded randomized exploration**: the model
//! closure runs many times over real OS threads, and every synchronization
//! operation injects a pseudo-random `yield_now` decided by a per-iteration
//! seed. That perturbs schedules far beyond what plain repeated execution
//! reaches, and a failing iteration reports its seed so the schedule bias
//! is reproducible — but it is **not exhaustive**: absence of a failure
//! here is strong evidence, not proof. Swapping in upstream loom requires
//! no source changes, only replacing this vendor crate.
//!
//! Knobs (environment):
//! - `LOOM_ITERS` — iterations per `model` call (default 64).
//! - `LOOM_SEED` — base seed mixed into every iteration (default 0).

pub mod rt;
pub mod sync;
pub mod thread;

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Runs `f` under bounded randomized schedule exploration: `LOOM_ITERS`
/// iterations, each with a distinct yield-injection seed. Panics propagate
/// after reporting the failing iteration's seed (re-run with
/// `LOOM_SEED=<seed> LOOM_ITERS=1` to replay the same yield bias).
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let iters = env_u64("LOOM_ITERS", 64);
    let base = env_u64("LOOM_SEED", 0);
    for i in 0..iters {
        let seed = rt::splitmix64(base.wrapping_add(i).wrapping_add(0x9E37_79B9_7F4A_7C15));
        rt::set_seed(seed);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(&f)) {
            eprintln!("loom(shim): model failed on iteration {i} (LOOM_SEED={seed})");
            resume_unwind(payload);
        }
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::sync::{Arc, Mutex};

    #[test]
    fn model_runs_many_iterations() {
        std::env::remove_var("LOOM_ITERS");
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        super::model(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn mutex_counts_stay_consistent_across_threads() {
        let total = Arc::new(AtomicU64::new(0));
        let t = Arc::clone(&total);
        super::model(move || {
            let m = Arc::new(Mutex::new(0u64));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let m = Arc::clone(&m);
                    super::thread::spawn(move || {
                        for _ in 0..10 {
                            *m.lock().unwrap() += 1;
                        }
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(*m.lock().unwrap(), 20);
            t.fetch_add(1, Ordering::SeqCst);
        });
        assert!(total.load(Ordering::SeqCst) > 0);
    }
}

//! Offline replacement for the `proptest` subset the workspace uses.
//!
//! Semantics: each `proptest!` test samples its strategies from a
//! deterministic per-test RNG (seeded from the test name) for
//! `ProptestConfig::cases` accepted cases. `prop_assume!` rejects the case
//! and draws a fresh one; `prop_assert*!` panics like `assert*!`. There is
//! no shrinking — a failing case panics with the sampled values printed by
//! the assertion itself. The `Strategy` model is simplified from lazy value
//! trees to direct sampling, which is all the repo's property tests need.

pub mod test_runner {
    /// Marker for a rejected case (`prop_assume!` failed).
    #[derive(Debug)]
    pub struct Rejected;

    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
        /// Abort if `cases * max_global_rejects` draws are rejected.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 64,
            }
        }
    }

    /// Deterministic xoshiro256++ RNG seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name, then SplitMix64 expansion.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut sm = h;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw from `[0, span)` (span ≥ 1) without modulo bias.
        pub fn below(&mut self, span: u128) -> u128 {
            debug_assert!(span >= 1);
            (self.next_u64() as u128 * span) >> 64
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// Direct-sampling strategy: draws a value per case.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 10000 consecutive samples");
        }
    }

    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Types drawable from range strategies. Blanket impls over this trait
    /// (rather than per-type range impls) keep float-literal inference
    /// working: `Range<{float}>: Strategy` has a single candidate.
    pub trait RangeSample: PartialOrd + Sized + Copy {
        fn sample_between(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self;
    }

    macro_rules! int_range_sample {
        ($($t:ty),*) => {$(
            impl RangeSample for $t {
                fn sample_between(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self {
                    let span = (hi as i128 - lo as i128) as u128 + if inclusive { 1 } else { 0 };
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_sample!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_sample {
        ($($t:ty),*) => {$(
            impl RangeSample for $t {
                fn sample_between(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self {
                    let v = lo + (rng.unit_f64() as $t) * (hi - lo);
                    if !inclusive && v >= hi { lo } else { v }
                }
            }
        )*};
    }
    float_range_sample!(f32, f64);

    impl<T: RangeSample> Strategy for Range<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            assert!(self.start < self.end, "empty range strategy");
            T::sample_between(rng, self.start, self.end, false)
        }
    }

    impl<T: RangeSample> Strategy for RangeInclusive<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            T::sample_between(rng, lo, hi, true)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($t:ident . $n:tt),+))+) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )+};
    }
    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    pub struct AnyStrategy<T> {
        pub(crate) _marker: PhantomData<T>,
    }

    macro_rules! any_ints {
        ($($t:ty),*) => {$(
            impl Strategy for AnyStrategy<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    any_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for AnyStrategy<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for AnyStrategy<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            // Finite values only: property tests here never want NaN storms.
            (rng.unit_f64() - 0.5) * 2e6
        }
    }
}

pub mod arbitrary {
    use super::strategy::AnyStrategy;
    use std::marker::PhantomData;

    pub fn any<T>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: PhantomData,
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u128 + 1;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { ::std::assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { ::std::assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { ::std::assert_ne!($($args)*) };
}

/// The test-defining macro. Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     /// docs
///     #[test]
///     fn name(a in strategy, b in strategy) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        // The immediately-invoked closure gives `prop_assert!` an early
        // return target; inlining it (clippy's suggestion) would break that.
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(::std::concat!(
                ::std::module_path!(), "::", ::std::stringify!($name)
            ));
            let __max_draws: u64 = __config.cases as u64
                * (__config.max_global_rejects as u64 + 1);
            let mut __accepted: u64 = 0;
            let mut __draws: u64 = 0;
            while __accepted < __config.cases as u64 {
                __draws += 1;
                ::std::assert!(
                    __draws <= __max_draws,
                    "proptest (vendored): too many rejected cases in {}",
                    ::std::stringify!($name)
                );
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::Rejected> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if __outcome.is_ok() {
                    __accepted += 1;
                }
            }
        }
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(a in 3u32..10, b in 5u64..=5, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&a));
            prop_assert_eq!(b, 5);
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn assume_rejects(a in 0u32..100) {
            prop_assume!(a % 2 == 0);
            prop_assert!(a % 2 == 0);
        }

        #[test]
        fn maps_and_tuples(v in (1u32..5, 10u32..20).prop_map(|(x, y)| x + y)) {
            prop_assert!((11..25).contains(&v));
        }

        #[test]
        fn vectors(v in prop::collection::vec(0.5f64..1.5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|x| (0.5..1.5).contains(x)));
        }

        #[test]
        fn any_values(x in any::<u32>()) {
            let _ = x;
        }
    }
}

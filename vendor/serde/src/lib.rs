//! Offline replacement for the `serde` facade.
//!
//! The workspace only ever *serializes* values (the CLI prints JSON), and
//! only via `serde_json`. Typed deserialization is never exercised, so
//! `Deserialize` is a marker trait. `Serialize` is a direct JSON emitter:
//! `serialize_json` appends the value's compact JSON encoding to a string.
//! The derive macros come from the sibling vendored `serde_derive` crate.

pub use serde_derive::{Deserialize, Serialize};

/// JSON-emitting serialization. Implemented by the derive macro for repo
/// types and by hand for primitives and std containers below.
pub trait Serialize {
    fn serialize_json(&self, out: &mut String);
}

/// Marker trait; typed deserialization is unused in this workspace.
pub trait Deserialize<'de>: Sized {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(itoa_buf(*self as i128).as_str());
            }
        }
    )*};
}
int_impls!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

fn itoa_buf(v: i128) -> String {
    // Formatting through i128 covers every integer type the repo uses.
    v.to_string()
}

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

/// Shared float emission: shortest round-trip decimal, `null` for
/// non-finite values (JSON has no NaN/Inf).
pub fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        let mut s = format!("{v}");
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            s.push_str(".0");
        }
        out.push_str(&s);
    } else {
        out.push_str("null");
    }
}

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        write_f64(*self, out);
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        write_f64(*self as f64, out);
    }
}

/// Shared string escaping for the JSON subset the repo emits.
pub fn write_escaped_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_escaped_str(self, out);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_escaped_str(self, out);
    }
}

impl Serialize for char {
    fn serialize_json(&self, out: &mut String) {
        let mut buf = [0u8; 4];
        write_escaped_str(self.encode_utf8(&mut buf), out);
    }
}

fn write_seq<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>, out: &mut String) {
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.serialize_json(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$n.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )+};
}
tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for std::time::Duration {
    fn serialize_json(&self, out: &mut String) {
        // Matches upstream serde's {secs, nanos} encoding.
        out.push_str("{\"secs\":");
        self.as_secs().serialize_json(out);
        out.push_str(",\"nanos\":");
        self.subsec_nanos().serialize_json(out);
        out.push('}');
    }
}

impl<K: AsRef<str>, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped_str(k.as_ref(), out);
            out.push(':');
            v.serialize_json(out);
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json<T: Serialize>(v: &T) -> String {
        let mut s = String::new();
        v.serialize_json(&mut s);
        s
    }

    #[test]
    fn primitives() {
        assert_eq!(json(&42u32), "42");
        assert_eq!(json(&-7i64), "-7");
        assert_eq!(json(&true), "true");
        assert_eq!(json(&1.5f64), "1.5");
        assert_eq!(json(&1.0f64), "1.0");
        assert_eq!(json(&f64::NAN), "null");
        assert_eq!(json(&"a\"b"), "\"a\\\"b\"");
    }

    #[test]
    fn containers() {
        assert_eq!(json(&vec![1u32, 2, 3]), "[1,2,3]");
        assert_eq!(json(&Some(5u32)), "5");
        assert_eq!(json(&None::<u32>), "null");
        assert_eq!(json(&(1u32, "x")), "[1,\"x\"]");
    }
}

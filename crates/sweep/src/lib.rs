//! `nestwx-sweep` — declarative scenario-space sweeps.
//!
//! The paper's central question — which strategy × allocation × mapping
//! combination to run a multi-nest forecast with, on which partition —
//! is answered by *comparing* planned scenarios, not planning one. This
//! crate turns that comparison into a first-class, cacheable operation:
//!
//! 1. [`spec`] — a declarative JSON spec of scenario *spaces* (lists and
//!    ranges over machines, parent domains, nest sets and planner knobs)
//!    expanded deterministically into concrete [`nestwx_core::Scenario`]s,
//!    with canonical-encoding dedup.
//! 2. [`engine`] — a work-stealing executor (shared with the bench
//!    harness via [`nestwx_core::parallel`]) that plans and simulates
//!    every unique scenario, reusing a disk-persisted plan cache
//!    ([`nestwx_serve::DiskCache`]) keyed by the same versioned keys the
//!    serving daemon uses — so a warm sweep pre-heats `nestwx-serve`,
//!    and a running service's cache accelerates later sweeps.
//! 3. [`summary`] — Pareto fronts and winner-per-region tables exported
//!    through the versioned `nestwx obs` JSON envelope
//!    ([`nestwx_obs::SWEEP_SCHEMA`]).
//!
//! Determinism contract: expansion order, plan bytes, and the
//! whole-sweep `plans_digest` are identical across runs and across
//! `--jobs` values. Nothing in this crate reads ambient filesystem
//! paths — the cache directory always arrives through
//! [`SweepOptions::cache_dir`] (lint NW-D006).

pub mod engine;
pub mod spec;
pub mod summary;

pub use engine::{
    run_sweep, ParetoPoint, ScenarioOutcome, SweepError, SweepOptions, SweepReport, WinnerRow,
};
pub use spec::{Expansion, SpecError, SweepSpec};
pub use summary::{to_json, validate};

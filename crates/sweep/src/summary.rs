//! Rendering and validation of the sweep summary envelope.
//!
//! [`SweepReport`] already *is* the envelope (its first two fields are
//! `schema` = [`nestwx_obs::SWEEP_SCHEMA`] and `version` =
//! [`nestwx_obs::SWEEP_VERSION`]); this module renders it to JSON and
//! checks foreign envelopes before tooling trusts them.

use crate::engine::SweepReport;
use nestwx_obs::{SWEEP_SCHEMA, SWEEP_VERSION};
use serde_json::Value;

/// The envelope as pretty JSON (what `nestwx sweep --out` writes).
pub fn to_json(report: &SweepReport) -> String {
    serde_json::to_string_pretty(report).expect("sweep summary serializes")
}

/// Checks a parsed envelope's `schema`/`version` header. Returns a
/// human-readable rejection reason for anything this build cannot read.
pub fn validate(v: &Value) -> Result<(), String> {
    match v.get("schema").and_then(Value::as_str) {
        Some(s) if s == SWEEP_SCHEMA => {}
        Some(s) => return Err(format!("not a sweep summary (schema {s:?})")),
        None => return Err("missing schema field".to_string()),
    }
    match v.get("version").and_then(Value::as_u64) {
        Some(n) if n == SWEEP_VERSION => Ok(()),
        Some(n) => Err(format!(
            "sweep summary version {n} (this build reads {SWEEP_VERSION})"
        )),
        None => Err("missing version field".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_report() -> SweepReport {
        SweepReport {
            schema: SWEEP_SCHEMA.to_string(),
            version: SWEEP_VERSION,
            expanded: 4,
            unique: 3,
            duplicates: 1,
            iterations: 3,
            jobs: 2,
            computed: 3,
            disk_hits: 0,
            errors: 0,
            elapsed_seconds: 0.5,
            plans_digest: "0".repeat(16),
            disk: None,
            pareto: Vec::new(),
            winners: Vec::new(),
            scenarios: Vec::new(),
        }
    }

    #[test]
    fn envelope_carries_schema_and_version() {
        let v: Value = serde_json::from_str(&to_json(&empty_report())).unwrap();
        assert_eq!(v["schema"].as_str(), Some(SWEEP_SCHEMA));
        assert_eq!(v["version"].as_u64(), Some(SWEEP_VERSION));
        assert_eq!(v["expanded"].as_u64(), Some(4));
        assert_eq!(v["unique"].as_u64(), Some(3));
        assert!(validate(&v).is_ok());
    }

    #[test]
    fn disk_stats_are_omitted_without_a_cache_dir() {
        let v: Value = serde_json::from_str(&to_json(&empty_report())).unwrap();
        assert!(v.get("disk").is_none());
    }

    #[test]
    fn foreign_envelopes_are_rejected_with_reasons() {
        let wrong_schema: Value =
            serde_json::from_str(r#"{"schema":"nestwx-obs-summary","version":1}"#).unwrap();
        assert!(validate(&wrong_schema).unwrap_err().contains("schema"));
        let wrong_version: Value =
            serde_json::from_str(r#"{"schema":"nestwx-obs-sweep-summary","version":99}"#).unwrap();
        assert!(validate(&wrong_version).unwrap_err().contains("99"));
        let empty: Value = serde_json::from_str("{}").unwrap();
        assert!(validate(&empty).unwrap_err().contains("missing"));
    }
}

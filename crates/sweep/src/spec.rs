//! Declarative scenario-space specs and their deterministic expansion.
//!
//! A spec is a JSON document of axes — machines, parent domains, nest
//! sets (explicit or generated from count × size-range × positions), and
//! the strategy × allocation × mapping × io knobs. [`SweepSpec::expand`]
//! takes the cartesian product in declared axis order (machines
//! outermost, io innermost), so the same spec always yields the same
//! scenario sequence, and dedups by canonical scenario string keeping the
//! first occurrence — two axis entries that collapse to the same scenario
//! are planned once.
//!
//! The format is JSON rather than TOML because the workspace vendors only
//! `serde_json`; the shapes are a direct transcription of the CLI's
//! argument grammar (`286x307@24` parents, `150x150r3@10,12` nests).

use nestwx_core::strategy::{AllocPolicy, MappingKind, Strategy};
use nestwx_core::Scenario;
use nestwx_grid::{Domain, NestSpec};
use nestwx_netsim::{IoMode, Machine};
use nestwx_serve::parse_machine;
use serde_json::Value;
use std::collections::BTreeSet;
use std::fmt;

/// A spec that could not be parsed or validated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sweep spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

fn err(msg: impl Into<String>) -> SpecError {
    SpecError(msg.into())
}

/// The keys of a JSON object (the vendored `Value` exposes objects as
/// entry lists, not maps).
fn object_keys(v: &Value) -> Option<Vec<&str>> {
    match v {
        Value::Object(entries) => Some(entries.iter().map(|(k, _)| k.as_str()).collect()),
        _ => None,
    }
}

/// A parsed, validated scenario-space spec.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Target machines (`"bgl:64"` specs).
    pub machines: Vec<Machine>,
    /// Parent domains (`"286x307@24"` specs).
    pub parents: Vec<Domain>,
    /// Nest sets — each entry is one complete sibling configuration.
    pub nest_sets: Vec<Vec<NestSpec>>,
    /// Execution strategies (default `["concurrent"]`).
    pub strategies: Vec<Strategy>,
    /// Allocation policies (default `["huffman"]`).
    pub allocs: Vec<AllocPolicy>,
    /// Mapping kinds (default `["partition"]`).
    pub mappings: Vec<MappingKind>,
    /// I/O modes with output interval (default `["none"]`).
    pub io: Vec<(IoMode, Option<u32>)>,
    /// Simulated parent iterations per scenario (default 3; the engine
    /// may override).
    pub iterations: u32,
}

/// The result of expanding a spec: the raw cartesian-product size plus
/// the deduplicated scenario list in first-occurrence order.
#[derive(Debug, Clone)]
pub struct Expansion {
    /// Cartesian-product size before dedup.
    pub expanded: usize,
    /// Unique scenarios, in expansion order.
    pub scenarios: Vec<Scenario>,
}

impl SweepSpec {
    /// Parses and validates a spec from its JSON text.
    pub fn parse(text: &str) -> Result<SweepSpec, SpecError> {
        let v: Value =
            serde_json::from_str(text).map_err(|e| err(format!("not valid JSON: {e:?}")))?;
        let keys = object_keys(&v).ok_or_else(|| err("top level must be an object"))?;
        for key in keys {
            if !matches!(
                key,
                "machines"
                    | "parents"
                    | "nests"
                    | "nest_sets"
                    | "strategies"
                    | "allocs"
                    | "mappings"
                    | "io"
                    | "iterations"
            ) {
                return Err(err(format!("unknown field '{key}'")));
            }
        }

        let machines = str_list(&v, "machines")?
            .ok_or_else(|| err("missing 'machines' list"))?
            .iter()
            .map(|s| parse_machine(s).map_err(err))
            .collect::<Result<Vec<_>, _>>()?;
        let parents = str_list(&v, "parents")?
            .ok_or_else(|| err("missing 'parents' list"))?
            .iter()
            .map(|s| parse_parent(s))
            .collect::<Result<Vec<_>, _>>()?;

        let mut nest_sets: Vec<Vec<NestSpec>> = Vec::new();
        if let Some(gen) = v.get("nests") {
            nest_sets.extend(generate_nest_sets(gen)?);
        }
        if let Some(sets) = v.get("nest_sets") {
            let sets = sets
                .as_array()
                .ok_or_else(|| err("'nest_sets' must be a list of nest-string lists"))?;
            for set in sets {
                let specs = set
                    .as_array()
                    .ok_or_else(|| err("each nest_sets entry must be a list of nest strings"))?
                    .iter()
                    .map(|n| {
                        n.as_str()
                            .ok_or_else(|| err("nest entries must be strings"))
                            .and_then(parse_nest)
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                if specs.is_empty() {
                    return Err(err("nest_sets entries must not be empty"));
                }
                nest_sets.push(specs);
            }
        }
        if nest_sets.is_empty() {
            return Err(err(
                "no nest sets: provide a 'nests' generator or 'nest_sets'",
            ));
        }

        let strategies = tokens(&v, "strategies", &["concurrent"], parse_strategy)?;
        let allocs = tokens(&v, "allocs", &["huffman"], parse_alloc)?;
        let mappings = tokens(&v, "mappings", &["partition"], parse_mapping)?;
        let io = tokens(&v, "io", &["none"], parse_io)?;
        let iterations = match v.get("iterations") {
            None => 3,
            Some(x) => x
                .as_u64()
                .filter(|n| (1..=10_000).contains(n))
                .ok_or_else(|| err("'iterations' must be an integer in 1..=10000"))?
                as u32,
        };

        if machines.is_empty() || parents.is_empty() {
            return Err(err("'machines' and 'parents' must be non-empty"));
        }
        if strategies.is_empty() || allocs.is_empty() || mappings.is_empty() || io.is_empty() {
            return Err(err("axis lists must be non-empty"));
        }
        Ok(SweepSpec {
            machines,
            parents,
            nest_sets,
            strategies,
            allocs,
            mappings,
            io,
            iterations,
        })
    }

    /// The spec's cartesian-product size (before dedup).
    pub fn product_size(&self) -> usize {
        self.machines.len()
            * self.parents.len()
            * self.nest_sets.len()
            * self.strategies.len()
            * self.allocs.len()
            * self.mappings.len()
            * self.io.len()
    }

    /// Expands the spec into concrete scenarios: cartesian product in
    /// declared axis order, deduplicated by canonical scenario string
    /// keeping first occurrences. Deterministic — equal specs expand to
    /// equal sequences.
    pub fn expand(&self) -> Expansion {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut scenarios = Vec::new();
        let mut expanded = 0usize;
        for machine in &self.machines {
            for parent in &self.parents {
                for nests in &self.nest_sets {
                    for &strategy in &self.strategies {
                        for &alloc in &self.allocs {
                            for &mapping in &self.mappings {
                                for &(io_mode, output_interval) in &self.io {
                                    expanded += 1;
                                    let scenario = Scenario {
                                        machine: machine.clone(),
                                        parent: parent.clone(),
                                        nests: nests.clone(),
                                        strategy,
                                        alloc,
                                        mapping,
                                        io_mode,
                                        output_interval,
                                    };
                                    if seen.insert(scenario.canonical_string()) {
                                        scenarios.push(scenario);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Expansion {
            expanded,
            scenarios,
        }
    }
}

/// Optional list-of-strings field.
fn str_list(v: &Value, key: &str) -> Result<Option<Vec<String>>, SpecError> {
    let Some(list) = v.get(key) else {
        return Ok(None);
    };
    let arr = list
        .as_array()
        .ok_or_else(|| err(format!("'{key}' must be a list of strings")))?;
    arr.iter()
        .map(|x| {
            x.as_str()
                .map(str::to_owned)
                .ok_or_else(|| err(format!("'{key}' entries must be strings")))
        })
        .collect::<Result<Vec<_>, _>>()
        .map(Some)
}

/// Token-list field with a default, mapped through `parse`.
fn tokens<T>(
    v: &Value,
    key: &str,
    default: &[&str],
    parse: fn(&str) -> Result<T, SpecError>,
) -> Result<Vec<T>, SpecError> {
    let raw = match str_list(v, key)? {
        Some(list) => list,
        None => default.iter().map(|s| s.to_string()).collect(),
    };
    raw.iter().map(|s| parse(s)).collect()
}

/// `"286x307@24"` → parent domain.
fn parse_parent(s: &str) -> Result<Domain, SpecError> {
    let bad = || {
        err(format!(
            "parent '{s}': expected NXxNY@DX_KM, e.g. 286x307@24"
        ))
    };
    let (dims, dx) = s.split_once('@').ok_or_else(bad)?;
    let (nx, ny) = dims.split_once('x').ok_or_else(bad)?;
    let nx: u32 = nx.parse().map_err(|_| bad())?;
    let ny: u32 = ny.parse().map_err(|_| bad())?;
    let dx: f64 = dx.parse().map_err(|_| bad())?;
    if nx < 8 || ny < 8 || dx <= 0.0 || dx.is_nan() {
        return Err(err(format!(
            "parent '{s}': dimensions must be >= 8 and dx > 0"
        )));
    }
    Ok(Domain::parent(nx, ny, dx))
}

/// `"150x150r3@10,12"` → nest spec.
fn parse_nest(s: &str) -> Result<NestSpec, SpecError> {
    let bad = || {
        err(format!(
            "nest '{s}': expected NXxNYrR@OX,OY, e.g. 150x150r3@10,12"
        ))
    };
    let (dims, pos) = s.split_once('@').ok_or_else(bad)?;
    let (dims, r) = dims.split_once('r').ok_or_else(bad)?;
    let (nx, ny) = dims.split_once('x').ok_or_else(bad)?;
    let (ox, oy) = pos.split_once(',').ok_or_else(bad)?;
    let nx: u32 = nx.parse().map_err(|_| bad())?;
    let ny: u32 = ny.parse().map_err(|_| bad())?;
    let r: u32 = r.parse().map_err(|_| bad())?;
    let ox: u32 = ox.parse().map_err(|_| bad())?;
    let oy: u32 = oy.parse().map_err(|_| bad())?;
    if nx < 8 || ny < 8 || r < 1 {
        return Err(err(format!(
            "nest '{s}': dimensions must be >= 8 and r >= 1"
        )));
    }
    Ok(NestSpec::new(nx, ny, r, (ox, oy)))
}

/// The `nests` generator block: every `counts` entry crossed with every
/// size in the `size` range; a set of count `c` places `c` square nests of
/// that size at the first `c` `positions`.
fn generate_nest_sets(gen: &Value) -> Result<Vec<Vec<NestSpec>>, SpecError> {
    let keys = object_keys(gen).ok_or_else(|| err("'nests' must be an object"))?;
    for key in keys {
        if !matches!(key, "counts" | "size" | "refine" | "positions") {
            return Err(err(format!("unknown 'nests' field '{key}'")));
        }
    }
    let counts: Vec<usize> = gen
        .get("counts")
        .and_then(|c| c.as_array())
        .ok_or_else(|| err("'nests.counts' must be a list of integers"))?
        .iter()
        .map(|x| {
            x.as_u64()
                .filter(|&n| n >= 1)
                .map(|n| n as usize)
                .ok_or_else(|| err("'nests.counts' entries must be integers >= 1"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let size = gen
        .get("size")
        .ok_or_else(|| err("'nests.size' range required: {\"start\":N,\"step\":N,\"n\":N}"))?;
    let range_field = |key: &str| -> Result<u64, SpecError> {
        size.get(key)
            .and_then(|x| x.as_u64())
            .ok_or_else(|| err(format!("'nests.size.{key}' must be a non-negative integer")))
    };
    let (start, step, n) = (
        range_field("start")?,
        range_field("step")?,
        range_field("n")?,
    );
    if start < 8 || n < 1 {
        return Err(err("'nests.size': start must be >= 8 and n >= 1"));
    }
    let refine = match gen.get("refine") {
        None => 3,
        Some(x) => {
            x.as_u64()
                .filter(|&r| r >= 1)
                .ok_or_else(|| err("'nests.refine' must be an integer >= 1"))? as u32
        }
    };
    let positions: Vec<(u32, u32)> = gen
        .get("positions")
        .and_then(|p| p.as_array())
        .ok_or_else(|| err("'nests.positions' must be a list of [x, y] pairs"))?
        .iter()
        .map(|p| {
            let pair = p.as_array().filter(|a| a.len() == 2);
            let x = pair.and_then(|a| a[0].as_u64());
            let y = pair.and_then(|a| a[1].as_u64());
            match (x, y) {
                (Some(x), Some(y)) if x <= u32::MAX as u64 && y <= u32::MAX as u64 => {
                    Ok((x as u32, y as u32))
                }
                _ => Err(err(
                    "'nests.positions' entries must be [x, y] integer pairs",
                )),
            }
        })
        .collect::<Result<Vec<_>, _>>()?;
    let max_count = counts.iter().copied().max().unwrap_or(0);
    if positions.len() < max_count {
        return Err(err(format!(
            "'nests.positions' has {} entries but 'counts' asks for up to {max_count} nests",
            positions.len()
        )));
    }

    let mut sets = Vec::with_capacity(counts.len() * n as usize);
    for &count in &counts {
        for k in 0..n {
            let dim = start + k * step;
            let dim: u32 = dim
                .try_into()
                .map_err(|_| err("'nests.size' range overflows u32"))?;
            sets.push(
                positions[..count]
                    .iter()
                    .map(|&pos| NestSpec::new(dim, dim, refine, pos))
                    .collect(),
            );
        }
    }
    Ok(sets)
}

fn parse_strategy(t: &str) -> Result<Strategy, SpecError> {
    match t {
        "sequential" => Ok(Strategy::Sequential),
        "concurrent" => Ok(Strategy::Concurrent),
        _ => Err(err(format!(
            "unknown strategy '{t}' (sequential|concurrent)"
        ))),
    }
}

fn parse_alloc(t: &str) -> Result<AllocPolicy, SpecError> {
    match t {
        "equal" => Ok(AllocPolicy::Equal),
        "naive" => Ok(AllocPolicy::NaiveProportional),
        "huffman" => Ok(AllocPolicy::HuffmanSplitTree),
        _ => Err(err(format!("unknown alloc '{t}' (equal|naive|huffman)"))),
    }
}

fn parse_mapping(t: &str) -> Result<MappingKind, SpecError> {
    match t {
        "oblivious" => Ok(MappingKind::Oblivious),
        "txyz" => Ok(MappingKind::Txyz),
        "partition" => Ok(MappingKind::Partition),
        "multilevel" => Ok(MappingKind::MultiLevel),
        _ => Err(err(format!(
            "unknown mapping '{t}' (oblivious|txyz|partition|multilevel)"
        ))),
    }
}

/// `"none"`, `"pnetcdf:EVERY"`, or `"split:EVERY"`.
fn parse_io(t: &str) -> Result<(IoMode, Option<u32>), SpecError> {
    if t == "none" {
        return Ok((IoMode::None, None));
    }
    let (mode, every) = t
        .split_once(':')
        .ok_or_else(|| err(format!("io '{t}': expected none|pnetcdf:EVERY|split:EVERY")))?;
    let every: u32 = every
        .parse()
        .ok()
        .filter(|&n| n >= 1)
        .ok_or_else(|| err(format!("io '{t}': interval must be an integer >= 1")))?;
    match mode {
        "pnetcdf" => Ok((IoMode::PnetCdf, Some(every))),
        "split" => Ok((IoMode::SplitFiles, Some(every))),
        _ => Err(err(format!("unknown io mode '{mode}' (pnetcdf|split)"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"{
        "machines": ["bgl:64", "bgl:128"],
        "parents": ["286x307@24"],
        "nests": {
            "counts": [1, 2],
            "size": {"start": 96, "step": 12, "n": 2},
            "refine": 3,
            "positions": [[10, 12], [120, 120]]
        },
        "strategies": ["sequential", "concurrent"],
        "allocs": ["huffman", "naive"],
        "mappings": ["partition", "multilevel"]
    }"#;

    #[test]
    fn parses_and_expands_the_full_product() {
        let spec = SweepSpec::parse(SPEC).unwrap();
        // 2 machines × 1 parent × (2 counts × 2 sizes) × 2 strategies ×
        // 2 allocs × 2 mappings × 1 io = 64.
        assert_eq!(spec.product_size(), 64);
        let ex = spec.expand();
        assert_eq!(ex.expanded, 64);
        assert_eq!(ex.scenarios.len(), 64, "distinct axes never collapse");
        assert_eq!(spec.iterations, 3);
    }

    #[test]
    fn expansion_is_order_stable() {
        let spec = SweepSpec::parse(SPEC).unwrap();
        let a: Vec<String> = spec
            .expand()
            .scenarios
            .iter()
            .map(Scenario::canonical_string)
            .collect();
        let b: Vec<String> = spec
            .expand()
            .scenarios
            .iter()
            .map(Scenario::canonical_string)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn duplicate_axis_entries_are_planned_once() {
        let spec = SweepSpec::parse(
            r#"{
                "machines": ["bgl:64", "bgl:64"],
                "parents": ["286x307@24"],
                "nest_sets": [["96x96r3@10,12"], ["96x96r3@10,12"]],
                "mappings": ["partition", "partition"]
            }"#,
        )
        .unwrap();
        let ex = spec.expand();
        assert_eq!(ex.expanded, 8);
        assert_eq!(ex.scenarios.len(), 1, "all eight combos are one scenario");
    }

    #[test]
    fn explicit_nest_sets_and_generator_combine() {
        let spec = SweepSpec::parse(
            r#"{
                "machines": ["bgl:64"],
                "parents": ["286x307@24"],
                "nests": {
                    "counts": [1],
                    "size": {"start": 96, "step": 0, "n": 1},
                    "positions": [[10, 12]]
                },
                "nest_sets": [["150x140r3@10,12", "96x96r2@120,120"]]
            }"#,
        )
        .unwrap();
        assert_eq!(spec.nest_sets.len(), 2);
        assert_eq!(spec.nest_sets[0], vec![NestSpec::new(96, 96, 3, (10, 12))]);
        assert_eq!(
            spec.nest_sets[1],
            vec![
                NestSpec::new(150, 140, 3, (10, 12)),
                NestSpec::new(96, 96, 2, (120, 120)),
            ]
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        for (label, text) in [
            ("not json", "nope"),
            (
                "no machines",
                r#"{"parents": ["286x307@24"], "nest_sets": [["96x96r3@1,1"]]}"#,
            ),
            (
                "no nests",
                r#"{"machines": ["bgl:64"], "parents": ["286x307@24"]}"#,
            ),
            (
                "bad machine",
                r#"{"machines": ["bgl:63"], "parents": ["286x307@24"], "nest_sets": [["96x96r3@1,1"]]}"#,
            ),
            (
                "bad parent",
                r#"{"machines": ["bgl:64"], "parents": ["286@24"], "nest_sets": [["96x96r3@1,1"]]}"#,
            ),
            (
                "bad nest",
                r#"{"machines": ["bgl:64"], "parents": ["286x307@24"], "nest_sets": [["96x96@1,1"]]}"#,
            ),
            (
                "bad token",
                r#"{"machines": ["bgl:64"], "parents": ["286x307@24"], "nest_sets": [["96x96r3@1,1"]], "mappings": ["spiral"]}"#,
            ),
            (
                "unknown field",
                r#"{"machines": ["bgl:64"], "parents": ["286x307@24"], "nest_sets": [["96x96r3@1,1"]], "colour": "red"}"#,
            ),
            (
                "too few positions",
                r#"{"machines": ["bgl:64"], "parents": ["286x307@24"], "nests": {"counts": [2], "size": {"start": 96, "step": 0, "n": 1}, "positions": [[1, 1]]}}"#,
            ),
        ] {
            assert!(
                SweepSpec::parse(text).is_err(),
                "{label} should be rejected"
            );
        }
    }

    #[test]
    fn io_tokens_parse() {
        assert_eq!(parse_io("none").unwrap(), (IoMode::None, None));
        assert_eq!(parse_io("pnetcdf:5").unwrap(), (IoMode::PnetCdf, Some(5)));
        assert_eq!(parse_io("split:2").unwrap(), (IoMode::SplitFiles, Some(2)));
        assert!(parse_io("pnetcdf").is_err());
        assert!(parse_io("pnetcdf:0").is_err());
    }
}

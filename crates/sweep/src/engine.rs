//! The sweep executor: work-stealing parallel planning with disk-cache
//! reuse, plus Pareto-front and winner-per-region analysis.
//!
//! Each unique scenario is one unit of work for the shared work-stealing
//! driver ([`nestwx_core::parallel`]): look the scenario's sweep entry up
//! in the disk cache; on a miss, plan it, render the exact plan JSON the
//! serving daemon would cache ([`nestwx_serve::render_plan`]), simulate
//! it, and persist **both** the plan bytes (under the serve `plan` key —
//! this is what makes a warm sweep pre-heat `nestwx-serve`) and a small
//! sweep envelope (plan digest + simulated metrics, under the `sweep`
//! key). Planning and simulation are deterministic in the scenario, so
//! the produced plan bytes — and therefore the whole-sweep
//! `plans_digest` — are identical across runs and job counts.

use crate::spec::SweepSpec;
use nestwx_core::{fnv1a64, parallel_jobs, run_parallel_with, Scenario};
use nestwx_obs::clock;
use nestwx_serve::disk::{DiskCache, DiskStats};
use nestwx_serve::protocol::{alloc_token, io_token, mapping_token, strategy_token};
use nestwx_serve::{keys, render_plan};
use serde::Serialize;
use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::PathBuf;

/// Version tag inside each on-disk sweep envelope (independent of the
/// key-level `PLAN_FORMAT_VERSION`, which governs addressing).
const ENTRY_VERSION: u64 = 1;

/// Knobs for one sweep run.
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Disk-cache directory shared with `nestwx-serve`; `None` = no
    /// persistence (everything is computed). Always flows in explicitly —
    /// never an ambient path (lint NW-D006).
    pub cache_dir: Option<PathBuf>,
    /// Override of the spec's `iterations`.
    pub iterations: Option<u32>,
    /// Worker threads; `None` = `NESTWX_JOBS` / available parallelism.
    pub jobs: Option<usize>,
}

/// A sweep that could not start (scenario-level failures are recorded per
/// outcome instead).
#[derive(Debug)]
pub enum SweepError {
    /// The disk cache directory could not be opened.
    Disk(io::Error),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Disk(e) => write!(f, "cannot open cache dir: {e}"),
        }
    }
}

impl std::error::Error for SweepError {}

/// One scenario's result row.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioOutcome {
    /// The scenario's versioned sweep cache key.
    pub key: String,
    /// Machine name.
    pub machine: String,
    /// Ranks the machine runs.
    pub ranks: u32,
    /// Region-of-interest signature: parent dims plus every nest's
    /// `NXxNYrR@OX,OY` — the grouping key of the winner table.
    pub region: String,
    /// Strategy wire token.
    pub strategy: String,
    /// Allocation wire token.
    pub alloc: String,
    /// Mapping wire token.
    pub mapping: String,
    /// I/O wire token (`none`, `pnetcdf`, `split`).
    pub io: String,
    /// Simulated seconds per parent iteration under the plan.
    pub planned_s_per_iter: f64,
    /// FNV-1a 64 of the rendered plan JSON, as 16 hex digits.
    pub plan_digest: String,
    /// True when the result came from the disk cache.
    pub from_disk: bool,
    /// Planning/simulation failure, if any (such scenarios are excluded
    /// from the Pareto front and winner table).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub error: Option<String>,
}

/// A point on the cost/performance Pareto front: no other swept scenario
/// uses no more ranks *and* runs no slower.
#[derive(Debug, Clone, Serialize)]
pub struct ParetoPoint {
    /// Machine name.
    pub machine: String,
    /// Ranks used (the cost axis).
    pub ranks: u32,
    /// Region signature.
    pub region: String,
    /// Strategy wire token.
    pub strategy: String,
    /// Allocation wire token.
    pub alloc: String,
    /// Mapping wire token.
    pub mapping: String,
    /// Seconds per iteration (the performance axis).
    pub planned_s_per_iter: f64,
}

/// The best knob combination for one region configuration.
#[derive(Debug, Clone, Serialize)]
pub struct WinnerRow {
    /// Region signature (parent + nest set).
    pub region: String,
    /// Scenarios swept for this region.
    pub scenarios: usize,
    /// Winning machine name.
    pub machine: String,
    /// Winning machine's ranks.
    pub ranks: u32,
    /// Winning strategy token.
    pub strategy: String,
    /// Winning alloc token.
    pub alloc: String,
    /// Winning mapping token.
    pub mapping: String,
    /// The winner's seconds per iteration.
    pub planned_s_per_iter: f64,
    /// How much slower the worst combo for this region is, in percent of
    /// the winner's time — the price of picking knobs blindly.
    pub spread_pct: f64,
}

/// Everything a sweep produced. Serializes directly as the versioned
/// `nestwx obs` sweep envelope: `schema`/`version` are the first fields,
/// so downstream tooling can dispatch without a wrapper struct.
#[derive(Debug, Clone, Serialize)]
pub struct SweepReport {
    /// Always [`nestwx_obs::SWEEP_SCHEMA`].
    pub schema: String,
    /// Always [`nestwx_obs::SWEEP_VERSION`].
    pub version: u64,
    /// Cartesian-product size of the spec.
    pub expanded: usize,
    /// Unique scenarios after canonical dedup.
    pub unique: usize,
    /// Product entries dropped by dedup.
    pub duplicates: usize,
    /// Simulated iterations per scenario.
    pub iterations: u32,
    /// Worker threads used.
    pub jobs: usize,
    /// Scenarios planned+simulated this run.
    pub computed: usize,
    /// Scenarios answered from the disk cache.
    pub disk_hits: usize,
    /// Scenarios that failed to plan or simulate.
    pub errors: usize,
    /// Wall-clock seconds for the whole sweep.
    pub elapsed_seconds: f64,
    /// FNV-1a 64 over every `key=plan_digest` pair in key order, as 16
    /// hex digits — equal digests mean byte-identical plan sets.
    pub plans_digest: String,
    /// Disk-cache counters (`None` without a cache dir).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub disk: Option<DiskStats>,
    /// The rank-count vs seconds-per-iteration Pareto front.
    pub pareto: Vec<ParetoPoint>,
    /// Winner per region configuration.
    pub winners: Vec<WinnerRow>,
    /// Per-scenario rows, in expansion order.
    pub scenarios: Vec<ScenarioOutcome>,
}

/// Expands `spec` and runs every unique scenario through the
/// work-stealing driver, reusing (and refilling) the disk cache when one
/// is configured.
pub fn run_sweep(spec: &SweepSpec, opts: &SweepOptions) -> Result<SweepReport, SweepError> {
    let iterations = opts.iterations.unwrap_or(spec.iterations);
    let jobs = opts.jobs.unwrap_or_else(parallel_jobs).max(1);
    let disk = match &opts.cache_dir {
        Some(dir) => Some(DiskCache::open(dir).map_err(SweepError::Disk)?),
        None => None,
    };
    let started = clock::now();
    let expansion = spec.expand();
    let outcomes = run_parallel_with(jobs, &expansion.scenarios, |scenario| {
        run_one(scenario, iterations, disk.as_ref())
    });
    let elapsed_seconds = clock::since(started).as_secs_f64();

    let computed = outcomes
        .iter()
        .filter(|o| !o.from_disk && o.error.is_none())
        .count();
    let disk_hits = outcomes.iter().filter(|o| o.from_disk).count();
    let errors = outcomes.iter().filter(|o| o.error.is_some()).count();
    Ok(SweepReport {
        schema: nestwx_obs::SWEEP_SCHEMA.to_string(),
        version: nestwx_obs::SWEEP_VERSION,
        expanded: expansion.expanded,
        unique: expansion.scenarios.len(),
        duplicates: expansion.expanded - expansion.scenarios.len(),
        iterations,
        jobs,
        computed,
        disk_hits,
        errors,
        elapsed_seconds,
        plans_digest: plans_digest(&outcomes),
        disk: disk.as_ref().map(DiskCache::stats),
        pareto: pareto_front(&outcomes),
        winners: winners(&outcomes),
        scenarios: outcomes,
    })
}

fn run_one(scenario: &Scenario, iterations: u32, disk: Option<&DiskCache>) -> ScenarioOutcome {
    let key = keys::sweep_key(scenario, iterations);
    let mut row = ScenarioOutcome {
        key,
        machine: scenario.machine.name.clone(),
        ranks: scenario.machine.ranks(),
        region: region_label(scenario),
        strategy: strategy_token(scenario.strategy).to_string(),
        alloc: alloc_token(scenario.alloc).to_string(),
        mapping: mapping_token(scenario.mapping).to_string(),
        io: io_token(scenario.io_mode).to_string(),
        planned_s_per_iter: 0.0,
        plan_digest: String::new(),
        from_disk: false,
        error: None,
    };
    if let Some(entry) = disk
        .and_then(|d| d.get(&row.key))
        .and_then(|raw| parse_entry(&raw))
    {
        (row.plan_digest, row.planned_s_per_iter) = entry;
        row.from_disk = true;
        return row;
    }
    let plan = match scenario.planner().plan(&scenario.parent, &scenario.nests) {
        Ok(plan) => plan,
        Err(e) => {
            row.error = Some(e.to_string());
            return row;
        }
    };
    let plan_json = match render_plan(scenario, &plan) {
        Ok(json) => json,
        Err(e) => {
            row.error = Some(format!("render: {e:?}"));
            return row;
        }
    };
    let report = match plan.simulate(iterations) {
        Ok(report) => report,
        Err(e) => {
            row.error = Some(e.to_string());
            return row;
        }
    };
    row.plan_digest = format!("{:016x}", fnv1a64(plan_json.as_bytes()));
    row.planned_s_per_iter = report.per_iteration();
    if let Some(d) = disk {
        // Persistence is best-effort (a full disk degrades to recompute,
        // never to failure). The plan bytes go under the *serve* key so a
        // later `nestwx serve --cache-dir` answers these scenarios from
        // disk, byte-identically.
        let _ = d.put(&keys::plan_key(scenario), &plan_json);
        if let Ok(entry) = render_entry(&row.plan_digest, row.planned_s_per_iter) {
            let _ = d.put(&row.key, &entry);
        }
    }
    row
}

#[derive(Serialize)]
struct DiskEntry {
    v: u64,
    plan_digest: String,
    planned_s_per_iter: f64,
}

fn render_entry(plan_digest: &str, planned_s_per_iter: f64) -> Result<String, serde_json::Error> {
    serde_json::to_string(&DiskEntry {
        v: ENTRY_VERSION,
        plan_digest: plan_digest.to_string(),
        planned_s_per_iter,
    })
}

/// Decodes a stored sweep envelope; any malformed field degrades to a
/// recompute (corruption-tolerance at the envelope layer, mirroring the
/// file layer in [`DiskCache`]).
fn parse_entry(raw: &str) -> Option<(String, f64)> {
    let v: Value = serde_json::from_str(raw).ok()?;
    if v.get("v")?.as_u64()? != ENTRY_VERSION {
        return None;
    }
    let digest = v.get("plan_digest")?.as_str()?;
    if digest.len() != 16 || !digest.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    let s_per_iter = v.get("planned_s_per_iter")?.as_f64()?;
    Some((digest.to_string(), s_per_iter))
}

/// `PARENTX x PARENTY + NXxNYrR@OX,OY…` — identifies a region-of-interest
/// configuration independent of machine and knobs.
fn region_label(scenario: &Scenario) -> String {
    use std::fmt::Write as _;
    let mut label = format!("{}x{}", scenario.parent.nx, scenario.parent.ny);
    for n in &scenario.nests {
        let _ = write!(
            label,
            "+{}x{}r{}@{},{}",
            n.nx, n.ny, n.refine_ratio, n.offset.0, n.offset.1
        );
    }
    label
}

/// One digest over the whole plan set: FNV-1a 64 of every
/// `key=plan_digest` line in key order (so it is independent of execution
/// interleaving and job count). Errored scenarios contribute their key
/// with an empty digest — an error appearing or vanishing changes it.
fn plans_digest(outcomes: &[ScenarioOutcome]) -> String {
    let mut pairs: Vec<(&str, &str)> = outcomes
        .iter()
        .map(|o| (o.key.as_str(), o.plan_digest.as_str()))
        .collect();
    pairs.sort_unstable();
    let mut bytes = Vec::new();
    for (key, digest) in pairs {
        bytes.extend_from_slice(key.as_bytes());
        bytes.push(b'=');
        bytes.extend_from_slice(digest.as_bytes());
        bytes.push(b'\n');
    }
    format!("{:016x}", fnv1a64(&bytes))
}

fn by_time(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal)
}

/// Minimizes (ranks, seconds/iter): a scenario is on the front when no
/// other successful scenario uses no more ranks and runs no slower.
fn pareto_front(outcomes: &[ScenarioOutcome]) -> Vec<ParetoPoint> {
    let mut order: Vec<&ScenarioOutcome> = outcomes.iter().filter(|o| o.error.is_none()).collect();
    order.sort_by(|a, b| {
        a.ranks
            .cmp(&b.ranks)
            .then(by_time(a.planned_s_per_iter, b.planned_s_per_iter))
            .then(a.key.cmp(&b.key))
    });
    let mut front = Vec::new();
    let mut best = f64::INFINITY;
    for o in order {
        if o.planned_s_per_iter < best {
            best = o.planned_s_per_iter;
            front.push(ParetoPoint {
                machine: o.machine.clone(),
                ranks: o.ranks,
                region: o.region.clone(),
                strategy: o.strategy.clone(),
                alloc: o.alloc.clone(),
                mapping: o.mapping.clone(),
                planned_s_per_iter: o.planned_s_per_iter,
            });
        }
    }
    front
}

/// Groups successful scenarios by region signature and picks the fastest
/// combo per group (ties broken by key order, so the table is
/// deterministic).
fn winners(outcomes: &[ScenarioOutcome]) -> Vec<WinnerRow> {
    let mut groups: BTreeMap<&str, Vec<&ScenarioOutcome>> = BTreeMap::new();
    for o in outcomes.iter().filter(|o| o.error.is_none()) {
        groups.entry(&o.region).or_default().push(o);
    }
    groups
        .into_iter()
        .map(|(region, mut rows)| {
            rows.sort_by(|a, b| {
                by_time(a.planned_s_per_iter, b.planned_s_per_iter).then(a.key.cmp(&b.key))
            });
            let best = rows[0];
            let worst = rows[rows.len() - 1];
            let spread_pct = if best.planned_s_per_iter > 0.0 {
                (worst.planned_s_per_iter / best.planned_s_per_iter - 1.0) * 100.0
            } else {
                0.0
            };
            WinnerRow {
                region: region.to_string(),
                scenarios: rows.len(),
                machine: best.machine.clone(),
                ranks: best.ranks,
                strategy: best.strategy.clone(),
                alloc: best.alloc.clone(),
                mapping: best.mapping.clone(),
                planned_s_per_iter: best.planned_s_per_iter,
                spread_pct,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(key: &str, ranks: u32, region: &str, time: f64) -> ScenarioOutcome {
        ScenarioOutcome {
            key: key.to_string(),
            machine: "bgl".into(),
            ranks,
            region: region.to_string(),
            strategy: "concurrent".into(),
            alloc: "huffman".into(),
            mapping: "partition".into(),
            io: "none".into(),
            planned_s_per_iter: time,
            plan_digest: "0".repeat(16),
            from_disk: false,
            error: None,
        }
    }

    #[test]
    fn pareto_keeps_only_dominant_points() {
        let rows = vec![
            outcome("a", 64, "r", 10.0),
            outcome("b", 64, "r", 12.0), // dominated by a (same ranks, slower)
            outcome("c", 128, "r", 8.0), // on front (more ranks, faster)
            outcome("d", 128, "r", 11.0), // dominated by a
            outcome("e", 256, "r", 8.0), // dominated by c (more ranks, not faster)
        ];
        let front = pareto_front(&rows);
        let keys: Vec<u32> = front.iter().map(|p| p.ranks).collect();
        assert_eq!(keys, vec![64, 128]);
        assert_eq!(front[0].planned_s_per_iter, 10.0);
        assert_eq!(front[1].planned_s_per_iter, 8.0);
    }

    #[test]
    fn errored_scenarios_never_reach_front_or_winners() {
        let mut bad = outcome("x", 1, "r", 0.001);
        bad.error = Some("boom".into());
        let rows = vec![bad, outcome("a", 64, "r", 10.0)];
        assert_eq!(pareto_front(&rows).len(), 1);
        let w = winners(&rows);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].scenarios, 1);
    }

    #[test]
    fn winners_report_spread_per_region() {
        let rows = vec![
            outcome("a", 64, "r1", 10.0),
            outcome("b", 64, "r1", 15.0),
            outcome("c", 64, "r2", 7.0),
        ];
        let w = winners(&rows);
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].region, "r1");
        assert_eq!(w[0].planned_s_per_iter, 10.0);
        assert!((w[0].spread_pct - 50.0).abs() < 1e-9);
        assert_eq!(w[1].region, "r2");
        assert_eq!(w[1].spread_pct, 0.0);
    }

    #[test]
    fn plans_digest_is_order_independent() {
        let a = vec![outcome("k1", 64, "r", 1.0), outcome("k2", 64, "r", 2.0)];
        let b = vec![outcome("k2", 64, "r", 2.0), outcome("k1", 64, "r", 1.0)];
        assert_eq!(plans_digest(&a), plans_digest(&b));
        let mut c = a.clone();
        c[0].plan_digest = "f".repeat(16);
        assert_ne!(plans_digest(&a), plans_digest(&c));
    }

    #[test]
    fn disk_entries_round_trip_and_reject_garbage() {
        let entry = render_entry("00deadbeef001122", 1.25).unwrap();
        assert_eq!(parse_entry(&entry), Some(("00deadbeef001122".into(), 1.25)));
        assert_eq!(parse_entry("not json"), None);
        assert_eq!(
            parse_entry(
                "{\"v\":99,\"plan_digest\":\"00deadbeef001122\",\"planned_s_per_iter\":1.0}"
            ),
            None
        );
        assert_eq!(
            parse_entry("{\"v\":1,\"plan_digest\":\"zz\",\"planned_s_per_iter\":1.0}"),
            None
        );
        assert_eq!(
            parse_entry("{\"v\":1,\"plan_digest\":\"00deadbeef001122\"}"),
            None
        );
    }
}

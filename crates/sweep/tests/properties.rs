//! Property tests for spec expansion: order stability and dedup.

use nestwx_sweep::SweepSpec;
use proptest::prelude::*;

/// Builds a spec JSON from generated axis choices. Axes draw from small
/// pools so the product stays cheap while still varying shape.
fn spec_json(
    machines: &[usize],
    sizes: (u64, u64, u64),
    allocs: &[usize],
    mappings: &[usize],
) -> String {
    let machine_pool = ["\"bgl:64\"", "\"bgl:128\"", "\"bgp:256\""];
    let alloc_pool = ["\"equal\"", "\"naive\"", "\"huffman\""];
    let mapping_pool = [
        "\"oblivious\"",
        "\"txyz\"",
        "\"partition\"",
        "\"multilevel\"",
    ];
    let pick = |pool: &[&str], idx: &[usize]| -> String {
        idx.iter()
            .map(|&i| pool[i % pool.len()].to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    format!(
        r#"{{
            "machines": [{}],
            "parents": ["286x307@24"],
            "nests": {{
                "counts": [1, 2],
                "size": {{"start": {}, "step": {}, "n": {}}},
                "positions": [[10, 12], [120, 120]]
            }},
            "allocs": [{}],
            "mappings": [{}]
        }}"#,
        pick(&machine_pool, machines),
        sizes.0,
        sizes.1,
        sizes.2,
        pick(&alloc_pool, allocs),
        pick(&mapping_pool, mappings),
    )
}

proptest! {
    /// Expanding the same spec twice yields the same scenario sequence —
    /// byte-for-byte equal canonical strings, in the same order.
    #[test]
    fn expansion_is_order_stable(
        machines in proptest::collection::vec(0usize..3, 1..3),
        start in 8u64..64,
        step in 0u64..16,
        n in 1u64..3,
        allocs in proptest::collection::vec(0usize..3, 1..3),
        mappings in proptest::collection::vec(0usize..4, 1..3),
    ) {
        let text = spec_json(&machines, (start, step, n), &allocs, &mappings);
        let spec = SweepSpec::parse(&text).unwrap();
        let a: Vec<String> = spec.expand().scenarios.iter()
            .map(|s| s.canonical_string()).collect();
        let b: Vec<String> = spec.expand().scenarios.iter()
            .map(|s| s.canonical_string()).collect();
        prop_assert_eq!(a, b);
    }

    /// Expansion never emits two scenarios with the same canonical
    /// encoding, and never emits more scenarios than the product size.
    #[test]
    fn expansion_is_duplicate_free(
        machines in proptest::collection::vec(0usize..3, 1..4),
        start in 8u64..64,
        step in 0u64..16,
        n in 1u64..3,
        allocs in proptest::collection::vec(0usize..3, 1..4),
        mappings in proptest::collection::vec(0usize..4, 1..4),
    ) {
        let text = spec_json(&machines, (start, step, n), &allocs, &mappings);
        let spec = SweepSpec::parse(&text).unwrap();
        let ex = spec.expand();
        prop_assert_eq!(ex.expanded, spec.product_size());
        let mut canon: Vec<String> = ex.scenarios.iter()
            .map(|s| s.canonical_string()).collect();
        let emitted = canon.len();
        prop_assert!(emitted <= ex.expanded);
        canon.sort();
        canon.dedup();
        prop_assert_eq!(canon.len(), emitted, "duplicate scenarios escaped dedup");
    }
}

//! End-to-end sweep ↔ serve integration: a sweep warmed into a disk
//! cache must make `nestwx-serve` answer `plan` requests from disk,
//! byte-identically to a server that plans from scratch — and re-running
//! the sweep must be a pure disk replay with the same `plans_digest`.

#![cfg(not(loom))]

use nestwx_core::strategy::{AllocPolicy, MappingKind, Strategy};
use nestwx_core::TempDir;
use nestwx_grid::{Domain, NestSpec};
use nestwx_serve::{spawn, Client, Request, RequestBody, ScenarioParams, ServeConfig};
use nestwx_sweep::{run_sweep, SweepOptions, SweepSpec};
use serde_json::Value;

const SPEC: &str = r#"{
    "machines": ["bgl:64"],
    "parents": ["286x307@24"],
    "nest_sets": [["150x141r3@10,12", "96x90r3@180,170"]],
    "strategies": ["sequential", "concurrent"],
    "allocs": ["equal", "naive", "huffman"],
    "mappings": ["oblivious", "txyz", "partition", "multilevel"],
    "iterations": 2
}"#;

fn options(cache: &TempDir) -> SweepOptions {
    SweepOptions {
        cache_dir: Some(cache.path().to_path_buf()),
        iterations: None,
        jobs: Some(4),
    }
}

fn plan_request(id: &str, strategy: Strategy, alloc: AllocPolicy, mapping: MappingKind) -> Request {
    Request::new(
        Some(id.into()),
        RequestBody::Plan(ScenarioParams {
            machine: "bgl:64".into(),
            parent: Domain::parent(286, 307, 24.0),
            nests: vec![
                NestSpec::new(150, 141, 3, (10, 12)),
                NestSpec::new(96, 90, 3, (180, 170)),
            ],
            strategy,
            alloc,
            mapping,
            io: None,
        }),
    )
}

fn disk_counter(client: &mut Client, key: &str) -> u64 {
    let resp = client
        .call(&Request::new(None, RequestBody::Stats))
        .expect("stats call");
    resp.result()
        .and_then(|r| r.get("disk"))
        .and_then(|d| d.get(key))
        .and_then(Value::as_u64)
        .expect("disk counters in stats")
}

#[test]
fn warm_sweep_preheats_serve_byte_identically() {
    let cache = TempDir::new("sweep-int").expect("tempdir");

    // Cold sweep: everything computed, nothing from disk.
    let spec = SweepSpec::parse(SPEC).expect("spec");
    let cold = run_sweep(&spec, &options(&cache)).expect("cold sweep");
    assert_eq!(cold.errors, 0, "scenario failures: {:?}", cold.scenarios);
    assert_eq!(
        cold.unique, 24,
        "1 machine × 1 parent × 1 nest set × 2×3×4 knobs"
    );
    assert_eq!(cold.computed, cold.unique);
    assert_eq!(cold.disk_hits, 0);

    // Warm sweep: pure disk replay, identical plan set.
    let warm = run_sweep(&spec, &options(&cache)).expect("warm sweep");
    assert_eq!(warm.computed, 0, "warm sweep recomputed scenarios");
    assert_eq!(warm.disk_hits, warm.unique);
    assert_eq!(warm.plans_digest, cold.plans_digest);

    // A server pointed at the swept cache dir answers from disk...
    let mut warm_cfg = ServeConfig::new("127.0.0.1:0");
    warm_cfg.cache_dir = Some(cache.path().to_path_buf());
    let warm_handle = spawn(warm_cfg).expect("spawn warmed server");
    let mut warm_client = Client::connect(warm_handle.addr()).expect("connect warmed");

    // ...while a cache-less server plans the same scenarios from scratch.
    let fresh_handle = spawn(ServeConfig::new("127.0.0.1:0")).expect("spawn fresh server");
    let mut fresh_client = Client::connect(fresh_handle.addr()).expect("connect fresh");

    let combos = [
        (
            Strategy::Concurrent,
            AllocPolicy::HuffmanSplitTree,
            MappingKind::Partition,
        ),
        (Strategy::Sequential, AllocPolicy::Equal, MappingKind::Txyz),
        (
            Strategy::Concurrent,
            AllocPolicy::NaiveProportional,
            MappingKind::MultiLevel,
        ),
    ];
    for (i, &(strategy, alloc, mapping)) in combos.iter().enumerate() {
        let req = plan_request(&format!("w{i}"), strategy, alloc, mapping);
        let from_disk = warm_client.call(&req).expect("warmed plan");
        let from_scratch = fresh_client.call(&req).expect("fresh plan");
        assert!(from_disk.ok(), "warmed server rejected: {}", from_disk.raw);
        assert_eq!(
            from_disk.raw, from_scratch.raw,
            "disk-cached plan differs from freshly planned bytes"
        );
    }

    // The warmed server really did hit disk — once per combo — and wrote
    // nothing new (every plan was already present).
    assert_eq!(disk_counter(&mut warm_client, "hits"), combos.len() as u64);
    assert_eq!(disk_counter(&mut warm_client, "writes"), 0);
    assert_eq!(disk_counter(&mut warm_client, "corrupt"), 0);

    for (handle, client) in [
        (warm_handle, &mut warm_client),
        (fresh_handle, &mut fresh_client),
    ] {
        let resp = client
            .call(&Request::new(Some("bye".into()), RequestBody::Shutdown))
            .expect("shutdown");
        assert!(resp.ok(), "shutdown rejected: {}", resp.raw);
        assert!(handle.wait().clean(), "unclean drain");
    }
}

#[test]
fn plans_digest_is_job_count_invariant() {
    let spec = SweepSpec::parse(SPEC).expect("spec");
    let mut digests = Vec::new();
    for jobs in [1usize, 3, 8] {
        let opts = SweepOptions {
            cache_dir: None,
            iterations: None,
            jobs: Some(jobs),
        };
        let report = run_sweep(&spec, &opts).expect("sweep");
        assert_eq!(report.errors, 0);
        assert_eq!(report.jobs, jobs);
        digests.push(report.plans_digest);
    }
    assert_eq!(digests[0], digests[1]);
    assert_eq!(digests[1], digests[2]);
}

#[test]
fn sweep_report_orders_scenarios_like_the_spec() {
    let spec = SweepSpec::parse(SPEC).expect("spec");
    let expansion = spec.expand();
    let opts = SweepOptions {
        cache_dir: None,
        iterations: None,
        jobs: Some(4),
    };
    let report = run_sweep(&spec, &opts).expect("sweep");
    assert_eq!(report.scenarios.len(), expansion.scenarios.len());
    for (row, scenario) in report.scenarios.iter().zip(&expansion.scenarios) {
        assert_eq!(
            row.key,
            nestwx_serve::keys::sweep_key(scenario, spec.iterations)
        );
    }
    // Pareto front and winners cover the single region swept.
    assert!(!report.pareto.is_empty(), "no pareto points");
    assert_eq!(report.winners.len(), 1, "one region configuration swept");
    assert_eq!(report.winners[0].scenarios, 24);
}

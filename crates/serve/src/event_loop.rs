//! The nonblocking readiness loop.
//!
//! Each reader thread multiplexes its connections through repeated
//! *passes* over a poll registry (the connection map) — std-only, no
//! `epoll` binding, no external deps:
//!
//! 1. **accept** — reader 0 owns the nonblocking listener; new
//!    connections are adopted locally or handed off round-robin to the
//!    other readers through a channel;
//! 2. **completions** — worker answers arrive on the reader's completion
//!    channel and fill their connection's in-order response slot;
//! 3. **pump** — every connection's socket is drained without blocking
//!    and complete request lines are processed: a raw-line **hot cache**
//!    answers repeated cache-hit lines without even parsing JSON,
//!    `stats`/`shutdown` and plan-cache hits are answered inline, and
//!    misses become queued jobs carrying a cancellation token and an
//!    optional deadline;
//! 4. **deadline sweep** — expired in-flight requests are claimed away
//!    from the workers and answered `deadline_exceeded` immediately;
//! 5. **flush & reap** — in-order responses are written as far as each
//!    socket accepts, and finished/dead/idle/over-lifetime connections
//!    are dropped.
//!
//! An idle reader first spin-yields (cheap when traffic is bursty), then
//! parks on its completion channel with a short timeout — the one event
//! source that cannot be polled — so sweeps still run every millisecond
//! or so.
//!
//! Per-client **rate limiting** happens before any work is done for a
//! request: each parsed request carrying a `client` field is charged an
//! endpoint-weighted cost (`compare` > `plan` > `predict`; control-plane
//! ops are free) against that client's token bucket, and a request the
//! bucket cannot cover is answered `rate_limited` without touching the
//! cache or the queue.

use crate::batch::{Completion, Outcome, Pending, Reply};
use crate::conn::Conn;
use crate::flight::{dur_us, RequestSpan, SpanPath};
use crate::keys;
use crate::limits::CancelToken;
use crate::protocol::{
    parse_machine, response_err_line, response_ok_line, Endpoint, ErrorKind, Line, ProtoError,
    Request, RequestBody, MAX_LINE_BYTES,
};
use crate::queue::PushError;
use crate::server::{
    deadline_exceeded, internal, render_stats, render_trace, shutting_down, Job, ServerState,
};
use crate::sync::Ordering;
use nestwx_grid::DomainFeatures;
use nestwx_obs::clock;
use std::collections::BTreeMap;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Raw-line hot cache entries per reader; the map is cleared (not
/// LRU-scanned) when full — repopulation from the plan cache is one
/// request per line.
const HOT_CACHE_CAP: usize = 8192;

/// Empty passes before an idle reader stops yield-spinning and parks.
const SPIN_PASSES: u32 = 64;

/// Park timeout — bounds deadline/idle sweep latency while idle.
const PARK: Duration = Duration::from_millis(1);

/// The channel pair wiring one reader into the server: workers send
/// [`Completion`]s to `completions_tx`; reader 0 hands accepted sockets
/// to `handoff_tx`. The receivers are `Option` so `spawn` can move them
/// into the reader thread while keeping the senders cloneable.
pub(crate) struct ReaderChannels {
    pub(crate) completions_tx: Sender<Completion>,
    pub(crate) completions_rx: Option<Receiver<Completion>>,
    pub(crate) handoff_tx: Sender<TcpStream>,
    pub(crate) handoff_rx: Option<Receiver<TcpStream>>,
}

/// One hot-cache entry: everything needed to answer a previously-seen
/// request line without parsing it, while still charging the rate
/// limiter and counting the plan-cache hit.
struct HotEntry {
    key: String,
    digest: u64,
    response: String,
    endpoint: Endpoint,
    client: Option<String>,
    cost: u64,
    id: Option<String>,
}

/// One in-flight request with a deadline, swept each pass.
struct DeadlineEntry {
    at: Instant,
    cancel: CancelToken,
    id: Option<String>,
    endpoint: Endpoint,
    started: Instant,
}

/// Reader-side half of a worker-path flight span, registered when a job
/// is submitted and finished when its completion (or deadline expiry)
/// arrives. Only populated while recording is on.
struct SpanSeed {
    /// Arrival time (µs since server epoch).
    ts_us: u64,
    /// Arrival → parse done (µs).
    parse_us: u32,
    endpoint: Endpoint,
}

/// Saturating µs delta on the epoch timeline.
fn delta_us(start_us: u64, end_us: u64) -> u32 {
    end_us.saturating_sub(start_us).min(u32::MAX as u64) as u32
}

/// Token-bucket cost of one request, by endpoint — weighted fairness: a
/// simulation-backed `compare` spends four times what a `predict` does,
/// and the control plane (`stats`/`shutdown`) is never shed.
fn endpoint_cost(e: Endpoint) -> u64 {
    match e {
        Endpoint::Predict => 1,
        Endpoint::Plan => 2,
        Endpoint::Compare => 4,
        // A fleet execution spins up worker threads and sockets and runs
        // the real model — by far the most expensive request.
        Endpoint::Execute => 8,
        Endpoint::Stats | Endpoint::Trace | Endpoint::Shutdown => 0,
    }
}

fn overloaded() -> ProtoError {
    ProtoError::new(ErrorKind::Overloaded, "request queue full, retry later")
}

fn rate_limited() -> ProtoError {
    ProtoError::new(
        ErrorKind::RateLimited,
        "client token bucket empty, retry later",
    )
}

/// Runs one reader until shutdown completes. `listener` is `Some` only
/// for reader 0; `handoffs` holds every reader's handoff sender (again
/// only on reader 0), indexed by reader.
pub(crate) fn run_reader(
    state: Arc<ServerState>,
    idx: usize,
    listener: Option<TcpListener>,
    handoffs: Vec<Sender<TcpStream>>,
    handoff_rx: Receiver<TcpStream>,
    completions_tx: Sender<Completion>,
    completions_rx: Receiver<Completion>,
) {
    let idle = Duration::from_millis(state.cfg.idle_ms);
    let lifetime = Duration::from_millis(state.cfg.lifetime_ms);
    let default_deadline =
        (state.cfg.deadline_ms > 0).then(|| Duration::from_millis(state.cfg.deadline_ms));
    let rate_on = state.cfg.rate > 0;
    let flight_on = state.flight.enabled();
    let mut reader = ReaderLoop {
        state,
        idx,
        listener,
        handoffs,
        handoff_rx,
        completions_tx,
        completions_rx,
        conns: BTreeMap::new(),
        next_conn: 0,
        rr: 0,
        hot: BTreeMap::new(),
        deadlines: BTreeMap::new(),
        seeds: BTreeMap::new(),
        inflight: 0,
        idle,
        lifetime,
        default_deadline,
        rate_on,
        flight_on,
    };
    reader.run();
}

struct ReaderLoop {
    state: Arc<ServerState>,
    idx: usize,
    listener: Option<TcpListener>,
    handoffs: Vec<Sender<TcpStream>>,
    handoff_rx: Receiver<TcpStream>,
    completions_tx: Sender<Completion>,
    completions_rx: Receiver<Completion>,
    conns: BTreeMap<u64, Conn<TcpStream>>,
    next_conn: u64,
    rr: usize,
    hot: BTreeMap<String, HotEntry>,
    deadlines: BTreeMap<(u64, u64), DeadlineEntry>,
    /// Flight-span halves of submitted worker jobs, finished when the
    /// completion (or a winning deadline sweep) arrives.
    seeds: BTreeMap<(u64, u64), SpanSeed>,
    /// Jobs submitted whose completions have not yet arrived (deadline
    /// sweeps that win the claim race count as the completion).
    inflight: u64,
    idle: Duration,
    lifetime: Duration,
    default_deadline: Option<Duration>,
    rate_on: bool,
    /// Cached `state.flight.enabled()` — checked before every clock read
    /// the recorder would need.
    flight_on: bool,
}

impl ReaderLoop {
    fn run(&mut self) {
        let mut spin: u32 = 0;
        loop {
            let now = clock::now();
            let mut events = 0usize;
            events += self.accept(now);
            events += self.adopt_handoffs(now);
            events += self.drain_completions();
            events += self.pump_conns(now);
            self.sweep_deadlines(now);
            events += self.flush_and_reap(now);
            if self.state.is_shutdown() && self.conns.is_empty() && self.inflight == 0 {
                // Sockets still parked in the handoff channel were counted
                // live at accept; close them out before exiting.
                while let Ok(s) = self.handoff_rx.try_recv() {
                    drop(s);
                    self.state.live_conns.fetch_sub(1, Ordering::Relaxed);
                }
                break;
            }
            if events > 0 {
                spin = 0;
                continue;
            }
            spin = spin.saturating_add(1);
            if spin < SPIN_PASSES {
                std::thread::yield_now();
                continue;
            }
            // Park on the completion channel — the only wake source that
            // polling cannot observe for free — with a timeout short
            // enough to keep deadline/idle sweeps timely.
            if let Ok(c) = self.completions_rx.recv_timeout(PARK) {
                self.apply_completion(c);
                spin = 0;
            }
        }
    }

    // -- accept & handoff ---------------------------------------------------

    fn accept(&mut self, now: Instant) -> usize {
        if self.listener.is_none() {
            return 0;
        }
        let mut n = 0;
        // Not a `while let`: the listener borrow must end before the body
        // calls `adopt(&mut self)`.
        #[allow(clippy::while_let_loop)]
        loop {
            let accepted = match &self.listener {
                Some(l) => l.accept(),
                None => break,
            };
            match accepted {
                Ok((stream, _)) => {
                    n += 1;
                    if self.state.is_shutdown() {
                        continue;
                    }
                    let _ = stream.set_nonblocking(true);
                    if self.state.live_conns.load(Ordering::Relaxed) >= self.state.cfg.max_conns {
                        self.state
                            .metrics
                            .rejected_conns
                            .fetch_add(1, Ordering::Relaxed);
                        // Best effort: one overloaded line, then close.
                        let e = ProtoError::new(ErrorKind::Overloaded, "connection limit reached");
                        let mut s = stream;
                        let _ = s.write((response_err_line(None, &e) + "\n").as_bytes());
                        continue;
                    }
                    self.state
                        .metrics
                        .accepted_conns
                        .fetch_add(1, Ordering::Relaxed);
                    self.state.live_conns.fetch_add(1, Ordering::Relaxed);
                    let _ = stream.set_nodelay(true);
                    let route = if self.handoffs.len() > 1 {
                        self.rr % self.handoffs.len()
                    } else {
                        self.idx
                    };
                    self.rr = self.rr.wrapping_add(1);
                    if route == self.idx {
                        self.adopt(stream, now);
                    } else {
                        match self.handoffs[route].send(stream) {
                            Ok(()) => {}
                            // A reader that died can't adopt — keep the
                            // connection here rather than dropping it.
                            Err(back) => self.adopt(back.0, now),
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        n
    }

    fn adopt(&mut self, stream: TcpStream, now: Instant) {
        let id = self.next_conn;
        self.next_conn += 1;
        self.conns.insert(
            id,
            Conn::new(stream, id, MAX_LINE_BYTES, now, self.idle, self.lifetime),
        );
    }

    fn adopt_handoffs(&mut self, now: Instant) -> usize {
        let mut n = 0;
        while let Ok(stream) = self.handoff_rx.try_recv() {
            self.adopt(stream, now);
            n += 1;
        }
        n
    }

    // -- completions --------------------------------------------------------

    fn drain_completions(&mut self) -> usize {
        let mut n = 0;
        while let Ok(c) = self.completions_rx.try_recv() {
            self.apply_completion(c);
            n += 1;
        }
        n
    }

    fn apply_completion(&mut self, c: Completion) {
        self.inflight = self.inflight.saturating_sub(1);
        self.deadlines.remove(&(c.conn, c.seq));
        // Counted whether or not the connection is still here: the
        // response was generated; delivery to a vanished client is not
        // owed (matches requests_total for a clean drain).
        self.state
            .metrics
            .responses_total
            .fetch_add(1, Ordering::Relaxed);
        let span = self.seeds.remove(&(c.conn, c.seq)).map(|seed| {
            let done_us = clock::micros_since(self.state.epoch);
            RequestSpan {
                ts_us: seed.ts_us,
                endpoint: seed.endpoint,
                path: SpanPath::Worker,
                ok: c.ok,
                parse_us: seed.parse_us,
                wait_us: c.wait_us,
                work_us: c.work_us,
                total_us: delta_us(seed.ts_us, done_us),
                write_us: 0,
                written: false,
            }
        });
        if let Some(conn) = self.conns.get_mut(&c.conn) {
            conn.fill_slot(c.seq, c.line);
            if let Some(span) = span {
                if let Some(evicted) = conn.push_span(span) {
                    self.state.flight.record(self.idx, evicted);
                }
            }
        } else if let Some(span) = span {
            // The connection vanished before delivery — the span still
            // counts, with the write edge left unrecorded.
            self.state.flight.record(self.idx, span);
        }
    }

    // -- request processing -------------------------------------------------

    fn pump_conns(&mut self, now: Instant) -> usize {
        let mut events = 0;
        let now_us = if self.rate_on || self.flight_on {
            clock::micros_since(self.state.epoch)
        } else {
            0
        };
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            let Some(mut conn) = self.conns.remove(&id) else {
                continue;
            };
            if conn.fill(now) {
                events += 1;
            }
            while let Some(line) = conn.next_line() {
                events += 1;
                match line {
                    Line::Eof => break,
                    Line::Oversized { discarded } => self.answer_oversized(&mut conn, discarded),
                    Line::Data(text) => {
                        if text.trim().is_empty() {
                            continue;
                        }
                        self.handle_line(&mut conn, text, now, now_us);
                    }
                }
            }
            self.conns.insert(id, conn);
        }
        events
    }

    fn answer_oversized(&mut self, conn: &mut Conn<TcpStream>, discarded: usize) {
        let m = &self.state.metrics;
        m.requests_total.fetch_add(1, Ordering::Relaxed);
        m.protocol_errors.fetch_add(1, Ordering::Relaxed);
        let e = ProtoError::new(
            ErrorKind::Oversized,
            format!("line exceeds {MAX_LINE_BYTES} bytes ({discarded} discarded)"),
        );
        conn.push_done(response_err_line(None, &e));
        m.responses_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Appends one inline response in request order and records it.
    fn respond_inline(
        &self,
        conn: &mut Conn<TcpStream>,
        id: Option<&str>,
        endpoint: Endpoint,
        started: Instant,
        outcome: &Outcome,
    ) {
        let line = self.render_response(id, endpoint, started, outcome);
        conn.push_done(line);
        self.state
            .metrics
            .responses_total
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Fills an already-reserved slot with an inline error (queue-push
    /// failures after the slot was reserved).
    fn respond_slot(
        &self,
        conn: &mut Conn<TcpStream>,
        seq: u64,
        id: Option<&str>,
        endpoint: Endpoint,
        started: Instant,
        outcome: &Outcome,
    ) {
        let line = self.render_response(id, endpoint, started, outcome);
        conn.fill_slot(seq, line);
        self.state
            .metrics
            .responses_total
            .fetch_add(1, Ordering::Relaxed);
    }

    fn render_response(
        &self,
        id: Option<&str>,
        endpoint: Endpoint,
        started: Instant,
        outcome: &Outcome,
    ) -> String {
        self.state
            .metrics
            .endpoint(endpoint)
            .record(clock::since(started), outcome.is_ok());
        match outcome {
            Ok(result) => response_ok_line(id, result),
            Err(e) => {
                if matches!(
                    e.kind,
                    ErrorKind::BadRequest | ErrorKind::UnsupportedVersion
                ) {
                    self.state
                        .metrics
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                }
                response_err_line(id, e)
            }
        }
    }

    /// Queues an inline-path flight span on the connection so its write
    /// edge can be stamped once the outbox drains; spans evicted by the
    /// per-connection cap are recorded immediately (unwritten). No-op
    /// when recording is off.
    fn push_inline_span(
        &self,
        conn: &mut Conn<TcpStream>,
        endpoint: Endpoint,
        ok: bool,
        parse_us: u32,
        now: Instant,
        now_us: u64,
    ) {
        if !self.flight_on {
            return;
        }
        let total_us = dur_us(clock::since(now));
        let span = RequestSpan {
            ts_us: now_us,
            endpoint,
            path: SpanPath::Inline,
            ok,
            parse_us,
            wait_us: 0,
            work_us: total_us.saturating_sub(parse_us),
            total_us,
            write_us: 0,
            written: false,
        };
        if let Some(evicted) = conn.push_span(span) {
            self.state.flight.record(self.idx, evicted);
        }
    }

    fn handle_line(&mut self, conn: &mut Conn<TcpStream>, line: String, now: Instant, now_us: u64) {
        self.state
            .metrics
            .requests_total
            .fetch_add(1, Ordering::Relaxed);
        // Hot path: a raw line seen before whose answer comes from the
        // plan cache — charge the limiter, count the cache hit, splice
        // the precomposed response; no JSON touched.
        let mut charged = false;
        if let Some(entry) = self.hot.get(&line) {
            if self.rate_on {
                if let Some(client) = &entry.client {
                    if !self.state.limiter.try_charge(client, entry.cost, now_us) {
                        self.state.metrics.rate_shed.fetch_add(1, Ordering::Relaxed);
                        let shed = Err(rate_limited());
                        let id = entry.id.clone();
                        let endpoint = entry.endpoint;
                        self.respond_inline(conn, id.as_deref(), endpoint, now, &shed);
                        self.push_inline_span(conn, endpoint, false, 0, now, now_us);
                        return;
                    }
                    charged = true;
                }
            }
            if self.state.cache.get(&entry.key, entry.digest).is_some() {
                let latency = clock::since(now);
                self.state
                    .metrics
                    .endpoint(entry.endpoint)
                    .record(latency, true);
                conn.push_done(entry.response.clone());
                self.state
                    .metrics
                    .responses_total
                    .fetch_add(1, Ordering::Relaxed);
                // Cheap fast-path variant: recorded straight to the ring
                // (no JSON was parsed, no write edge is tracked).
                if self.flight_on {
                    let total_us = dur_us(latency);
                    self.state.flight.record(
                        self.idx,
                        RequestSpan {
                            ts_us: now_us,
                            endpoint: entry.endpoint,
                            path: SpanPath::Hot,
                            ok: true,
                            parse_us: 0,
                            wait_us: 0,
                            work_us: total_us,
                            total_us,
                            write_us: 0,
                            written: false,
                        },
                    );
                }
                return;
            }
            // The cached plan was evicted since this entry was made: drop
            // it and take the slow path (already charged above).
            self.hot.remove(&line);
        }
        // Slow path: parse, limit, dispatch.
        let req = match Request::parse_line(&line) {
            Ok(r) => r,
            Err(e) => {
                let m = &self.state.metrics;
                m.protocol_errors.fetch_add(1, Ordering::Relaxed);
                conn.push_done(response_err_line(None, &e));
                m.responses_total.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        let endpoint = req.endpoint();
        // Arrival → parse done, charged to the span's parse stage.
        let parse_us = if self.flight_on {
            dur_us(clock::since(now))
        } else {
            0
        };
        if self.rate_on && !charged {
            if let Some(client) = &req.client {
                let cost = endpoint_cost(endpoint);
                if cost > 0 && !self.state.limiter.try_charge(client, cost, now_us) {
                    self.state.metrics.rate_shed.fetch_add(1, Ordering::Relaxed);
                    self.respond_inline(
                        conn,
                        req.id.as_deref(),
                        endpoint,
                        now,
                        &Err(rate_limited()),
                    );
                    self.push_inline_span(conn, endpoint, false, parse_us, now, now_us);
                    return;
                }
            }
        }
        match &req.body {
            RequestBody::Stats => {
                let outcome = render_stats(&self.state);
                self.respond_inline(conn, req.id.as_deref(), endpoint, now, &outcome);
                self.push_inline_span(conn, endpoint, outcome.is_ok(), parse_us, now, now_us);
            }
            RequestBody::Trace => {
                let outcome = render_trace(&self.state);
                self.respond_inline(conn, req.id.as_deref(), endpoint, now, &outcome);
                // This span lands after the drain it answered, so it shows
                // up in the *next* trace — by design, not a leak.
                self.push_inline_span(conn, endpoint, outcome.is_ok(), parse_us, now, now_us);
            }
            RequestBody::Shutdown => {
                self.state.trigger_shutdown();
                let outcome = Ok("{\"draining\":true}".to_string());
                self.respond_inline(conn, req.id.as_deref(), endpoint, now, &outcome);
                self.push_inline_span(conn, endpoint, true, parse_us, now, now_us);
            }
            RequestBody::Plan(p) => {
                self.submit_scenario(conn, &req, p.clone(), None, line, now, now_us, parse_us)
            }
            RequestBody::Compare { params, iterations } => {
                let n = Some(*iterations);
                self.submit_scenario(conn, &req, params.clone(), n, line, now, now_us, parse_us)
            }
            RequestBody::Execute {
                params,
                iterations,
                workers,
            } => {
                let (n, w) = (*iterations, *workers);
                self.submit_execute(conn, &req, params.clone(), n, w, now, now_us, parse_us)
            }
            RequestBody::Predict(p) => {
                let p = p.clone();
                self.submit_predict(conn, &req, p, now, now_us, parse_us)
            }
        }
    }

    fn deadline_for(&self, req: &Request, now: Instant) -> Option<Instant> {
        match req.deadline_ms {
            Some(ms) => Some(now + Duration::from_millis(ms)),
            None => self.default_deadline.map(|d| now + d),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn submit_scenario(
        &mut self,
        conn: &mut Conn<TcpStream>,
        req: &Request,
        params: crate::protocol::ScenarioParams,
        iterations: Option<u32>,
        raw_line: String,
        now: Instant,
        now_us: u64,
        parse_us: u32,
    ) {
        let endpoint = req.endpoint();
        let scenario = match params.to_scenario() {
            Ok(s) => s,
            Err(e) => {
                self.respond_inline(conn, req.id.as_deref(), endpoint, now, &Err(e));
                self.push_inline_span(conn, endpoint, false, parse_us, now, now_us);
                return;
            }
        };
        let key = match iterations {
            None => keys::plan_key(&scenario),
            Some(n) => keys::compare_key(&scenario, n),
        };
        let digest = keys::key_digest(&key);
        // Hits are answered on the reader — they never occupy queue
        // capacity, which is what keeps a hot working set fast even while
        // the workers grind cold scenarios. Explain requests skip this
        // fast path (and the hot cache): their responses carry a block
        // the cached bytes don't, and the worker's *counted* cache read
        // keeps the hit/miss counters truthful.
        if !req.explain {
            if let Some(hit) = self.state.cache.get(&key, digest) {
                self.state
                    .metrics
                    .endpoint(endpoint)
                    .record(clock::since(now), true);
                let response = response_ok_line(req.id.as_deref(), &hit);
                if self.hot.len() >= HOT_CACHE_CAP {
                    self.hot.clear();
                }
                self.hot.insert(
                    raw_line,
                    HotEntry {
                        key,
                        digest,
                        response: response.clone(),
                        endpoint,
                        client: req.client.clone(),
                        cost: endpoint_cost(endpoint),
                        id: req.id.clone(),
                    },
                );
                conn.push_done(response);
                self.state
                    .metrics
                    .responses_total
                    .fetch_add(1, Ordering::Relaxed);
                self.push_inline_span(conn, endpoint, true, parse_us, now, now_us);
                return;
            }
        }
        if self.state.is_shutdown() {
            self.respond_inline(
                conn,
                req.id.as_deref(),
                endpoint,
                now,
                &Err(shutting_down()),
            );
            self.push_inline_span(conn, endpoint, false, parse_us, now, now_us);
            return;
        }
        let deadline = self.deadline_for(req, now);
        let cancel = CancelToken::new();
        let seq = conn.reserve_slot();
        let reply = Reply::Conn {
            tx: self.completions_tx.clone(),
            conn: conn.id,
            seq,
            id: req.id.clone(),
        };
        let job = match iterations {
            None => Job::Plan {
                scenario,
                key,
                digest,
                explain: req.explain,
                cancel: cancel.clone(),
                deadline,
                started: now,
                reply,
            },
            Some(n) => Job::Compare {
                scenario,
                iterations: n,
                key,
                digest,
                explain: req.explain,
                cancel: cancel.clone(),
                deadline,
                started: now,
                reply,
            },
        };
        match self.state.queue.push(job) {
            Ok(()) => self.track(
                conn.id, seq, cancel, req, endpoint, deadline, now, now_us, parse_us,
            ),
            Err(PushError::Full) => {
                self.respond_slot(
                    conn,
                    seq,
                    req.id.as_deref(),
                    endpoint,
                    now,
                    &Err(overloaded()),
                );
                self.push_inline_span(conn, endpoint, false, parse_us, now, now_us);
            }
            Err(PushError::Closed) => {
                self.respond_slot(
                    conn,
                    seq,
                    req.id.as_deref(),
                    endpoint,
                    now,
                    &Err(shutting_down()),
                );
                self.push_inline_span(conn, endpoint, false, parse_us, now, now_us);
            }
        }
    }

    /// Submits a fleet execution. Unlike `submit_scenario` there is no
    /// cache fast path: every `execute` is real work whose obs envelope
    /// must describe *this* run, so caching would be a lie.
    #[allow(clippy::too_many_arguments)]
    fn submit_execute(
        &mut self,
        conn: &mut Conn<TcpStream>,
        req: &Request,
        params: crate::protocol::ScenarioParams,
        iterations: u32,
        workers: u32,
        now: Instant,
        now_us: u64,
        parse_us: u32,
    ) {
        let endpoint = Endpoint::Execute;
        let scenario = match params.to_scenario() {
            Ok(s) => s,
            Err(e) => {
                self.respond_inline(conn, req.id.as_deref(), endpoint, now, &Err(e));
                self.push_inline_span(conn, endpoint, false, parse_us, now, now_us);
                return;
            }
        };
        if self.state.is_shutdown() {
            self.respond_inline(
                conn,
                req.id.as_deref(),
                endpoint,
                now,
                &Err(shutting_down()),
            );
            self.push_inline_span(conn, endpoint, false, parse_us, now, now_us);
            return;
        }
        let deadline = self.deadline_for(req, now);
        let cancel = CancelToken::new();
        let seq = conn.reserve_slot();
        let reply = Reply::Conn {
            tx: self.completions_tx.clone(),
            conn: conn.id,
            seq,
            id: req.id.clone(),
        };
        let job = Job::Execute {
            scenario,
            iterations,
            workers,
            cancel: cancel.clone(),
            deadline,
            started: now,
            reply,
        };
        match self.state.queue.push(job) {
            Ok(()) => self.track(
                conn.id, seq, cancel, req, endpoint, deadline, now, now_us, parse_us,
            ),
            Err(PushError::Full) => {
                self.respond_slot(
                    conn,
                    seq,
                    req.id.as_deref(),
                    endpoint,
                    now,
                    &Err(overloaded()),
                );
                self.push_inline_span(conn, endpoint, false, parse_us, now, now_us);
            }
            Err(PushError::Closed) => {
                self.respond_slot(
                    conn,
                    seq,
                    req.id.as_deref(),
                    endpoint,
                    now,
                    &Err(shutting_down()),
                );
                self.push_inline_span(conn, endpoint, false, parse_us, now, now_us);
            }
        }
    }

    fn submit_predict(
        &mut self,
        conn: &mut Conn<TcpStream>,
        req: &Request,
        params: crate::protocol::PredictParams,
        now: Instant,
        now_us: u64,
        parse_us: u32,
    ) {
        let endpoint = Endpoint::Predict;
        let machine = match parse_machine(&params.machine) {
            Ok(m) => m,
            Err(msg) => {
                let e = ProtoError::bad_request(msg);
                self.respond_inline(conn, req.id.as_deref(), endpoint, now, &Err(e));
                self.push_inline_span(conn, endpoint, false, parse_us, now, now_us);
                return;
            }
        };
        let machine_key = match serde_json::to_string(&machine) {
            Ok(k) => k,
            Err(e) => {
                let e = internal(format!("machine key: {e:?}"));
                self.respond_inline(conn, req.id.as_deref(), endpoint, now, &Err(e));
                self.push_inline_span(conn, endpoint, false, parse_us, now, now_us);
                return;
            }
        };
        if self.state.is_shutdown() {
            self.respond_inline(
                conn,
                req.id.as_deref(),
                endpoint,
                now,
                &Err(shutting_down()),
            );
            self.push_inline_span(conn, endpoint, false, parse_us, now, now_us);
            return;
        }
        let features: Vec<DomainFeatures> = params.nests.iter().map(DomainFeatures::from).collect();
        let deadline = self.deadline_for(req, now);
        let cancel = CancelToken::new();
        let seq = conn.reserve_slot();
        let token = self.state.batcher.token();
        self.state.batcher.add(
            &machine_key,
            Pending {
                token,
                cancel: cancel.clone(),
                machine_spec: params.machine.clone(),
                features,
                started: now,
                reply: Reply::Conn {
                    tx: self.completions_tx.clone(),
                    conn: conn.id,
                    seq,
                    id: req.id.clone(),
                },
            },
        );
        match self.state.queue.push(Job::PredictTick {
            machine_key: machine_key.clone(),
        }) {
            Ok(()) => self.track(
                conn.id, seq, cancel, req, endpoint, deadline, now, now_us, parse_us,
            ),
            Err(push_err) => {
                if self.state.batcher.cancel(&machine_key, token) {
                    let e = match push_err {
                        PushError::Full => overloaded(),
                        PushError::Closed => shutting_down(),
                    };
                    self.respond_slot(conn, seq, req.id.as_deref(), endpoint, now, &Err(e));
                    self.push_inline_span(conn, endpoint, false, parse_us, now, now_us);
                } else {
                    // A concurrent tick already took our pending request —
                    // its completion is on the way.
                    self.track(
                        conn.id, seq, cancel, req, endpoint, deadline, now, now_us, parse_us,
                    );
                }
            }
        }
    }

    /// Books a successfully submitted job: one more in-flight completion,
    /// a flight-span seed for the eventual completion, plus a deadline
    /// registry entry when the request has one.
    #[allow(clippy::too_many_arguments)]
    fn track(
        &mut self,
        conn_id: u64,
        seq: u64,
        cancel: CancelToken,
        req: &Request,
        endpoint: Endpoint,
        deadline: Option<Instant>,
        started: Instant,
        ts_us: u64,
        parse_us: u32,
    ) {
        self.inflight += 1;
        if self.flight_on {
            self.seeds.insert(
                (conn_id, seq),
                SpanSeed {
                    ts_us,
                    parse_us,
                    endpoint,
                },
            );
        }
        if let Some(at) = deadline {
            self.deadlines.insert(
                (conn_id, seq),
                DeadlineEntry {
                    at,
                    cancel,
                    id: req.id.clone(),
                    endpoint,
                    started,
                },
            );
        }
    }

    // -- sweeps -------------------------------------------------------------

    fn sweep_deadlines(&mut self, now: Instant) {
        if self.deadlines.is_empty() {
            return;
        }
        let expired: Vec<(u64, u64)> = self
            .deadlines
            .iter()
            .filter(|(_, e)| now >= e.at)
            .map(|(k, _)| *k)
            .collect();
        for key in expired {
            let Some(entry) = self.deadlines.remove(&key) else {
                continue;
            };
            if !entry.cancel.claim() {
                // A worker won the race — its completion is in flight and
                // will finish the span seed.
                continue;
            }
            self.inflight = self.inflight.saturating_sub(1);
            let m = &self.state.metrics;
            m.deadline_expired.fetch_add(1, Ordering::Relaxed);
            m.endpoint(entry.endpoint)
                .record(clock::since(entry.started), false);
            m.responses_total.fetch_add(1, Ordering::Relaxed);
            let line = response_err_line(entry.id.as_deref(), &deadline_exceeded());
            let span = self.seeds.remove(&key).map(|seed| {
                let done_us = clock::micros_since(self.state.epoch);
                let total_us = delta_us(seed.ts_us, done_us);
                RequestSpan {
                    ts_us: seed.ts_us,
                    endpoint: seed.endpoint,
                    path: SpanPath::Deadline,
                    ok: false,
                    parse_us: seed.parse_us,
                    wait_us: total_us.saturating_sub(seed.parse_us),
                    work_us: 0,
                    total_us,
                    write_us: 0,
                    written: false,
                }
            });
            if let Some(conn) = self.conns.get_mut(&key.0) {
                conn.fill_slot(key.1, line);
                if let Some(span) = span {
                    if let Some(evicted) = conn.push_span(span) {
                        self.state.flight.record(self.idx, evicted);
                    }
                }
            } else if let Some(span) = span {
                self.state.flight.record(self.idx, span);
            }
        }
    }

    fn flush_and_reap(&mut self, now: Instant) -> usize {
        let mut events = 0;
        let shutting = self.state.is_shutdown();
        let mut gone: Vec<u64> = Vec::new();
        for (id, conn) in self.conns.iter_mut() {
            events += conn.flush(now);
            // Write-complete edge: once the outbox is empty, every
            // response whose span is still pending has reached the
            // socket — stamp and record them.
            if self.flight_on && conn.has_pending_spans() && conn.output_drained() {
                let done_us = clock::micros_since(self.state.epoch);
                for mut s in conn.take_pending_spans() {
                    s.write_us = delta_us(s.ts_us.saturating_add(s.total_us as u64), done_us);
                    s.written = true;
                    self.state.flight.record(self.idx, s);
                }
            }
            if conn.gone(now).is_some() || (shutting && conn.output_drained()) {
                gone.push(*id);
            }
        }
        for id in gone {
            if let Some(mut conn) = self.conns.remove(&id) {
                // Spans still pending at reap never reached the client —
                // record them with the write edge unset.
                for s in conn.take_pending_spans() {
                    self.state.flight.record(self.idx, s);
                }
            }
            self.state.live_conns.fetch_sub(1, Ordering::Relaxed);
            events += 1;
        }
        events
    }
}

//! The sharded LRU plan cache.
//!
//! Keys are full canonical scenario strings
//! ([`nestwx_core::Scenario::canonical_string`]); the caller supplies the
//! FNV digest alongside, which picks the shard. Lookups compare the whole
//! key, so a digest collision can never alias two scenarios. Values are the
//! *rendered result JSON* (`Arc<str>`), not the plan object — serving a hit
//! splices the exact bytes a fresh computation would have produced, which
//! is how the byte-identity guarantee is enforced structurally rather than
//! hoped for.
//!
//! Each shard is an independently locked map with last-used stamps;
//! eviction scans the full shard for the oldest stamp. With the default
//! shard sizes (≤ a few hundred entries) the scan is cheaper than
//! maintaining an intrusive list, and it only runs when a shard is full.

use crate::sync::{lock_unpoisoned, AtomicU64, Mutex, Ordering};
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Shards per cache (fixed power of two; the digest's low bits select one).
const SHARDS: usize = 8;

struct Entry {
    value: Arc<str>,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    // Ordered map: the eviction scan (and any debug dump) visits entries
    // in key order, so victim selection is deterministic under stamp ties.
    map: BTreeMap<String, Entry>,
    clock: u64,
}

/// Sharded exact-key LRU cache for rendered plan/compare results.
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PlanCache {
    /// A cache holding at most `capacity` entries in total (rounded up to
    /// a multiple of the shard count; minimum one entry per shard).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_cap: capacity.div_ceil(SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.per_shard_cap * SHARDS
    }

    fn shard(&self, digest: u64) -> &Mutex<Shard> {
        &self.shards[(digest as usize) & (SHARDS - 1)]
    }

    /// Looks up the rendered result for an exact key, refreshing its LRU
    /// stamp and counting the hit or miss.
    pub fn get(&self, key: &str, digest: u64) -> Option<Arc<str>> {
        let mut shard = lock_unpoisoned(self.shard(digest));
        shard.clock += 1;
        let stamp = shard.clock;
        match shard.map.get_mut(key) {
            Some(e) => {
                e.last_used = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&e.value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Like [`get`](Self::get) but without touching the hit/miss counters —
    /// for the worker's post-dequeue re-check, which would otherwise count
    /// every request twice (once on the connection thread, once here).
    pub fn peek(&self, key: &str, digest: u64) -> Option<Arc<str>> {
        let mut shard = lock_unpoisoned(self.shard(digest));
        shard.clock += 1;
        let stamp = shard.clock;
        shard.map.get_mut(key).map(|e| {
            e.last_used = stamp;
            Arc::clone(&e.value)
        })
    }

    /// Inserts (or refreshes) an entry, evicting the shard's least recently
    /// used entry if it is full.
    pub fn insert(&self, key: String, digest: u64, value: Arc<str>) {
        let mut shard = lock_unpoisoned(self.shard(digest));
        shard.clock += 1;
        let stamp = shard.clock;
        if !shard.map.contains_key(&key) && shard.map.len() >= self.per_shard_cap {
            if let Some(oldest) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                shard.map.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.map.insert(
            key,
            Entry {
                value,
                last_used: stamp,
            },
        );
    }

    /// Entries currently cached (sums the shards; approximate under
    /// concurrent writes).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_unpoisoned(s).map.len())
            .sum()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot for the `stats` endpoint.
    pub fn stats(&self) -> CacheStats {
        let hits = self.hits.load(Ordering::Relaxed);
        let misses = self.misses.load(Ordering::Relaxed);
        let lookups = hits + misses;
        CacheStats {
            capacity: self.capacity() as u64,
            entries: self.len() as u64,
            hits,
            misses,
            evictions: self.evictions.load(Ordering::Relaxed),
            hit_rate: if lookups == 0 {
                0.0
            } else {
                hits as f64 / lookups as f64
            },
        }
    }
}

/// Cache counters, as reported by `stats`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CacheStats {
    /// Maximum entries.
    pub capacity: u64,
    /// Entries currently held.
    pub entries: u64,
    /// Exact-key lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// Entries evicted by LRU pressure.
    pub evictions: u64,
    /// `hits / (hits + misses)`, 0 when no lookups happened.
    pub hit_rate: f64,
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn arc(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn hit_returns_identical_bytes() {
        let c = PlanCache::new(16);
        assert!(c.get("k1", 1).is_none());
        c.insert("k1".into(), 1, arc("{\"a\":1}"));
        let hit = c.get("k1", 1).expect("cached");
        assert_eq!(&*hit, "{\"a\":1}");
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!((s.hit_rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn digest_collision_does_not_alias() {
        // Same digest, different keys: both must coexist and resolve by
        // exact key match.
        let c = PlanCache::new(16);
        c.insert("alpha".into(), 42, arc("A"));
        c.insert("beta".into(), 42, arc("B"));
        assert_eq!(&*c.get("alpha", 42).unwrap(), "A");
        assert_eq!(&*c.get("beta", 42).unwrap(), "B");
    }

    #[test]
    fn lru_evicts_oldest_within_shard() {
        // Capacity 8 → 1 entry per shard; same digest pins one shard.
        let c = PlanCache::new(8);
        c.insert("old".into(), 7, arc("1"));
        c.insert("new".into(), 7, arc("2"));
        assert!(c.get("old", 7).is_none(), "oldest entry evicted");
        assert!(c.get("new", 7).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn recently_used_entries_survive_eviction() {
        let c = PlanCache::new(16); // 2 per shard
        c.insert("a".into(), 3, arc("A"));
        c.insert("b".into(), 3, arc("B"));
        // Touch "a" so "b" becomes the LRU victim.
        assert!(c.get("a", 3).is_some());
        c.insert("c".into(), 3, arc("C"));
        assert!(c.get("a", 3).is_some());
        assert!(c.get("b", 3).is_none());
        assert!(c.get("c", 3).is_some());
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let c = PlanCache::new(8);
        c.insert("k".into(), 5, arc("v1"));
        c.insert("k".into(), 5, arc("v2"));
        assert_eq!(&*c.get("k", 5).unwrap(), "v2");
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.len(), 1);
    }
}

//! Cache-key construction for the plan cache.
//!
//! Every key bakes in [`PLAN_FORMAT_VERSION`] — the version of the
//! *rendered result JSON*, distinct from the protocol version and the
//! scenario encoding version. Because the cache stores rendered bytes
//! (not plan objects), a deploy that changes the result shape would
//! otherwise keep serving stale-format hits to new clients; versioned
//! keys make every old entry an automatic miss instead, emptying the
//! hit-rate without any explicit invalidation step.

use nestwx_core::{fnv1a64, Scenario};

/// Version of the rendered plan/compare result format. Bump whenever the
/// JSON produced by the server's renderers changes shape or semantics —
/// all cached entries written under the previous version stop matching.
pub const PLAN_FORMAT_VERSION: u32 = 1;

/// A cache key under an explicit format version (the versioned core that
/// [`plan_key`]/[`compare_key`] wrap; public so tests can prove a bump
/// invalidates).
pub fn versioned_key(version: u32, scenario: &Scenario, iterations: Option<u32>) -> String {
    let canonical = scenario.canonical_string();
    match iterations {
        None => format!("fmt{version}|{canonical}"),
        Some(n) => format!("fmt{version}|{canonical}|compare:{n}"),
    }
}

/// The cache key for a `plan` request.
pub fn plan_key(scenario: &Scenario) -> String {
    versioned_key(PLAN_FORMAT_VERSION, scenario, None)
}

/// The cache key for a `compare` request over `iterations` iterations.
pub fn compare_key(scenario: &Scenario, iterations: u32) -> String {
    versioned_key(PLAN_FORMAT_VERSION, scenario, Some(iterations))
}

/// The disk-cache key for a sweep result envelope (plan digest + simulated
/// metrics over `iterations` iterations). Distinct from [`plan_key`] and
/// [`compare_key`] by suffix so the three result shapes never collide in
/// the shared store, while all riding the same format version.
pub fn sweep_key(scenario: &Scenario, iterations: u32) -> String {
    format!(
        "{}|sweep:{iterations}",
        versioned_key(PLAN_FORMAT_VERSION, scenario, None)
    )
}

/// The shard-selecting digest for a key (FNV-1a 64 over the key bytes).
pub fn key_digest(key: &str) -> u64 {
    fnv1a64(key.as_bytes())
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::cache::PlanCache;
    use crate::protocol::parse_machine;
    use nestwx_core::strategy::{AllocPolicy, MappingKind, Strategy};
    use nestwx_grid::{Domain, NestSpec};
    use nestwx_netsim::IoMode;
    use std::sync::Arc;

    fn scenario() -> Scenario {
        Scenario {
            machine: parse_machine("bgl:64").unwrap(),
            parent: Domain::parent(286, 307, 24.0),
            nests: vec![NestSpec::new(96, 90, 3, (10, 12))],
            strategy: Strategy::Concurrent,
            alloc: AllocPolicy::HuffmanSplitTree,
            mapping: MappingKind::Partition,
            io_mode: IoMode::None,
            output_interval: None,
        }
    }

    #[test]
    fn keys_embed_the_format_version() {
        let s = scenario();
        assert!(plan_key(&s).starts_with(&format!("fmt{PLAN_FORMAT_VERSION}|")));
        assert!(compare_key(&s, 5).ends_with("|compare:5"));
        assert_ne!(plan_key(&s), compare_key(&s, 5));
    }

    #[test]
    fn sweep_keys_are_distinct_and_versioned() {
        let s = scenario();
        let k = sweep_key(&s, 3);
        assert!(k.starts_with(&format!("fmt{PLAN_FORMAT_VERSION}|")));
        assert!(k.ends_with("|sweep:3"));
        assert_ne!(k, plan_key(&s));
        assert_ne!(k, compare_key(&s, 3));
        assert_ne!(sweep_key(&s, 3), sweep_key(&s, 5));
    }

    #[test]
    fn bumping_the_format_version_empties_the_hit_rate() {
        let s = scenario();
        let cache = PlanCache::new(64);
        // Warm the cache under the current version and confirm it is hot.
        let key = versioned_key(PLAN_FORMAT_VERSION, &s, None);
        cache.insert(key.clone(), key_digest(&key), Arc::from("{\"v\":1}"));
        assert!(cache.get(&key, key_digest(&key)).is_some());
        assert!(cache.stats().hit_rate > 0.0);

        // Every lookup under the bumped version misses — the stale-format
        // entries are unreachable without any explicit flush.
        let bumped = versioned_key(PLAN_FORMAT_VERSION + 1, &s, None);
        let before = cache.stats();
        assert!(cache.get(&bumped, key_digest(&bumped)).is_none());
        let after = cache.stats();
        assert_eq!(after.hits, before.hits, "no hit under the new version");
        assert_eq!(after.misses, before.misses + 1);
        assert!(after.hit_rate < before.hit_rate);
    }
}

//! The concurrent planning server.
//!
//! Threading model (all std, no async runtime):
//!
//! - a small set of **reader** threads (`event_loop`) run a
//!   nonblocking readiness loop: reader 0 owns the listener and accepts
//!   (round-robin handoff when more readers are configured), every reader
//!   multiplexes its connections — draining sockets, splitting pipelined
//!   request lines, answering `stats`/`shutdown` and cache hits inline,
//!   enforcing per-client rate limits and per-request deadlines, and
//!   flushing in-order responses — without ever blocking on one peer;
//! - a fixed pool of **worker** threads pops jobs from the bounded queue:
//!   planning, comparison, and predict batch ticks. Each job carries a
//!   [`CancelToken`]; the worker must *claim* it before computing, so a
//!   job already answered by the deadline sweep is skipped, never
//!   double-executed.
//!
//! Backpressure is explicit and typed: `overloaded` when the bounded queue
//! is full, `rate_limited` when a client's token bucket is empty,
//! `deadline_exceeded` when a request expired before a worker reached it,
//! `shutting_down` during drain — the server never buffers unboundedly.
//! Shutdown is graceful: the flag flips, the queue closes, workers drain
//! everything already accepted (the last worker to exit answers any
//! still-parked predict requests), readers flush every owed response and
//! exit once nothing is in flight, and [`ServerHandle::wait`] joins every
//! thread before reporting the final [`DrainReport`].

use crate::batch::{BoundedMap, Outcome, Pending, PredictBatcher, Reply};
use crate::cache::PlanCache;
use crate::disk::{DiskCache, DiskStats};
use crate::event_loop::{self, ReaderChannels};
use crate::flight::{dur_us, FlightRecorder};
use crate::limits::{CancelToken, RateLimiter};
use crate::metrics::{LimitGauges, Metrics, StatsSnapshot};
use crate::protocol::{
    alloc_token, mapping_token, parse_machine, strategy_token, Endpoint, ErrorKind, ProtoError,
};
use crate::queue::BoundedQueue;
use crate::sync::{AtomicBool, AtomicUsize, Ordering};
use nestwx_core::strategy::AllocPolicy;
use nestwx_core::{compare_strategies, fit_predictor, ExecutionPlan, Planner, Scenario};
use nestwx_obs::clock;
use nestwx_obs::HistSummary;
use nestwx_predict::ExecTimePredictor;
use serde::Serialize;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// Seed of the on-demand predictor fit — must stay identical to the one
/// `Planner::plan` uses when no predictor is supplied, so a served plan is
/// byte-identical to one computed directly.
const PROFILE_SEED: u64 = 0xBEEF;

/// Server tuning knobs. `ServeConfig::new` reads the `NESTWX_SERVE_*`
/// environment variables for defaults. All limit knobs (deadline, rate,
/// idle, lifetime) default to 0 = off, so an unconfigured server behaves
/// permissively.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `"127.0.0.1:7878"` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads (`NESTWX_SERVE_WORKERS`, default 4).
    pub workers: usize,
    /// Event-loop reader threads (`NESTWX_SERVE_READERS`, default 1).
    pub readers: usize,
    /// Bounded job-queue depth (`NESTWX_SERVE_QUEUE`, default 64).
    pub queue_depth: usize,
    /// Plan-cache capacity in entries (`NESTWX_SERVE_CACHE`, default 256).
    pub cache_capacity: usize,
    /// Maximum concurrent connections (`NESTWX_SERVE_MAX_CONNS`,
    /// default 64).
    pub max_conns: usize,
    /// Default per-request deadline in ms, 0 = none
    /// (`NESTWX_SERVE_DEADLINE_MS`); requests may override with their own
    /// `deadline_ms` field.
    pub deadline_ms: u64,
    /// Per-client token-bucket refill rate in tokens/second, 0 = rate
    /// limiting off (`NESTWX_SERVE_RATE`).
    pub rate: u64,
    /// Token-bucket capacity in tokens (`NESTWX_SERVE_BURST`, default 8).
    pub burst: u64,
    /// Maximum tracked rate-limit clients, LRU-evicted beyond this
    /// (`NESTWX_SERVE_CLIENT_CAP`, default 1024).
    pub client_cap: usize,
    /// Maximum cached per-machine predictors, LRU-evicted beyond this
    /// (`NESTWX_SERVE_PREDICTORS`, default 64).
    pub predictors: usize,
    /// Idle connection cap in ms, 0 = none (`NESTWX_SERVE_IDLE_MS`).
    pub idle_ms: u64,
    /// Connection lifetime cap in ms, 0 = none
    /// (`NESTWX_SERVE_LIFETIME_MS`).
    pub lifetime_ms: u64,
    /// Disk plan-cache directory, `None` = memory-only
    /// (`NESTWX_SERVE_CACHE_DIR`, empty = unset). When set, cache misses
    /// consult the disk store shared with `nestwx sweep` before planning,
    /// so a warm sweep pre-heats the in-memory shards, and fresh results
    /// are persisted for the next process. The directory always flows
    /// through this config — never an ambient path (lint NW-D006).
    pub cache_dir: Option<std::path::PathBuf>,
    /// Flight recorder on/off (`NESTWX_SERVE_TRACE`, default on).
    /// Recording is passive — response bytes are identical either way.
    pub trace: bool,
    /// Per-reader span-ring capacity in spans
    /// (`NESTWX_SERVE_TRACE_RING`, default 4096).
    pub trace_ring: usize,
    /// Slow-request log threshold in µs, 0 = slow log off
    /// (`NESTWX_SERVE_TRACE_SLOW_US`).
    pub trace_slow_us: u64,
}

impl ServeConfig {
    /// A config for `addr` with environment-derived defaults.
    pub fn new(addr: impl Into<String>) -> ServeConfig {
        ServeConfig {
            addr: addr.into(),
            workers: nestwx_core::env_usize("NESTWX_SERVE_WORKERS", 4),
            readers: nestwx_core::env_usize("NESTWX_SERVE_READERS", 1),
            queue_depth: nestwx_core::env_usize("NESTWX_SERVE_QUEUE", 64),
            cache_capacity: nestwx_core::env_usize("NESTWX_SERVE_CACHE", 256),
            max_conns: nestwx_core::env_usize("NESTWX_SERVE_MAX_CONNS", 64),
            deadline_ms: nestwx_core::env_usize("NESTWX_SERVE_DEADLINE_MS", 0) as u64,
            rate: nestwx_core::env_usize("NESTWX_SERVE_RATE", 0) as u64,
            burst: nestwx_core::env_usize("NESTWX_SERVE_BURST", 8) as u64,
            client_cap: nestwx_core::env_usize("NESTWX_SERVE_CLIENT_CAP", 1024),
            predictors: nestwx_core::env_usize("NESTWX_SERVE_PREDICTORS", 64),
            idle_ms: nestwx_core::env_usize("NESTWX_SERVE_IDLE_MS", 0) as u64,
            lifetime_ms: nestwx_core::env_usize("NESTWX_SERVE_LIFETIME_MS", 0) as u64,
            cache_dir: std::env::var("NESTWX_SERVE_CACHE_DIR")
                .ok()
                .filter(|v| !v.is_empty())
                .map(std::path::PathBuf::from),
            trace: nestwx_core::env_usize("NESTWX_SERVE_TRACE", 1) != 0,
            trace_ring: nestwx_core::env_usize("NESTWX_SERVE_TRACE_RING", 4096),
            trace_slow_us: nestwx_core::env_usize("NESTWX_SERVE_TRACE_SLOW_US", 0) as u64,
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig::new("127.0.0.1:0")
    }
}

// ---------------------------------------------------------------------------
// Jobs (the bounded queue itself lives in `crate::queue`)
// ---------------------------------------------------------------------------

pub(crate) enum Job {
    Plan {
        scenario: Scenario,
        key: String,
        digest: u64,
        cancel: CancelToken,
        deadline: Option<Instant>,
        started: Instant,
        explain: bool,
        reply: Reply,
    },
    Compare {
        scenario: Scenario,
        iterations: u32,
        key: String,
        digest: u64,
        cancel: CancelToken,
        deadline: Option<Instant>,
        started: Instant,
        explain: bool,
        reply: Reply,
    },
    /// Lightweight marker: "a predict batch for this machine may be
    /// pending". The worker that pops it drains the whole batch.
    PredictTick { machine_key: String },
    /// Fleet execution: uncached, always computed (the result is a real
    /// simulation run whose obs envelope describes *this* execution).
    Execute {
        scenario: Scenario,
        iterations: u32,
        workers: u32,
        cancel: CancelToken,
        deadline: Option<Instant>,
        started: Instant,
        reply: Reply,
    },
}

// ---------------------------------------------------------------------------
// Shared state
// ---------------------------------------------------------------------------

pub(crate) struct ServerState {
    pub(crate) cfg: ServeConfig,
    pub(crate) queue: BoundedQueue<Job>,
    pub(crate) cache: PlanCache,
    /// Disk-persisted plan store, engaged when `cfg.cache_dir` is set.
    pub(crate) disk: Option<DiskCache>,
    pub(crate) batcher: PredictBatcher,
    pub(crate) metrics: Metrics,
    /// One fitted predictor per machine identity (canonical machine JSON),
    /// shared by plan workers and predict batches; LRU-bounded at
    /// [`ServeConfig::predictors`] entries.
    pub(crate) predictors: BoundedMap<Arc<ExecTimePredictor>>,
    /// Per-client token buckets (engaged only when `cfg.rate > 0`).
    pub(crate) limiter: RateLimiter,
    /// The request flight recorder (per-reader span rings + slow log).
    pub(crate) flight: FlightRecorder,
    pub(crate) shutdown: AtomicBool,
    pub(crate) live_conns: AtomicUsize,
    /// Workers still running — the last one out drains the predict
    /// batcher so parked requests are answered before readers can exit.
    pub(crate) workers_left: AtomicUsize,
    /// Server start instant: the rate limiter's time origin.
    pub(crate) epoch: Instant,
}

impl ServerState {
    pub(crate) fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Flips the shutdown flag once and closes the queue (workers drain
    /// and exit; readers notice within one park timeout).
    pub(crate) fn trigger_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue.close();
    }

    pub(crate) fn predictor_for(&self, machine: &nestwx_netsim::Machine) -> Arc<ExecTimePredictor> {
        // Machines always serialize; if that ever regresses, the Debug
        // rendering is still a stable identity — degrade instead of
        // panicking on the request path.
        let key = serde_json::to_string(machine).unwrap_or_else(|_| format!("{machine:?}"));
        self.predictors
            .get_or_insert_with(&key, || Arc::new(fit_predictor(machine, PROFILE_SEED)))
    }

    /// The scenario's planner, with the predictor pre-resolved from the
    /// shared per-machine map when the policy needs one. Because the map
    /// fits with the same fixed seed the planner would use on demand, the
    /// resulting plans are identical either way.
    fn planner_for(&self, scenario: &Scenario) -> Planner {
        let planner = scenario.planner();
        if scenario.alloc == AllocPolicy::HuffmanSplitTree {
            planner.with_predictor((*self.predictor_for(&scenario.machine)).clone())
        } else {
            planner
        }
    }

    /// Disk-cache counters for `stats` snapshots (zeros when disabled).
    pub(crate) fn disk_stats(&self) -> DiskStats {
        self.disk.as_ref().map(DiskCache::stats).unwrap_or_default()
    }

    /// The live limit gauges for `stats` snapshots.
    pub(crate) fn limit_gauges(&self) -> LimitGauges {
        LimitGauges {
            clients_tracked: self.limiter.clients_tracked() as u64,
            rate_evictions: self.limiter.evictions(),
            predictors_cached: self.predictors.len() as u64,
            predictor_evictions: self.predictors.evictions(),
        }
    }
}

// ---------------------------------------------------------------------------
// Result rendering (the JSON that gets cached and spliced into responses)
// ---------------------------------------------------------------------------

#[derive(Serialize)]
struct GridOut {
    px: u32,
    py: u32,
}

#[derive(Serialize)]
struct PartitionOut {
    nest: u64,
    x: u32,
    y: u32,
    w: u32,
    h: u32,
    ranks: u64,
}

#[derive(Serialize)]
struct PlanResult {
    machine: String,
    ranks: u32,
    grid: GridOut,
    strategy: String,
    alloc: String,
    mapping: String,
    predicted_ratios: Vec<f64>,
    partitions: Vec<PartitionOut>,
}

#[derive(Serialize)]
struct CompareResult {
    machine: String,
    iterations: u32,
    default_s_per_iter: f64,
    planned_s_per_iter: f64,
    improvement_pct: f64,
    mpi_wait_improvement_pct: f64,
    io_improvement_pct: f64,
    hops_reduction_pct: f64,
}

#[derive(Serialize)]
struct PredictResult {
    machine: String,
    relative_times: Vec<f64>,
}

pub(crate) fn internal(msg: impl Into<String>) -> ProtoError {
    ProtoError::new(ErrorKind::Internal, msg)
}

pub(crate) fn shutting_down() -> ProtoError {
    ProtoError::new(ErrorKind::ShuttingDown, "server is draining")
}

pub(crate) fn deadline_exceeded() -> ProtoError {
    ProtoError::new(
        ErrorKind::DeadlineExceeded,
        "deadline expired before the request was served",
    )
}

/// Renders a plan into the exact result JSON the server caches and
/// splices into responses. Public so the sweep engine produces plan bytes
/// structurally identical to served ones — byte-identity between a
/// sweep-warmed disk entry and fresh planning is enforced by construction,
/// not by parallel implementations drifting apart.
pub fn render_plan(scenario: &Scenario, plan: &ExecutionPlan) -> Result<String, ProtoError> {
    let result = PlanResult {
        machine: scenario.machine.name.clone(),
        ranks: plan.machine.ranks(),
        grid: GridOut {
            px: plan.grid.px,
            py: plan.grid.py,
        },
        strategy: strategy_token(scenario.strategy).to_string(),
        alloc: alloc_token(scenario.alloc).to_string(),
        mapping: mapping_token(scenario.mapping).to_string(),
        predicted_ratios: plan.predicted_ratios.clone(),
        partitions: plan
            .partitions
            .iter()
            .map(|p| PartitionOut {
                nest: p.domain as u64,
                x: p.rect.x0,
                y: p.rect.y0,
                w: p.rect.w,
                h: p.rect.h,
                ranks: p.rect.area(),
            })
            .collect(),
    };
    serde_json::to_string(&result).map_err(|e| internal(format!("render: {e:?}")))
}

pub(crate) fn render_predict(
    machine_spec: &str,
    relative_times: Vec<f64>,
) -> Result<String, ProtoError> {
    serde_json::to_string(&PredictResult {
        machine: machine_spec.to_string(),
        relative_times,
    })
    .map_err(|e| internal(format!("render: {e:?}")))
}

pub(crate) fn render_stats(state: &ServerState) -> Outcome {
    let snapshot = state.metrics.snapshot(
        state.queue.stats(),
        state.cache.stats(),
        state.live_conns.load(Ordering::Relaxed) as u64,
        state.limit_gauges(),
        state.disk_stats(),
        state.flight.stats(),
    );
    serde_json::to_string(&snapshot).map_err(|e| internal(format!("render: {e:?}")))
}

/// Renders the `trace` response: drains the flight recorder into the
/// versioned `nestwx-obs-serve-summary` envelope. Draining is destructive
/// — each span is reported exactly once across concurrent drains.
pub(crate) fn render_trace(state: &ServerState) -> Outcome {
    serde_json::to_string(&state.flight.envelope()).map_err(|e| internal(format!("render: {e:?}")))
}

// ---------------------------------------------------------------------------
// The opt-in `explain` block
// ---------------------------------------------------------------------------

#[derive(Serialize)]
struct ExplainNest {
    nest: u64,
    ranks: u64,
    predicted_share: f64,
    alloc_share: f64,
}

#[derive(Serialize)]
struct HopHist {
    edges: u64,
    max_hops: u64,
    counts: Vec<u64>,
}

#[derive(Serialize)]
struct ExplainOut {
    predicted_s_per_iter: f64,
    nests: Vec<ExplainNest>,
    hops: HopHist,
}

/// Renders the `explain` block for a plan: per-nest predicted vs
/// allocated rank share, the predicted seconds/iteration, and the hop
/// histogram of every cross-partition neighbor edge under the plan's
/// mapping (empty for sequential plans, which have no partitions).
pub(crate) fn render_explain(plan: &ExecutionPlan) -> Result<String, ProtoError> {
    let report = plan
        .simulate(1)
        .map_err(|e| ProtoError::new(ErrorKind::Failed, e.to_string()))?;
    let total_ranks = (plan.grid.px as f64) * (plan.grid.py as f64);
    let nests: Vec<ExplainNest> = plan
        .partitions
        .iter()
        .map(|p| ExplainNest {
            nest: p.domain as u64,
            ranks: p.rect.area(),
            predicted_share: plan.predicted_ratios.get(p.domain).copied().unwrap_or(0.0),
            alloc_share: p.rect.area() as f64 / total_ranks,
        })
        .collect();
    let rects: Vec<nestwx_grid::Rect> = plan.partitions.iter().map(|p| p.rect).collect();
    let edges = nestwx_topo::mapping::cross_partition_edges(&plan.grid, &rects);
    let mut counts: Vec<u64> = Vec::new();
    for (a, b) in &edges {
        let h = plan.mapping.hops(*a, *b) as usize;
        if counts.len() <= h {
            counts.resize(h + 1, 0);
        }
        counts[h] += 1;
    }
    let out = ExplainOut {
        predicted_s_per_iter: report.total_time,
        nests,
        hops: HopHist {
            edges: edges.len() as u64,
            max_hops: counts.len().saturating_sub(1) as u64,
            counts,
        },
    };
    serde_json::to_string(&out).map_err(|e| internal(format!("render: {e:?}")))
}

/// Splices an `explain` block into an already-rendered result object.
/// The cached bytes stay pure — the block is appended per-response, so
/// explain-off responses are byte-identical to pre-explain behavior.
fn with_explain(result: &str, explain_json: &str) -> String {
    match result.strip_suffix('}') {
        Some(head) => format!("{head},\"explain\":{explain_json}}}"),
        None => result.to_string(),
    }
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

fn worker_loop(state: Arc<ServerState>) {
    while let Some(job) = state.queue.pop() {
        match job {
            Job::Plan {
                scenario,
                key,
                digest,
                cancel,
                deadline,
                started,
                explain,
                reply,
            } => {
                if !cancel.claim() {
                    // The deadline sweep already answered this request.
                    continue;
                }
                // Flight-recorder stages: queue wait is measured at claim,
                // compute around the work. Gated so an unrecorded server
                // takes no extra clock reads.
                let flight_on = state.flight.enabled();
                let wait_us = if flight_on {
                    dur_us(clock::since(started))
                } else {
                    0
                };
                let t0 = flight_on.then(clock::now);
                let outcome = if deadline.is_some_and(clock::expired) {
                    state
                        .metrics
                        .deadline_expired
                        .fetch_add(1, Ordering::Relaxed);
                    Err(deadline_exceeded())
                } else {
                    compute_plan(&state, &scenario, &key, digest, explain)
                };
                state
                    .metrics
                    .endpoint(Endpoint::Plan)
                    .record(clock::since(started), outcome.is_ok());
                let work_us = t0.map(|t| dur_us(clock::since(t))).unwrap_or(0);
                reply.send_with_stages(outcome, wait_us, work_us);
            }
            Job::Compare {
                scenario,
                iterations,
                key,
                digest,
                cancel,
                deadline,
                started,
                explain,
                reply,
            } => {
                if !cancel.claim() {
                    continue;
                }
                let flight_on = state.flight.enabled();
                let wait_us = if flight_on {
                    dur_us(clock::since(started))
                } else {
                    0
                };
                let t0 = flight_on.then(clock::now);
                let outcome = if deadline.is_some_and(clock::expired) {
                    state
                        .metrics
                        .deadline_expired
                        .fetch_add(1, Ordering::Relaxed);
                    Err(deadline_exceeded())
                } else {
                    compute_compare(&state, &scenario, iterations, &key, digest, explain)
                };
                state
                    .metrics
                    .endpoint(Endpoint::Compare)
                    .record(clock::since(started), outcome.is_ok());
                let work_us = t0.map(|t| dur_us(clock::since(t))).unwrap_or(0);
                reply.send_with_stages(outcome, wait_us, work_us);
            }
            Job::PredictTick { machine_key } => run_predict_batch(&state, &machine_key),
            Job::Execute {
                scenario,
                iterations,
                workers,
                cancel,
                deadline,
                started,
                reply,
            } => {
                if !cancel.claim() {
                    continue;
                }
                let flight_on = state.flight.enabled();
                let wait_us = if flight_on {
                    dur_us(clock::since(started))
                } else {
                    0
                };
                let t0 = flight_on.then(clock::now);
                let outcome = if deadline.is_some_and(clock::expired) {
                    state
                        .metrics
                        .deadline_expired
                        .fetch_add(1, Ordering::Relaxed);
                    Err(deadline_exceeded())
                } else {
                    compute_execute(&state, &scenario, iterations, workers)
                };
                state
                    .metrics
                    .endpoint(Endpoint::Execute)
                    .record(clock::since(started), outcome.is_ok());
                let work_us = t0.map(|t| dur_us(clock::since(t))).unwrap_or(0);
                reply.send_with_stages(outcome, wait_us, work_us);
            }
        }
    }
    // Queue closed and drained. The last worker out answers anything still
    // parked in the predict batcher, so readers waiting on in-flight
    // completions always get them.
    if state.workers_left.fetch_sub(1, Ordering::SeqCst) == 1 {
        for p in state.batcher.drain_all() {
            if p.cancel.claim() {
                state
                    .metrics
                    .endpoint(Endpoint::Predict)
                    .record(clock::since(p.started), false);
                p.reply.send(Err(shutting_down()));
            }
        }
    }
}

fn compute_plan(
    state: &ServerState,
    scenario: &Scenario,
    key: &str,
    digest: u64,
    explain: bool,
) -> Outcome {
    if explain {
        // Explained requests bypass the reader's cache fast path entirely
        // (the reader never counted a lookup), so this `get` is counted —
        // cache hit/miss figures stay truthful. The cache stores *pure*
        // result bytes; the explain block is spliced per-response from a
        // freshly computed plan (deterministic, so it describes the cached
        // bytes exactly).
        let plan = state
            .planner_for(scenario)
            .plan(&scenario.parent, &scenario.nests)
            .map_err(|e| ProtoError::new(ErrorKind::Failed, e.to_string()))?;
        let result = match state.cache.get(key, digest) {
            Some(hit) => hit.to_string(),
            None => match state.disk.as_ref().and_then(|d| d.get(key)) {
                Some(hit) => {
                    state
                        .cache
                        .insert(key.to_string(), digest, Arc::clone(&hit));
                    hit.to_string()
                }
                None => {
                    let result = render_plan(scenario, &plan)?;
                    state
                        .cache
                        .insert(key.to_string(), digest, Arc::from(result.as_str()));
                    if let Some(disk) = &state.disk {
                        let _ = disk.put(key, &result);
                    }
                    result
                }
            },
        };
        let explain_json = render_explain(&plan)?;
        return Ok(with_explain(&result, &explain_json));
    }
    // Re-check the cache (uncounted — the reader already counted the
    // miss): an identical request may have been computed while this one
    // waited in the queue.
    if let Some(hit) = state.cache.peek(key, digest) {
        return Ok(hit.to_string());
    }
    // Memory missed: a sweep (or an earlier process) may have persisted
    // this exact rendering. A disk hit pre-heats the in-memory shard so
    // subsequent identical requests are answered without touching disk.
    if let Some(hit) = state.disk.as_ref().and_then(|d| d.get(key)) {
        state
            .cache
            .insert(key.to_string(), digest, Arc::clone(&hit));
        return Ok(hit.to_string());
    }
    let plan = state
        .planner_for(scenario)
        .plan(&scenario.parent, &scenario.nests)
        .map_err(|e| ProtoError::new(ErrorKind::Failed, e.to_string()))?;
    let result = render_plan(scenario, &plan)?;
    state
        .cache
        .insert(key.to_string(), digest, Arc::from(result.as_str()));
    if let Some(disk) = &state.disk {
        // Persistence is best-effort: a full disk must not fail a request
        // the server just computed an answer for.
        let _ = disk.put(key, &result);
    }
    Ok(result)
}

fn compute_compare(
    state: &ServerState,
    scenario: &Scenario,
    iterations: u32,
    key: &str,
    digest: u64,
    explain: bool,
) -> Outcome {
    if explain {
        // Same contract as `compute_plan`: counted lookup (the reader
        // skipped its fast path), pure bytes in the cache, explain block
        // spliced per-response from the deterministic planned plan.
        let planner = state.planner_for(scenario);
        let plan = planner
            .plan(&scenario.parent, &scenario.nests)
            .map_err(|e| ProtoError::new(ErrorKind::Failed, e.to_string()))?;
        let result = match state.cache.get(key, digest) {
            Some(hit) => hit.to_string(),
            None => match state.disk.as_ref().and_then(|d| d.get(key)) {
                Some(hit) => {
                    state
                        .cache
                        .insert(key.to_string(), digest, Arc::clone(&hit));
                    hit.to_string()
                }
                None => render_compare_fresh(state, scenario, iterations, key, digest)?,
            },
        };
        let explain_json = render_explain(&plan)?;
        return Ok(with_explain(&result, &explain_json));
    }
    if let Some(hit) = state.cache.peek(key, digest) {
        return Ok(hit.to_string());
    }
    if let Some(hit) = state.disk.as_ref().and_then(|d| d.get(key)) {
        state
            .cache
            .insert(key.to_string(), digest, Arc::clone(&hit));
        return Ok(hit.to_string());
    }
    render_compare_fresh(state, scenario, iterations, key, digest)
}

/// Computes, renders, caches and persists a fresh compare result.
fn render_compare_fresh(
    state: &ServerState,
    scenario: &Scenario,
    iterations: u32,
    key: &str,
    digest: u64,
) -> Outcome {
    let planner = state.planner_for(scenario);
    let cmp = compare_strategies(&planner, &scenario.parent, &scenario.nests, iterations)
        .map_err(|e| ProtoError::new(ErrorKind::Failed, e.to_string()))?;
    let result = serde_json::to_string(&CompareResult {
        machine: scenario.machine.name.clone(),
        iterations,
        default_s_per_iter: cmp.default_run.per_iteration(),
        planned_s_per_iter: cmp.planned_run.per_iteration(),
        improvement_pct: cmp.improvement_pct(),
        mpi_wait_improvement_pct: cmp.mpi_wait_improvement_pct(),
        io_improvement_pct: cmp.io_improvement_pct(),
        hops_reduction_pct: cmp.hops_reduction_pct(),
    })
    .map_err(|e| internal(format!("render: {e:?}")))?;
    state
        .cache
        .insert(key.to_string(), digest, Arc::from(result.as_str()));
    if let Some(disk) = &state.disk {
        let _ = disk.put(key, &result);
    }
    Ok(result)
}

/// Total-cell ceiling for `execute` scenarios: the parent plus every
/// nest's fine grid. A fleet run holds real field state and steps it, so
/// the endpoint refuses scenarios that would monopolize a worker thread.
const MAX_EXECUTE_CELLS: u64 = 1_000_000;

/// Runs the scenario across an in-process socket fleet and renders the
/// merged report plus its obs envelope. The plan is computed first (same
/// planner path as `plan`) both to validate the scenario and to derive
/// the rank weights that drive nest → worker ownership.
fn compute_execute(
    state: &ServerState,
    scenario: &Scenario,
    iterations: u32,
    workers: u32,
) -> Outcome {
    let cells = scenario.parent.nx as u64 * scenario.parent.ny as u64
        + scenario
            .nests
            .iter()
            .map(|n| n.nx as u64 * n.ny as u64)
            .sum::<u64>();
    if cells > MAX_EXECUTE_CELLS {
        return Err(ProtoError::new(
            ErrorKind::Failed,
            format!("scenario too large to execute ({cells} cells > {MAX_EXECUTE_CELLS})"),
        ));
    }
    let plan = state
        .planner_for(scenario)
        .plan(&scenario.parent, &scenario.nests)
        .map_err(|e| ProtoError::new(ErrorKind::Failed, e.to_string()))?;
    let partitions: Vec<(usize, u64)> = plan
        .partitions
        .iter()
        .map(|p| (p.domain, p.rect.area()))
        .collect();
    let ranks = plan.machine.ranks() as u64;
    let cfg = nestwx_fleet::FleetConfig {
        workers: workers as usize,
        ..nestwx_fleet::FleetConfig::from_env()
    };
    let run = nestwx_fleet::execute_in_process(
        &scenario.parent,
        &scenario.nests,
        iterations as u64,
        ranks,
        &partitions,
        &cfg,
    )
    .map_err(|e| match e {
        nestwx_fleet::FleetError::WorkerLost { .. } => {
            ProtoError::new(ErrorKind::WorkerLost, e.to_string())
        }
        other => ProtoError::new(ErrorKind::Failed, other.to_string()),
    })?;
    let fleet_json =
        serde_json::to_string(&run.summary).map_err(|e| internal(format!("render: {e:?}")))?;
    let mut s = String::with_capacity(256 + fleet_json.len());
    s.push_str("{\"machine\":");
    serde::write_escaped_str(&scenario.machine.name, &mut s);
    s.push_str(&format!(",\"workers\":{workers}"));
    s.push_str(",\"report\":");
    s.push_str(&run.report.to_json());
    s.push_str(",\"fleet\":");
    s.push_str(&fleet_json);
    s.push('}');
    Ok(s)
}

fn run_predict_batch(state: &ServerState, machine_key: &str) {
    // Claim each pending request: ones already answered by a deadline
    // sweep are dropped here, never computed or double-answered.
    let claimed: Vec<Pending> = state
        .batcher
        .take(machine_key)
        .into_iter()
        .filter(|p| p.cancel.claim())
        .collect();
    if claimed.is_empty() {
        // An earlier tick already drained these requests — the whole point
        // of batching.
        return;
    }
    state.metrics.record_batch(claimed.len());
    let machine = match parse_machine(&claimed[0].machine_spec) {
        Ok(m) => m,
        Err(msg) => {
            // Unreachable (validated at submit time), but a worker must
            // never panic: answer the batch and move on.
            let e = ProtoError::bad_request(msg);
            for p in claimed {
                state
                    .metrics
                    .endpoint(Endpoint::Predict)
                    .record(clock::since(p.started), false);
                p.reply.send(Err(e.clone()));
            }
            return;
        }
    };
    let flight_on = state.flight.enabled();
    let t0 = flight_on.then(clock::now);
    let predictor = state.predictor_for(&machine);
    for p in claimed {
        // Queue wait for a batched predict = arrival → batch execution
        // start; the predictor resolution plus per-request rendering is
        // the work stage.
        let wait_us = t0
            .map(|t| dur_us(clock::since(p.started)).saturating_sub(dur_us(clock::since(t))))
            .unwrap_or(0);
        let outcome = predictor
            .relative_times(&p.features)
            .map_err(|e| ProtoError::new(ErrorKind::Failed, format!("prediction: {e}")))
            .and_then(|times| render_predict(&p.machine_spec, times));
        state
            .metrics
            .endpoint(Endpoint::Predict)
            .record(clock::since(p.started), outcome.is_ok());
        let work_us = t0.map(|t| dur_us(clock::since(t))).unwrap_or(0);
        p.reply.send_with_stages(outcome, wait_us, work_us);
    }
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

/// What remained when the server finished draining — all zeros (and
/// balanced request/response totals) on a clean exit. Deadline-expired and
/// rate-shed requests are *answered* (typed errors), so they appear in the
/// informational counters here, never as residuals.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct DrainReport {
    /// Request lines received over the server's lifetime.
    pub requests_total: u64,
    /// Response lines generated over the server's lifetime (delivery is
    /// attempted; a vanished client does not skew the balance).
    pub responses_total: u64,
    /// Jobs left in the queue after the workers exited (always 0: workers
    /// drain the queue before exiting).
    pub queue_residual: u64,
    /// Predict requests still parked after the drain (always 0: the last
    /// worker answers them with `shutting_down` before exiting).
    pub batch_residual: u64,
    /// Connections still open after the readers joined (always 0).
    pub live_conns: u64,
    /// Requests answered with `deadline_exceeded` (informational).
    pub deadline_expired: u64,
    /// Requests answered with `rate_limited` (informational).
    pub rate_shed: u64,
}

impl DrainReport {
    /// True when nothing leaked: every thread joined, every accepted
    /// request was answered (typed errors included), nothing left queued
    /// or parked.
    pub fn clean(&self) -> bool {
        self.queue_residual == 0
            && self.batch_residual == 0
            && self.live_conns == 0
            && self.requests_total == self.responses_total
    }
}

/// A running server: its bound address plus the join handles.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    readers: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually bound address (resolves `:0` port requests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Triggers a graceful shutdown (same as a `shutdown` request).
    pub fn shutdown(&self) {
        self.state.trigger_shutdown();
    }

    /// Blocks until the server has fully drained — readers and workers all
    /// joined — and reports what was left. Call after
    /// [`ServerHandle::shutdown`] or once a client sent `shutdown`.
    pub fn wait(mut self) -> DrainReport {
        for r in self.readers.drain(..) {
            let _ = r.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // The last worker already swept the batcher; this catches nothing
        // unless a worker died abnormally.
        let leftovers = self.state.batcher.drain_all();
        let batch_residual = leftovers.len() as u64;
        for p in leftovers {
            if p.cancel.claim() {
                p.reply.send(Err(shutting_down()));
            }
        }
        DrainReport {
            requests_total: self.state.metrics.requests_total.load(Ordering::Relaxed),
            responses_total: self.state.metrics.responses_total.load(Ordering::Relaxed),
            queue_residual: self.state.queue.depth() as u64,
            batch_residual,
            live_conns: self.state.live_conns.load(Ordering::Relaxed) as u64,
            deadline_expired: self.state.metrics.deadline_expired.load(Ordering::Relaxed),
            rate_shed: self.state.metrics.rate_shed.load(Ordering::Relaxed),
        }
    }

    /// A point-in-time stats snapshot — the same content the `stats`
    /// endpoint renders, for embedding tests and benches.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        self.state.metrics.snapshot(
            self.state.queue.stats(),
            self.state.cache.stats(),
            self.state.live_conns.load(Ordering::Relaxed) as u64,
            self.state.limit_gauges(),
            self.state.disk_stats(),
            self.state.flight.stats(),
        )
    }

    /// Drains the flight recorder into its envelope — the same content the
    /// `trace` endpoint renders, for embedding tests and benches.
    pub fn trace_envelope(&self) -> crate::flight::TraceEnvelope {
        self.state.flight.envelope()
    }

    /// p99 plan latency in seconds (from the live histogram) — convenience
    /// for embedding tests.
    pub fn plan_latency(&self) -> HistSummary {
        self.stats_snapshot().endpoints.plan.latency
    }
}

/// Binds and spawns the server: reader set plus worker pool. Returns once
/// the listener is bound — requests can be sent immediately.
pub fn spawn(cfg: ServeConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let n_workers = cfg.workers.max(1);
    let n_readers = cfg.readers.max(1);
    let disk = match &cfg.cache_dir {
        Some(dir) => Some(DiskCache::open(dir)?),
        None => None,
    };
    let state = Arc::new(ServerState {
        queue: BoundedQueue::new(cfg.queue_depth),
        cache: PlanCache::new(cfg.cache_capacity),
        disk,
        batcher: PredictBatcher::new(),
        metrics: Metrics::default(),
        predictors: BoundedMap::new(cfg.predictors),
        limiter: RateLimiter::new(cfg.rate, cfg.burst, cfg.client_cap),
        flight: FlightRecorder::new(cfg.trace, n_readers, cfg.trace_ring, cfg.trace_slow_us),
        shutdown: AtomicBool::new(false),
        live_conns: AtomicUsize::new(0),
        workers_left: AtomicUsize::new(n_workers),
        epoch: clock::now(),
        cfg,
    });
    let workers = (0..n_workers)
        .map(|i| {
            let st = Arc::clone(&state);
            thread::Builder::new()
                .name(format!("nestwx-serve-worker-{i}"))
                .spawn(move || worker_loop(st))
        })
        .collect::<io::Result<Vec<_>>>()?;
    // Per-reader channel pairs: completions (workers → reader) and
    // connection handoffs (reader 0 → reader i).
    let mut channels: Vec<ReaderChannels> = (0..n_readers)
        .map(|_| {
            let (completions_tx, completions_rx) = mpsc::channel();
            let (handoff_tx, handoff_rx) = mpsc::channel();
            ReaderChannels {
                completions_tx,
                completions_rx: Some(completions_rx),
                handoff_tx,
                handoff_rx: Some(handoff_rx),
            }
        })
        .collect();
    let handoff_txs: Vec<_> = channels.iter().map(|c| c.handoff_tx.clone()).collect();
    let mut listener = Some(listener);
    let readers = channels
        .iter_mut()
        .enumerate()
        .map(|(i, ch)| {
            let st = Arc::clone(&state);
            let listener = listener.take();
            let handoffs = if i == 0 {
                handoff_txs.clone()
            } else {
                Vec::new()
            };
            let completions_tx = ch.completions_tx.clone();
            let completions_rx = ch.completions_rx.take();
            let handoff_rx = ch.handoff_rx.take();
            thread::Builder::new()
                .name(format!("nestwx-serve-reader-{i}"))
                .spawn(move || {
                    if let (Some(crx), Some(hrx)) = (completions_rx, handoff_rx) {
                        event_loop::run_reader(st, i, listener, handoffs, hrx, completions_tx, crx);
                    }
                })
        })
        .collect::<io::Result<Vec<_>>>()?;
    Ok(ServerHandle {
        addr,
        state,
        readers,
        workers,
    })
}

//! The concurrent planning server.
//!
//! Threading model (all std, no async runtime):
//!
//! - one **acceptor** thread owns the listener and spawns a thread per
//!   connection (capped at [`ServeConfig::max_conns`]; over-cap connections
//!   get one `overloaded` line and are closed);
//! - each **connection** thread reads newline-delimited requests, answers
//!   `stats`/`shutdown` inline (the control plane must stay responsive
//!   while the compute queue is saturated), resolves `plan`/`compare`
//!   cache hits inline, and otherwise parks the request on a bounded job
//!   queue and blocks on its private reply channel;
//! - a fixed pool of **worker** threads pops jobs: planning, comparison,
//!   and predict batch ticks.
//!
//! Backpressure is explicit: the job queue rejects pushes beyond its
//! capacity and the client receives a typed `overloaded` error immediately
//! — the server never buffers unboundedly. Shutdown is graceful: the flag
//! flips, the queue closes, workers drain everything already accepted,
//! connection threads notice within one read-timeout tick, and
//! [`ServerHandle::wait`] joins every thread before reporting the final
//! [`DrainReport`].

use crate::batch::{Outcome, Pending, PredictBatcher};
use crate::cache::PlanCache;
use crate::keys;
use crate::metrics::Metrics;
use crate::protocol::{
    alloc_token, mapping_token, parse_machine, response_err_line, response_ok_line, strategy_token,
    ErrorKind, Line, LineReader, PredictParams, ProtoError, Request, RequestBody, ScenarioParams,
    MAX_LINE_BYTES,
};
use crate::queue::{BoundedQueue, PushError};
use crate::sync::{lock_unpoisoned, AtomicBool, AtomicUsize, Mutex, Ordering};
use nestwx_core::strategy::AllocPolicy;
use nestwx_core::{compare_strategies, fit_predictor, ExecutionPlan, Planner, Scenario};
use nestwx_grid::DomainFeatures;
use nestwx_netsim::Machine;
use nestwx_obs::HistSummary;
use nestwx_predict::ExecTimePredictor;
use serde::Serialize;
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{self, Receiver};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Seed of the on-demand predictor fit — must stay identical to the one
/// `Planner::plan` uses when no predictor is supplied, so a served plan is
/// byte-identical to one computed directly.
const PROFILE_SEED: u64 = 0xBEEF;

/// How long a connection thread waits in `read` before polling the
/// shutdown flag.
const READ_POLL: Duration = Duration::from_millis(100);

/// Server tuning knobs. `ServeConfig::new` reads the `NESTWX_SERVE_*`
/// environment variables for defaults.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `"127.0.0.1:7878"` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads (`NESTWX_SERVE_WORKERS`, default 4).
    pub workers: usize,
    /// Bounded job-queue depth (`NESTWX_SERVE_QUEUE`, default 64).
    pub queue_depth: usize,
    /// Plan-cache capacity in entries (`NESTWX_SERVE_CACHE`, default 256).
    pub cache_capacity: usize,
    /// Maximum concurrent connections (`NESTWX_SERVE_MAX_CONNS`,
    /// default 64).
    pub max_conns: usize,
}

impl ServeConfig {
    /// A config for `addr` with environment-derived defaults.
    pub fn new(addr: impl Into<String>) -> ServeConfig {
        ServeConfig {
            addr: addr.into(),
            workers: nestwx_core::env_usize("NESTWX_SERVE_WORKERS", 4),
            queue_depth: nestwx_core::env_usize("NESTWX_SERVE_QUEUE", 64),
            cache_capacity: nestwx_core::env_usize("NESTWX_SERVE_CACHE", 256),
            max_conns: nestwx_core::env_usize("NESTWX_SERVE_MAX_CONNS", 64),
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig::new("127.0.0.1:0")
    }
}

// ---------------------------------------------------------------------------
// Jobs (the bounded queue itself lives in `crate::queue`)
// ---------------------------------------------------------------------------

enum Job {
    Plan {
        scenario: Scenario,
        key: String,
        digest: u64,
        reply: mpsc::Sender<Outcome>,
    },
    Compare {
        scenario: Scenario,
        iterations: u32,
        key: String,
        digest: u64,
        reply: mpsc::Sender<Outcome>,
    },
    /// Lightweight marker: "a predict batch for this machine may be
    /// pending". The worker that pops it drains the whole batch.
    PredictTick { machine_key: String },
}

// ---------------------------------------------------------------------------
// Shared state
// ---------------------------------------------------------------------------

struct ServerState {
    cfg: ServeConfig,
    addr: SocketAddr,
    queue: BoundedQueue<Job>,
    cache: PlanCache,
    batcher: PredictBatcher,
    metrics: Metrics,
    /// One fitted predictor per machine identity (canonical machine JSON),
    /// shared by plan workers and predict batches. Ordered map: iteration
    /// order (debug dumps, future eviction) is deterministic.
    predictors: Mutex<BTreeMap<String, Arc<ExecTimePredictor>>>,
    shutdown: AtomicBool,
    live_conns: AtomicUsize,
}

impl ServerState {
    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Flips the shutdown flag once: closes the queue (workers drain and
    /// exit) and pokes the blocking `accept` with a throwaway connection.
    fn trigger_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue.close();
        let _ = TcpStream::connect(self.addr);
    }

    fn predictor_for(&self, machine: &Machine) -> Arc<ExecTimePredictor> {
        // Machines always serialize; if that ever regresses, the Debug
        // rendering is still a stable identity — degrade instead of
        // panicking on the request path.
        let key = serde_json::to_string(machine).unwrap_or_else(|_| format!("{machine:?}"));
        let mut map = lock_unpoisoned(&self.predictors);
        Arc::clone(
            map.entry(key)
                .or_insert_with(|| Arc::new(fit_predictor(machine, PROFILE_SEED))),
        )
    }

    /// The scenario's planner, with the predictor pre-resolved from the
    /// shared per-machine map when the policy needs one. Because the map
    /// fits with the same fixed seed the planner would use on demand, the
    /// resulting plans are identical either way.
    fn planner_for(&self, scenario: &Scenario) -> Planner {
        let planner = scenario.planner();
        if scenario.alloc == AllocPolicy::HuffmanSplitTree {
            planner.with_predictor((*self.predictor_for(&scenario.machine)).clone())
        } else {
            planner
        }
    }
}

// ---------------------------------------------------------------------------
// Result rendering (the JSON that gets cached and spliced into responses)
// ---------------------------------------------------------------------------

#[derive(Serialize)]
struct GridOut {
    px: u32,
    py: u32,
}

#[derive(Serialize)]
struct PartitionOut {
    nest: u64,
    x: u32,
    y: u32,
    w: u32,
    h: u32,
    ranks: u64,
}

#[derive(Serialize)]
struct PlanResult {
    machine: String,
    ranks: u32,
    grid: GridOut,
    strategy: String,
    alloc: String,
    mapping: String,
    predicted_ratios: Vec<f64>,
    partitions: Vec<PartitionOut>,
}

#[derive(Serialize)]
struct CompareResult {
    machine: String,
    iterations: u32,
    default_s_per_iter: f64,
    planned_s_per_iter: f64,
    improvement_pct: f64,
    mpi_wait_improvement_pct: f64,
    io_improvement_pct: f64,
    hops_reduction_pct: f64,
}

#[derive(Serialize)]
struct PredictResult {
    machine: String,
    relative_times: Vec<f64>,
}

fn internal(msg: impl Into<String>) -> ProtoError {
    ProtoError::new(ErrorKind::Internal, msg)
}

fn shutting_down() -> ProtoError {
    ProtoError::new(ErrorKind::ShuttingDown, "server is draining")
}

fn render_plan(scenario: &Scenario, plan: &ExecutionPlan) -> Result<String, ProtoError> {
    let result = PlanResult {
        machine: scenario.machine.name.clone(),
        ranks: plan.machine.ranks(),
        grid: GridOut {
            px: plan.grid.px,
            py: plan.grid.py,
        },
        strategy: strategy_token(scenario.strategy).to_string(),
        alloc: alloc_token(scenario.alloc).to_string(),
        mapping: mapping_token(scenario.mapping).to_string(),
        predicted_ratios: plan.predicted_ratios.clone(),
        partitions: plan
            .partitions
            .iter()
            .map(|p| PartitionOut {
                nest: p.domain as u64,
                x: p.rect.x0,
                y: p.rect.y0,
                w: p.rect.w,
                h: p.rect.h,
                ranks: p.rect.area(),
            })
            .collect(),
    };
    serde_json::to_string(&result).map_err(|e| internal(format!("render: {e:?}")))
}

fn render_predict(machine_spec: &str, relative_times: Vec<f64>) -> Result<String, ProtoError> {
    serde_json::to_string(&PredictResult {
        machine: machine_spec.to_string(),
        relative_times,
    })
    .map_err(|e| internal(format!("render: {e:?}")))
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

fn worker_loop(state: Arc<ServerState>) {
    while let Some(job) = state.queue.pop() {
        match job {
            Job::Plan {
                scenario,
                key,
                digest,
                reply,
            } => {
                let _ = reply.send(compute_plan(&state, &scenario, &key, digest));
            }
            Job::Compare {
                scenario,
                iterations,
                key,
                digest,
                reply,
            } => {
                let _ = reply.send(compute_compare(&state, &scenario, iterations, &key, digest));
            }
            Job::PredictTick { machine_key } => run_predict_batch(&state, &machine_key),
        }
    }
}

fn compute_plan(state: &ServerState, scenario: &Scenario, key: &str, digest: u64) -> Outcome {
    // Re-check the cache (uncounted — the connection thread already counted
    // the miss): an identical request may have been computed while this one
    // waited in the queue.
    if let Some(hit) = state.cache.peek(key, digest) {
        return Ok(hit.to_string());
    }
    let plan = state
        .planner_for(scenario)
        .plan(&scenario.parent, &scenario.nests)
        .map_err(|e| ProtoError::new(ErrorKind::Failed, e.to_string()))?;
    let result = render_plan(scenario, &plan)?;
    state
        .cache
        .insert(key.to_string(), digest, Arc::from(result.as_str()));
    Ok(result)
}

fn compute_compare(
    state: &ServerState,
    scenario: &Scenario,
    iterations: u32,
    key: &str,
    digest: u64,
) -> Outcome {
    if let Some(hit) = state.cache.peek(key, digest) {
        return Ok(hit.to_string());
    }
    let planner = state.planner_for(scenario);
    let cmp = compare_strategies(&planner, &scenario.parent, &scenario.nests, iterations)
        .map_err(|e| ProtoError::new(ErrorKind::Failed, e.to_string()))?;
    let result = serde_json::to_string(&CompareResult {
        machine: scenario.machine.name.clone(),
        iterations,
        default_s_per_iter: cmp.default_run.per_iteration(),
        planned_s_per_iter: cmp.planned_run.per_iteration(),
        improvement_pct: cmp.improvement_pct(),
        mpi_wait_improvement_pct: cmp.mpi_wait_improvement_pct(),
        io_improvement_pct: cmp.io_improvement_pct(),
        hops_reduction_pct: cmp.hops_reduction_pct(),
    })
    .map_err(|e| internal(format!("render: {e:?}")))?;
    state
        .cache
        .insert(key.to_string(), digest, Arc::from(result.as_str()));
    Ok(result)
}

fn run_predict_batch(state: &ServerState, machine_key: &str) {
    let batch = state.batcher.take(machine_key);
    if batch.is_empty() {
        // An earlier tick already drained these requests — the whole point
        // of batching.
        return;
    }
    state.metrics.record_batch(batch.len());
    let machine = match parse_machine(&batch[0].machine_spec) {
        Ok(m) => m,
        Err(msg) => {
            // Unreachable (validated at submit time), but a worker must
            // never panic: answer the batch and move on.
            let e = ProtoError::bad_request(msg);
            for p in batch {
                let _ = p.reply.send(Err(e.clone()));
            }
            return;
        }
    };
    let predictor = state.predictor_for(&machine);
    for p in batch {
        let outcome = predictor
            .relative_times(&p.features)
            .map_err(|e| ProtoError::new(ErrorKind::Failed, format!("prediction: {e}")))
            .and_then(|times| render_predict(&p.machine_spec, times));
        let _ = p.reply.send(outcome);
    }
}

// ---------------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------------

enum Flow {
    Continue,
    CloseConn,
}

fn serve_conn(state: &Arc<ServerState>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = LineReader::new(stream, MAX_LINE_BYTES);
    loop {
        match reader.next_line() {
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if state.is_shutdown() {
                    break;
                }
            }
            Err(_) => break,
            Ok(Line::Eof) => break,
            Ok(Line::Oversized { discarded }) => {
                state.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
                state
                    .metrics
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                let e = ProtoError::new(
                    ErrorKind::Oversized,
                    format!("line exceeds {MAX_LINE_BYTES} bytes ({discarded} discarded)"),
                );
                if matches!(
                    write_response(state, &mut writer, &response_err_line(None, &e)),
                    Flow::CloseConn
                ) {
                    break;
                }
            }
            Ok(Line::Data(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                if matches!(handle_line(state, &line, &mut writer), Flow::CloseConn) {
                    break;
                }
            }
        }
    }
}

/// Writes one response line. `responses_total` counts the attempt, not the
/// success — a client that vanished mid-request must not skew the drain
/// accounting.
fn write_response(state: &ServerState, writer: &mut TcpStream, line: &str) -> Flow {
    state
        .metrics
        .responses_total
        .fetch_add(1, Ordering::Relaxed);
    let mut payload = String::with_capacity(line.len() + 1);
    payload.push_str(line);
    payload.push('\n');
    match writer.write_all(payload.as_bytes()) {
        Ok(()) => Flow::Continue,
        Err(_) => Flow::CloseConn,
    }
}

fn handle_line(state: &Arc<ServerState>, line: &str, writer: &mut TcpStream) -> Flow {
    state.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
    let req = match Request::parse_line(line) {
        Ok(r) => r,
        Err(e) => {
            state
                .metrics
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            return write_response(state, writer, &response_err_line(None, &e));
        }
    };
    let endpoint = req.endpoint();
    let started = nestwx_obs::clock::now();
    let (outcome, close_after) = execute(state, &req);
    state
        .metrics
        .endpoint(endpoint)
        .record(started.elapsed(), outcome.is_ok());
    let response = match &outcome {
        Ok(result) => response_ok_line(req.id.as_deref(), result),
        Err(e) => {
            if matches!(
                e.kind,
                ErrorKind::BadRequest | ErrorKind::UnsupportedVersion
            ) {
                state
                    .metrics
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
            }
            response_err_line(req.id.as_deref(), e)
        }
    };
    match write_response(state, writer, &response) {
        Flow::CloseConn => Flow::CloseConn,
        Flow::Continue if close_after => Flow::CloseConn,
        Flow::Continue => Flow::Continue,
    }
}

/// Runs one request, returning the outcome and whether the connection
/// should close after the response (only after `shutdown`).
fn execute(state: &Arc<ServerState>, req: &Request) -> (Outcome, bool) {
    match &req.body {
        RequestBody::Stats => (render_stats(state), false),
        RequestBody::Shutdown => {
            state.trigger_shutdown();
            (Ok("{\"draining\":true}".to_string()), true)
        }
        RequestBody::Plan(p) => (submit_scenario(state, p, None), false),
        RequestBody::Compare { params, iterations } => {
            (submit_scenario(state, params, Some(*iterations)), false)
        }
        RequestBody::Predict(p) => (submit_predict(state, p), false),
    }
}

fn render_stats(state: &ServerState) -> Outcome {
    let snapshot = state.metrics.snapshot(
        state.queue.stats(),
        state.cache.stats(),
        state.live_conns.load(Ordering::Relaxed) as u64,
    );
    serde_json::to_string(&snapshot).map_err(|e| internal(format!("render: {e:?}")))
}

fn submit_scenario(
    state: &Arc<ServerState>,
    params: &ScenarioParams,
    iterations: Option<u32>,
) -> Outcome {
    let scenario = params.to_scenario()?;
    let key = match iterations {
        None => keys::plan_key(&scenario),
        Some(n) => keys::compare_key(&scenario, n),
    };
    let digest = keys::key_digest(&key);
    // Hits are answered on the connection thread — they never occupy queue
    // capacity, which is what keeps a hot working set fast even while the
    // workers grind cold scenarios.
    if let Some(hit) = state.cache.get(&key, digest) {
        return Ok(hit.to_string());
    }
    if state.is_shutdown() {
        return Err(shutting_down());
    }
    let (reply, rx) = mpsc::channel();
    let job = match iterations {
        None => Job::Plan {
            scenario,
            key,
            digest,
            reply,
        },
        Some(n) => Job::Compare {
            scenario,
            iterations: n,
            key,
            digest,
            reply,
        },
    };
    match state.queue.push(job) {
        Ok(()) => await_reply(rx),
        Err(PushError::Full) => Err(ProtoError::new(
            ErrorKind::Overloaded,
            "request queue full, retry later",
        )),
        Err(PushError::Closed) => Err(shutting_down()),
    }
}

fn submit_predict(state: &Arc<ServerState>, params: &PredictParams) -> Outcome {
    let machine = parse_machine(&params.machine).map_err(ProtoError::bad_request)?;
    let machine_key =
        serde_json::to_string(&machine).map_err(|e| internal(format!("machine key: {e:?}")))?;
    if state.is_shutdown() {
        return Err(shutting_down());
    }
    let features: Vec<DomainFeatures> = params.nests.iter().map(DomainFeatures::from).collect();
    let (reply, rx) = mpsc::channel();
    let token = state.batcher.token();
    state.batcher.add(
        &machine_key,
        Pending {
            token,
            machine_spec: params.machine.clone(),
            features,
            reply,
        },
    );
    match state.queue.push(Job::PredictTick {
        machine_key: machine_key.clone(),
    }) {
        Ok(()) => await_reply(rx),
        Err(push_err) => {
            if state.batcher.cancel(&machine_key, token) {
                match push_err {
                    PushError::Full => Err(ProtoError::new(
                        ErrorKind::Overloaded,
                        "request queue full, retry later",
                    )),
                    PushError::Closed => Err(shutting_down()),
                }
            } else {
                // A concurrent tick already took our pending request — its
                // reply is on the way; report that instead of an error.
                await_reply(rx)
            }
        }
    }
}

fn await_reply(rx: Receiver<Outcome>) -> Outcome {
    match rx.recv_timeout(Duration::from_secs(120)) {
        Ok(outcome) => outcome,
        Err(_) => Err(internal("worker did not reply")),
    }
}

// ---------------------------------------------------------------------------
// Acceptor + lifecycle
// ---------------------------------------------------------------------------

fn acceptor_loop(state: Arc<ServerState>, listener: TcpListener) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if state.is_shutdown() {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        // Reap finished connection threads so the handle list stays small.
        conns = conns
            .into_iter()
            .filter_map(|h| {
                if h.is_finished() {
                    let _ = h.join();
                    None
                } else {
                    Some(h)
                }
            })
            .collect();
        if state.live_conns.load(Ordering::Relaxed) >= state.cfg.max_conns {
            state.metrics.rejected_conns.fetch_add(1, Ordering::Relaxed);
            let e = ProtoError::new(ErrorKind::Overloaded, "connection limit reached");
            let mut s = stream;
            let _ = s.write_all((response_err_line(None, &e) + "\n").as_bytes());
            continue;
        }
        state.metrics.accepted_conns.fetch_add(1, Ordering::Relaxed);
        state.live_conns.fetch_add(1, Ordering::Relaxed);
        let st = Arc::clone(&state);
        conns.push(thread::spawn(move || {
            serve_conn(&st, stream);
            st.live_conns.fetch_sub(1, Ordering::Relaxed);
        }));
    }
    drop(listener);
    for h in conns {
        let _ = h.join();
    }
}

/// What remained when the server finished draining — all zeros (and
/// balanced request/response totals) on a clean exit.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct DrainReport {
    /// Request lines received over the server's lifetime.
    pub requests_total: u64,
    /// Response lines written (attempted) over the server's lifetime.
    pub responses_total: u64,
    /// Jobs left in the queue after the workers exited (always 0: workers
    /// drain the queue before exiting).
    pub queue_residual: u64,
    /// Predict requests still parked after the drain (answered with
    /// `shutting_down` during `wait`).
    pub batch_residual: u64,
    /// Connections still open after the acceptor joined (always 0).
    pub live_conns: u64,
}

impl DrainReport {
    /// True when nothing leaked: every thread joined, every accepted
    /// request was answered, nothing left queued or parked.
    pub fn clean(&self) -> bool {
        self.queue_residual == 0
            && self.batch_residual == 0
            && self.live_conns == 0
            && self.requests_total == self.responses_total
    }
}

/// A running server: its bound address plus the join handles.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually bound address (resolves `:0` port requests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Triggers a graceful shutdown (same as a `shutdown` request).
    pub fn shutdown(&self) {
        self.state.trigger_shutdown();
    }

    /// Blocks until the server has fully drained — acceptor, connection
    /// threads and workers all joined — and reports what was left. Call
    /// after [`ServerHandle::shutdown`] or once a client sent `shutdown`.
    pub fn wait(mut self) -> DrainReport {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let leftovers = self.state.batcher.drain_all();
        let batch_residual = leftovers.len() as u64;
        for p in leftovers {
            let _ = p.reply.send(Err(shutting_down()));
        }
        DrainReport {
            requests_total: self.state.metrics.requests_total.load(Ordering::Relaxed),
            responses_total: self.state.metrics.responses_total.load(Ordering::Relaxed),
            queue_residual: self.state.queue.depth() as u64,
            batch_residual,
            live_conns: self.state.live_conns.load(Ordering::Relaxed) as u64,
        }
    }

    /// p99 plan latency in seconds (from the live histogram) — convenience
    /// for embedding tests.
    pub fn plan_latency(&self) -> HistSummary {
        self.state
            .metrics
            .snapshot(
                self.state.queue.stats(),
                self.state.cache.stats(),
                self.state.live_conns.load(Ordering::Relaxed) as u64,
            )
            .endpoints
            .plan
            .latency
    }
}

/// Binds and spawns the server: acceptor plus worker pool. Returns once
/// the listener is bound — requests can be sent immediately.
pub fn spawn(cfg: ServeConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let state = Arc::new(ServerState {
        queue: BoundedQueue::new(cfg.queue_depth),
        cache: PlanCache::new(cfg.cache_capacity),
        batcher: PredictBatcher::new(),
        metrics: Metrics::default(),
        predictors: Mutex::new(BTreeMap::new()),
        shutdown: AtomicBool::new(false),
        live_conns: AtomicUsize::new(0),
        addr,
        cfg,
    });
    let workers = (0..state.cfg.workers.max(1))
        .map(|i| {
            let st = Arc::clone(&state);
            thread::Builder::new()
                .name(format!("nestwx-serve-worker-{i}"))
                .spawn(move || worker_loop(st))
        })
        .collect::<io::Result<Vec<_>>>()?;
    let st = Arc::clone(&state);
    let acceptor = thread::Builder::new()
        .name("nestwx-serve-acceptor".to_string())
        .spawn(move || acceptor_loop(st, listener))?;
    Ok(ServerHandle {
        addr,
        state,
        acceptor: Some(acceptor),
        workers,
    })
}

//! Request-scoped flight recorder.
//!
//! Every request the event loop answers gets a [`RequestSpan`]: lifecycle
//! timestamps (arrival → parse → queue wait → worker/cache work → response
//! queued → socket write-complete) measured through [`nestwx_obs::clock`]
//! and stored in a bounded per-reader [`SpanRing`]. Recording is passive —
//! response bytes are byte-identical with the recorder on or off (enforced
//! by `tests/integration.rs`) — and allocation-free on the hot path: rings
//! are pre-sized at startup and spans are `Copy`.
//!
//! The `trace` protocol endpoint drains all rings into a versioned
//! `nestwx-obs-serve-summary` envelope ([`FlightRecorder::envelope`]),
//! rendered by `nestwx obs report|top|diff` and convertible to Chrome
//! `trace_event` JSON by `nestwx_obs::serve::serve_chrome_trace`.
//!
//! Drop accounting is exact: a ring overwrite bumps the ring's local drop
//! counter under the same lock as the push, and [`SpanRing::drain`] takes
//! both the spans and that counter atomically, so concurrent `trace`
//! drains can never double-count a drop (model-checked in `tests/loom.rs`).

use crate::protocol::Endpoint;
use crate::sync::{lock_unpoisoned, AtomicU64, Mutex, Ordering};
use nestwx_obs::{SERVE_SCHEMA, SERVE_VERSION};
use serde::Serialize;
use std::collections::BTreeMap;

/// Capacity of the slow-request log ring.
const SLOW_CAP: usize = 256;

/// Most spans one `trace` envelope serializes (newest kept). The response
/// is a single protocol line that must stay under
/// [`crate::protocol::MAX_LINE_BYTES`] — clients discard oversized lines —
/// so the span arrays are capped at serialization time and the summary
/// reports how many drained spans were omitted (`spans_truncated`).
/// Worst-case span ≈ 200 bytes: (192 + 32) × 200 ≈ 45 KiB, comfortably
/// under the 64 KiB line cap with the summary block and response wrapper.
pub const ENVELOPE_SPANS_MAX: usize = 192;

/// Most slow-log entries one `trace` envelope serializes (newest kept).
pub const ENVELOPE_SLOW_MAX: usize = 32;

/// Saturates a duration into span microseconds (`u32` ≈ 71 minutes, far
/// beyond any request deadline).
pub(crate) fn dur_us(d: std::time::Duration) -> u32 {
    d.as_micros().min(u32::MAX as u128) as u32
}

/// Which lifecycle path answered the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanPath {
    /// Raw-line hot-cache hit: answered by the reader without JSON parsing.
    Hot,
    /// Answered inline by the reader (control endpoints, cache hits on the
    /// slow path, rate sheds, scenario rejections, overload responses).
    Inline,
    /// Full round-trip through the worker pool (or the predict batcher).
    Worker,
    /// Expired by the reader's deadline sweep before a worker answered.
    Deadline,
}

impl SpanPath {
    /// Wire name of the path (stable envelope vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            SpanPath::Hot => "hot",
            SpanPath::Inline => "inline",
            SpanPath::Worker => "worker",
            SpanPath::Deadline => "deadline",
        }
    }
}

/// One request's lifecycle record. All durations are microseconds,
/// saturated into `u32` (~71 minutes — far beyond any deadline cap);
/// `ts_us` is the arrival time on the server-epoch microsecond timeline.
#[derive(Debug, Clone, Copy)]
pub struct RequestSpan {
    /// Arrival time (µs since the server epoch).
    pub ts_us: u64,
    /// Endpoint that handled the request.
    pub endpoint: Endpoint,
    /// Which lifecycle path answered it.
    pub path: SpanPath,
    /// Whether the response was an `ok` response.
    pub ok: bool,
    /// Time spent parsing the request line (0 on the hot path).
    pub parse_us: u32,
    /// Queue wait: submit → worker claim (0 for inline paths).
    pub wait_us: u32,
    /// Compute/render time (worker compute, or inline render).
    pub work_us: u32,
    /// Arrival → response queued on the connection.
    pub total_us: u32,
    /// Response queued → socket write observed complete (0 if the
    /// connection died first; see `written`).
    pub write_us: u32,
    /// Whether the write-complete edge was observed before the
    /// connection went away.
    pub written: bool,
}

impl RequestSpan {
    /// A minimal span for tests and model checking.
    pub fn probe(ts_us: u64) -> Self {
        RequestSpan {
            ts_us,
            endpoint: Endpoint::Stats,
            path: SpanPath::Inline,
            ok: true,
            parse_us: 0,
            wait_us: 0,
            work_us: 0,
            total_us: 0,
            write_us: 0,
            written: true,
        }
    }
}

struct RingInner {
    buf: Vec<RequestSpan>,
    head: usize,
    dropped: u64,
}

/// Bounded span ring. One per reader thread plus one slow-request log;
/// pushes overwrite the oldest entry once full and count the drop under
/// the same lock, so push/drain interleavings keep `spans seen + drops
/// reported == pushes` exact.
pub struct SpanRing {
    cap: usize,
    inner: Mutex<RingInner>,
}

impl SpanRing {
    /// A ring holding at most `cap` spans (clamped to ≥ 1). The buffer is
    /// pre-allocated here so the request path never allocates.
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        SpanRing {
            cap,
            inner: Mutex::new(RingInner {
                buf: Vec::with_capacity(cap),
                head: 0,
                dropped: 0,
            }),
        }
    }

    /// Pushes a span, overwriting (and drop-counting) the oldest entry if
    /// the ring is full. Returns `true` if a span was dropped.
    pub fn push(&self, span: RequestSpan) -> bool {
        let mut g = lock_unpoisoned(&self.inner);
        if g.buf.len() < self.cap {
            g.buf.push(span);
            false
        } else {
            let head = g.head;
            g.buf[head] = span;
            g.head = (head + 1) % self.cap;
            g.dropped += 1;
            true
        }
    }

    /// Takes every buffered span (oldest first) together with the number
    /// of drops since the last drain, and resets both. The two are read
    /// and cleared under one lock acquisition: concurrent drains partition
    /// the spans and the drop count exactly, never duplicating either.
    pub fn drain(&self) -> (Vec<RequestSpan>, u64) {
        let mut g = lock_unpoisoned(&self.inner);
        let head = g.head;
        let mut out = Vec::with_capacity(g.buf.len());
        out.extend_from_slice(&g.buf[head..]);
        out.extend_from_slice(&g.buf[..head]);
        g.buf.clear();
        g.head = 0;
        let dropped = g.dropped;
        g.dropped = 0;
        (out, dropped)
    }

    /// Number of spans currently buffered.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.inner).buf.len()
    }

    /// Whether the ring holds no spans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Counter snapshot of the recorder, embedded in the `stats` v2 envelope.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct FlightStats {
    /// Whether recording is enabled (`NESTWX_SERVE_TRACE`).
    pub recording: bool,
    /// Number of per-reader rings.
    pub rings: u64,
    /// Capacity of each per-reader ring.
    pub ring_capacity: u64,
    /// Spans recorded since startup (cumulative, survives drains).
    pub recorded: u64,
    /// Spans dropped to ring overwrites since startup (cumulative).
    pub dropped: u64,
    /// Spans above the slow threshold since startup (cumulative).
    pub slow_total: u64,
    /// Slow-log latency threshold in µs (0 = slow log off).
    pub slow_threshold_us: u64,
}

/// Everything one drain produced.
pub struct Drained {
    /// All buffered spans across readers, ordered by arrival time.
    pub spans: Vec<RequestSpan>,
    /// The slow-request log (spans whose total latency crossed the
    /// threshold), oldest first.
    pub slow: Vec<RequestSpan>,
    /// Ring drops since the previous drain.
    pub dropped: u64,
}

/// The serve-side flight recorder: per-reader span rings, a slow-request
/// log, and cumulative counters. Shared via `ServerState`; readers record
/// into their own ring (index = reader id) so the hot path contends only
/// with `trace` drains.
pub struct FlightRecorder {
    enabled: bool,
    slow_us: u64,
    ring_cap: usize,
    rings: Vec<SpanRing>,
    slow: SpanRing,
    recorded: AtomicU64,
    dropped_total: AtomicU64,
    slow_total: AtomicU64,
}

impl FlightRecorder {
    /// A recorder with one ring of `ring_cap` spans per reader. `slow_us`
    /// of 0 disables the slow-request log.
    pub fn new(enabled: bool, readers: usize, ring_cap: usize, slow_us: u64) -> Self {
        let readers = readers.max(1);
        FlightRecorder {
            enabled,
            slow_us,
            ring_cap: ring_cap.max(1),
            rings: (0..readers).map(|_| SpanRing::new(ring_cap)).collect(),
            slow: SpanRing::new(SLOW_CAP),
            recorded: AtomicU64::new(0),
            dropped_total: AtomicU64::new(0),
            slow_total: AtomicU64::new(0),
        }
    }

    /// Whether spans should be built at all (checked before any clock
    /// reads on the request path).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records one finished span into reader `reader`'s ring. No-op when
    /// recording is disabled.
    pub fn record(&self, reader: usize, span: RequestSpan) {
        if !self.enabled {
            return;
        }
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let ring = &self.rings[reader % self.rings.len()];
        if ring.push(span) {
            self.dropped_total.fetch_add(1, Ordering::Relaxed);
        }
        if self.slow_us > 0 && u64::from(span.total_us) >= self.slow_us {
            self.slow_total.fetch_add(1, Ordering::Relaxed);
            self.slow.push(span);
        }
    }

    /// Drains every reader ring (merged oldest-first) and the slow log.
    pub fn drain(&self) -> Drained {
        let mut spans = Vec::new();
        let mut dropped = 0u64;
        for ring in &self.rings {
            let (mut part, d) = ring.drain();
            spans.append(&mut part);
            dropped += d;
        }
        spans.sort_by_key(|s| s.ts_us);
        let (slow, _) = self.slow.drain();
        Drained {
            spans,
            slow,
            dropped,
        }
    }

    /// Cumulative counter snapshot for the `stats` envelope.
    pub fn stats(&self) -> FlightStats {
        FlightStats {
            recording: self.enabled,
            rings: self.rings.len() as u64,
            ring_capacity: self.ring_cap as u64,
            recorded: self.recorded.load(Ordering::Relaxed),
            dropped: self.dropped_total.load(Ordering::Relaxed),
            slow_total: self.slow_total.load(Ordering::Relaxed),
            slow_threshold_us: self.slow_us,
        }
    }

    /// Drains the recorder into the versioned `nestwx-obs-serve-summary`
    /// envelope served by the `trace` endpoint.
    pub fn envelope(&self) -> TraceEnvelope {
        let d = self.drain();
        let mut by_path = PathCounts {
            hot: 0,
            inline: 0,
            worker: 0,
            deadline: 0,
        };
        let mut by_op: BTreeMap<&'static str, u64> = BTreeMap::new();
        for e in Endpoint::ALL {
            by_op.insert(e.name(), 0);
        }
        for s in &d.spans {
            match s.path {
                SpanPath::Hot => by_path.hot += 1,
                SpanPath::Inline => by_path.inline += 1,
                SpanPath::Worker => by_path.worker += 1,
                SpanPath::Deadline => by_path.deadline += 1,
            }
            if let Some(n) = by_op.get_mut(s.endpoint.name()) {
                *n += 1;
            }
        }
        let stats = self.stats();
        // The envelope is one protocol line: serialize only the newest
        // spans so the response always fits MAX_LINE_BYTES, and say how
        // many were cut. The by_path/by_op aggregates above still cover
        // every drained span — only the sample arrays are bounded.
        let spans_cut = d.spans.len().saturating_sub(ENVELOPE_SPANS_MAX);
        let slow_cut = d.slow.len().saturating_sub(ENVELOPE_SLOW_MAX);
        TraceEnvelope {
            schema: SERVE_SCHEMA,
            version: SERVE_VERSION,
            summary: TraceSummary {
                recording: stats.recording,
                readers: stats.rings,
                ring_capacity: stats.ring_capacity,
                drained: d.spans.len() as u64,
                dropped: d.dropped,
                recorded_total: stats.recorded,
                dropped_total: stats.dropped,
                slow_total: stats.slow_total,
                slow_threshold_us: stats.slow_threshold_us,
                spans_truncated: spans_cut as u64,
                slow_truncated: slow_cut as u64,
                by_path,
                by_op,
            },
            spans: d.spans[spans_cut..]
                .iter()
                .map(SpanOut::from_span)
                .collect(),
            slow: d.slow[slow_cut..].iter().map(SpanOut::from_span).collect(),
        }
    }
}

/// Span counts per lifecycle path in one drain.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PathCounts {
    /// Raw-line hot-cache hits.
    pub hot: u64,
    /// Inline reader responses.
    pub inline: u64,
    /// Worker round-trips.
    pub worker: u64,
    /// Deadline-sweep expiries.
    pub deadline: u64,
}

/// Aggregate block of the serve-summary envelope.
#[derive(Debug, Clone, Serialize)]
pub struct TraceSummary {
    /// Whether recording is enabled.
    pub recording: bool,
    /// Number of per-reader rings.
    pub readers: u64,
    /// Capacity of each per-reader ring.
    pub ring_capacity: u64,
    /// Spans returned by this drain.
    pub drained: u64,
    /// Ring drops since the previous drain.
    pub dropped: u64,
    /// Cumulative spans recorded since startup.
    pub recorded_total: u64,
    /// Cumulative ring drops since startup.
    pub dropped_total: u64,
    /// Cumulative slow-threshold crossings since startup.
    pub slow_total: u64,
    /// Slow-log threshold in µs (0 = off).
    pub slow_threshold_us: u64,
    /// Drained spans omitted from the `spans` array to keep the response
    /// under the protocol line cap (the oldest are cut; `by_path`/`by_op`
    /// still count every drained span).
    pub spans_truncated: u64,
    /// Slow-log entries omitted from the `slow` array, same rule.
    pub slow_truncated: u64,
    /// Drained span counts by lifecycle path.
    pub by_path: PathCounts,
    /// Drained span counts by endpoint.
    pub by_op: BTreeMap<&'static str, u64>,
}

/// One span as serialized into the envelope.
#[derive(Debug, Clone, Serialize)]
pub struct SpanOut {
    /// Arrival time (µs since server epoch).
    pub ts_us: u64,
    /// Endpoint name.
    pub op: &'static str,
    /// Lifecycle path name.
    pub path: &'static str,
    /// Whether the response was `ok`.
    pub ok: bool,
    /// Parse time (µs).
    pub parse_us: u32,
    /// Queue wait (µs).
    pub wait_us: u32,
    /// Compute/render time (µs).
    pub work_us: u32,
    /// Arrival → response queued (µs).
    pub total_us: u32,
    /// Response queued → write complete (µs).
    pub write_us: u32,
    /// Whether write-complete was observed.
    pub written: bool,
}

impl SpanOut {
    fn from_span(s: &RequestSpan) -> Self {
        SpanOut {
            ts_us: s.ts_us,
            op: s.endpoint.name(),
            path: s.path.name(),
            ok: s.ok,
            parse_us: s.parse_us,
            wait_us: s.wait_us,
            work_us: s.work_us,
            total_us: s.total_us,
            write_us: s.write_us,
            written: s.written,
        }
    }
}

/// The full `trace` response document (schema `nestwx-obs-serve-summary`).
#[derive(Debug, Clone, Serialize)]
pub struct TraceEnvelope {
    /// Always [`SERVE_SCHEMA`].
    pub schema: &'static str,
    /// Always [`SERVE_VERSION`].
    pub version: u64,
    /// Aggregate counters for this drain.
    pub summary: TraceSummary,
    /// Drained spans, ordered by arrival time — at most
    /// [`ENVELOPE_SPANS_MAX`], newest kept (see `summary.spans_truncated`).
    pub spans: Vec<SpanOut>,
    /// Slow-request log entries — at most [`ENVELOPE_SLOW_MAX`], newest
    /// kept (see `summary.slow_truncated`).
    pub slow: Vec<SpanOut>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraps_and_counts_drops() {
        let ring = SpanRing::new(3);
        for ts in 0..3 {
            assert!(!ring.push(RequestSpan::probe(ts)));
        }
        // Fourth push evicts ts=0.
        assert!(ring.push(RequestSpan::probe(3)));
        let (spans, dropped) = ring.drain();
        assert_eq!(dropped, 1);
        let ts: Vec<u64> = spans.iter().map(|s| s.ts_us).collect();
        assert_eq!(ts, vec![1, 2, 3]);
        // Drain resets both the buffer and the drop counter.
        let (spans, dropped) = ring.drain();
        assert!(spans.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn ring_preserves_arrival_order_across_wrap() {
        let ring = SpanRing::new(4);
        for ts in 0..10 {
            ring.push(RequestSpan::probe(ts));
        }
        let (spans, dropped) = ring.drain();
        assert_eq!(dropped, 6);
        let ts: Vec<u64> = spans.iter().map(|s| s.ts_us).collect();
        assert_eq!(ts, vec![6, 7, 8, 9]);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = FlightRecorder::new(false, 2, 16, 0);
        rec.record(0, RequestSpan::probe(1));
        assert_eq!(rec.stats().recorded, 0);
        assert!(rec.drain().spans.is_empty());
    }

    #[test]
    fn recorder_merges_rings_in_arrival_order() {
        let rec = FlightRecorder::new(true, 2, 16, 0);
        rec.record(0, RequestSpan::probe(5));
        rec.record(1, RequestSpan::probe(2));
        rec.record(0, RequestSpan::probe(9));
        let d = rec.drain();
        let ts: Vec<u64> = d.spans.iter().map(|s| s.ts_us).collect();
        assert_eq!(ts, vec![2, 5, 9]);
        assert_eq!(d.dropped, 0);
        let stats = rec.stats();
        assert_eq!(stats.recorded, 3);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn slow_log_captures_threshold_crossers() {
        let rec = FlightRecorder::new(true, 1, 16, 100);
        let mut fast = RequestSpan::probe(1);
        fast.total_us = 99;
        let mut slow = RequestSpan::probe(2);
        slow.total_us = 100;
        rec.record(0, fast);
        rec.record(0, slow);
        let d = rec.drain();
        assert_eq!(d.spans.len(), 2);
        assert_eq!(d.slow.len(), 1);
        assert_eq!(d.slow[0].ts_us, 2);
        assert_eq!(rec.stats().slow_total, 1);
    }

    #[test]
    fn envelope_counts_paths_and_ops() {
        let rec = FlightRecorder::new(true, 1, 16, 0);
        let mut hot = RequestSpan::probe(1);
        hot.path = SpanPath::Hot;
        hot.endpoint = Endpoint::Plan;
        let mut worker = RequestSpan::probe(2);
        worker.path = SpanPath::Worker;
        worker.endpoint = Endpoint::Plan;
        rec.record(0, hot);
        rec.record(0, worker);
        let env = rec.envelope();
        assert_eq!(env.schema, nestwx_obs::SERVE_SCHEMA);
        assert_eq!(env.version, nestwx_obs::SERVE_VERSION);
        assert_eq!(env.summary.drained, 2);
        assert_eq!(env.summary.by_path.hot, 1);
        assert_eq!(env.summary.by_path.worker, 1);
        assert_eq!(env.summary.by_op["plan"], 2);
        assert_eq!(env.summary.by_op["predict"], 0);
        assert_eq!(env.spans.len(), 2);
        assert_eq!(env.spans[0].path, "hot");
        // A second drain starts empty but keeps cumulative counters.
        let env = rec.envelope();
        assert_eq!(env.summary.drained, 0);
        assert_eq!(env.summary.recorded_total, 2);
    }

    #[test]
    fn envelope_truncates_to_newest_and_counts_the_cut() {
        let rec = FlightRecorder::new(true, 1, ENVELOPE_SPANS_MAX + 50, 1);
        for ts in 0..(ENVELOPE_SPANS_MAX as u64 + 50) {
            let mut s = RequestSpan::probe(ts);
            s.total_us = 1; // everything crosses the slow threshold too
            rec.record(0, s);
        }
        let env = rec.envelope();
        assert_eq!(env.summary.drained, ENVELOPE_SPANS_MAX as u64 + 50);
        assert_eq!(env.summary.spans_truncated, 50);
        assert_eq!(env.spans.len(), ENVELOPE_SPANS_MAX);
        // The newest spans survive the cut.
        assert_eq!(env.spans[0].ts_us, 50);
        assert_eq!(
            env.spans.last().unwrap().ts_us,
            ENVELOPE_SPANS_MAX as u64 + 49
        );
        // Slow log: all 242 spans crossed the threshold (under SLOW_CAP),
        // and the envelope keeps the newest ENVELOPE_SLOW_MAX of them.
        assert_eq!(env.slow.len(), ENVELOPE_SLOW_MAX);
        assert_eq!(
            env.summary.slow_truncated,
            (ENVELOPE_SPANS_MAX + 50 - ENVELOPE_SLOW_MAX) as u64
        );
        // Aggregates still cover every drained span.
        assert_eq!(env.summary.by_path.inline, ENVELOPE_SPANS_MAX as u64 + 50);
    }

    /// The `trace` response is one protocol line; clients drop oversized
    /// lines on the floor, so a worst-case envelope must stay under
    /// [`crate::protocol::MAX_LINE_BYTES`] with room for the response
    /// wrapper.
    #[test]
    fn worst_case_envelope_fits_one_protocol_line() {
        let rec = FlightRecorder::new(true, 4, 4096, 1);
        for i in 0..(4 * 4096u64 + SLOW_CAP as u64) {
            let span = RequestSpan {
                ts_us: u64::MAX,
                endpoint: Endpoint::Compare,
                path: SpanPath::Deadline,
                ok: false,
                parse_us: u32::MAX,
                wait_us: u32::MAX,
                work_us: u32::MAX,
                total_us: u32::MAX,
                write_us: u32::MAX,
                written: false,
            };
            rec.record((i % 4) as usize, span);
        }
        let json = serde_json::to_string(&rec.envelope()).expect("serialize");
        assert!(
            json.len() + 1024 < crate::protocol::MAX_LINE_BYTES,
            "worst-case trace envelope is {} bytes — too close to the {}-byte line cap",
            json.len(),
            crate::protocol::MAX_LINE_BYTES
        );
    }
}

//! Synchronization primitives for the serve crate, switchable to the
//! `loom` shim under `--cfg loom` (the tokio pattern: every module imports
//! `Mutex`/`Condvar`/atomics from here, never from `std::sync` directly,
//! so the loom model-checking suite in `tests/loom.rs` exercises the
//! exact production types).
//!
//! This file is also the crate's **poisoning policy** (lint rule NW-S002):
//! the only permitted way to lock a mutex is [`lock_unpoisoned`], which
//! continues through poison instead of panicking. All serve-side mutexes
//! guard monitoring or cache state whose invariants hold at every await
//! point of the critical sections (counters bumped atomically, maps
//! mutated in single calls), so a panic elsewhere never leaves them
//! logically corrupt — propagating the poison would only turn one failed
//! request into a dead server.

#[cfg(not(loom))]
pub use std::sync::{Condvar, Mutex, MutexGuard};

#[cfg(loom)]
pub use loom::sync::{Condvar, Mutex, MutexGuard};

#[cfg(not(loom))]
pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

#[cfg(loom)]
pub use loom::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Locks `m`, continuing through poisoning: a thread that panicked while
/// holding the lock does not take the server down with it. See the module
/// docs for why this is sound for every mutex in this crate.
pub fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_unpoisoned_survives_a_poisoned_mutex() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*lock_unpoisoned(&m), 7, "value still readable");
        *lock_unpoisoned(&m) = 8;
        assert_eq!(*lock_unpoisoned(&m), 8);
    }
}

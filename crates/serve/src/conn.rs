//! Per-connection state for the nonblocking event loop.
//!
//! A [`Conn`] owns one registered stream plus everything needed to speak
//! the pipelined line protocol over it without ever blocking:
//!
//! - an **input buffer** that splits complete request lines out of
//!   whatever bytes the socket had ready, with the same oversized-line
//!   skip discipline as [`crate::protocol::LineReader`] (a hostile line
//!   never buffers past the cap);
//! - a **slot queue** preserving response order under pipelining: each
//!   request reserves a slot, answered either immediately
//!   ([`Slot::Done`]) or later by a worker completion filling its
//!   sequence number ([`Slot::Waiting`]) — responses leave strictly in
//!   request order regardless of completion order;
//! - an **outbox** with a partial-write offset, flushed only as far as
//!   the socket will take without blocking, capped so a slow consumer is
//!   disconnected instead of ballooning server memory;
//! - **idle and lifetime deadlines** (plain `Instant` comparisons against
//!   the pass timestamp the event loop already holds).
//!
//! The type is generic over the stream so the whole state machine is unit
//! tested against in-memory scripted streams; the event loop instantiates
//! it with `TcpStream`.

use crate::flight::RequestSpan;
use crate::protocol::Line;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

/// Cap on buffered finished-but-unwritten flight spans per connection; a
/// connection that never drains its output cannot grow the span queue
/// without bound (the oldest span is handed back for immediate recording
/// with `written: false`).
const MAX_PENDING_SPANS: usize = 8 * 1024;

/// Outbox bytes beyond which a non-draining peer is declared dead. Large
/// enough for thousands of queued responses, small enough that one stuck
/// client cannot hold megabytes per connection indefinitely.
pub const MAX_OUTBOX_BYTES: usize = 4 * 1024 * 1024;

/// One entry in a connection's in-order response queue.
pub enum Slot {
    /// Response ready to serialize (no trailing newline).
    Done(String),
    /// Awaiting a worker completion carrying this sequence number.
    Waiting(u64),
}

/// Why a connection should be dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gone {
    /// Peer closed and nothing remains to deliver.
    Finished,
    /// I/O error (reset, broken pipe) — undeliverable responses are
    /// counted by the caller, not retried.
    Dead,
    /// Outbox exceeded [`MAX_OUTBOX_BYTES`] without draining.
    SlowConsumer,
}

/// Per-connection state. See the module docs for the moving parts.
pub struct Conn<S> {
    /// The registered nonblocking stream.
    pub stream: S,
    /// Connection number within the owning reader (completion routing key).
    pub id: u64,
    inbuf: Vec<u8>,
    /// Searched prefix of `inbuf` known to hold no newline.
    scanned: usize,
    skipping: bool,
    max_line: usize,
    outbox: Vec<u8>,
    sent: usize,
    slots: VecDeque<Slot>,
    next_seq: u64,
    /// Responses filled but not yet moved to the outbox + outbox residue.
    read_closed: bool,
    dead: bool,
    /// Absolute idle deadline (refreshed on any read/write progress).
    pub idle_deadline: Option<Instant>,
    /// Absolute connection-lifetime deadline (fixed at accept).
    pub life_deadline: Option<Instant>,
    idle_cap: Option<Duration>,
    /// Finished flight spans waiting for their write-complete edge (the
    /// next moment the outbox fully drains). Empty when recording is off.
    pending_spans: VecDeque<RequestSpan>,
}

impl<S: Read + Write> Conn<S> {
    /// Wraps an accepted stream. `now` is the accept timestamp; `idle` and
    /// `lifetime` of zero mean uncapped.
    pub fn new(
        stream: S,
        id: u64,
        max_line: usize,
        now: Instant,
        idle: Duration,
        lifetime: Duration,
    ) -> Conn<S> {
        let idle_cap = (idle > Duration::ZERO).then_some(idle);
        Conn {
            stream,
            id,
            inbuf: Vec::new(),
            scanned: 0,
            skipping: false,
            max_line,
            outbox: Vec::new(),
            sent: 0,
            slots: VecDeque::new(),
            next_seq: 0,
            read_closed: false,
            dead: false,
            idle_deadline: idle_cap.map(|d| now + d),
            life_deadline: (lifetime > Duration::ZERO).then_some(now + lifetime),
            idle_cap,
            pending_spans: VecDeque::new(),
        }
    }

    /// Queues a finished span until this connection's output next drains
    /// (its write-complete edge). Returns the evicted oldest span if the
    /// bounded queue was full — the caller records it immediately,
    /// unwritten.
    pub fn push_span(&mut self, span: RequestSpan) -> Option<RequestSpan> {
        let evicted = if self.pending_spans.len() >= MAX_PENDING_SPANS {
            self.pending_spans.pop_front()
        } else {
            None
        };
        self.pending_spans.push_back(span);
        evicted
    }

    /// Whether any spans await their write-complete edge.
    pub fn has_pending_spans(&self) -> bool {
        !self.pending_spans.is_empty()
    }

    /// Takes every span awaiting write-complete (oldest first).
    pub fn take_pending_spans(&mut self) -> std::collections::vec_deque::Drain<'_, RequestSpan> {
        self.pending_spans.drain(..)
    }

    /// Pulls whatever the socket has ready into the input buffer without
    /// blocking. Returns `true` when any bytes (or EOF) arrived.
    pub fn fill(&mut self, now: Instant) -> bool {
        let mut progressed = false;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.read_closed = true;
                    progressed = true;
                    break;
                }
                Ok(n) => {
                    self.inbuf.extend_from_slice(&chunk[..n]);
                    progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if progressed {
            self.touch(now);
        }
        progressed
    }

    /// Pops the next complete request line out of the input buffer, or
    /// `None` when more bytes are needed. Oversized lines surface exactly
    /// once with the discarded byte count, then resync at the next newline.
    pub fn next_line(&mut self) -> Option<Line> {
        if self.skipping {
            if let Some(i) = self.inbuf.iter().position(|&b| b == b'\n') {
                self.inbuf.drain(..=i);
                self.scanned = 0;
                self.skipping = false;
            } else {
                self.inbuf.clear();
                self.scanned = 0;
                return None;
            }
        }
        if let Some(off) = self.inbuf[self.scanned..].iter().position(|&b| b == b'\n') {
            let i = self.scanned + off;
            self.scanned = 0;
            if i > self.max_line {
                self.inbuf.drain(..=i);
                return Some(Line::Oversized { discarded: i });
            }
            let line: Vec<u8> = self.inbuf.drain(..=i).collect();
            return Some(Line::Data(String::from_utf8_lossy(&line[..i]).into_owned()));
        }
        self.scanned = self.inbuf.len();
        if self.inbuf.len() > self.max_line {
            let discarded = self.inbuf.len();
            self.inbuf.clear();
            self.scanned = 0;
            self.skipping = true;
            return Some(Line::Oversized { discarded });
        }
        if self.read_closed && !self.inbuf.is_empty() {
            // Final unterminated line: accept it, as LineReader does.
            let text = String::from_utf8_lossy(&self.inbuf).into_owned();
            self.inbuf.clear();
            self.scanned = 0;
            return Some(Line::Data(text));
        }
        None
    }

    /// Reserves the next in-order response slot for a queued job and
    /// returns its sequence number.
    pub fn reserve_slot(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.slots.push_back(Slot::Waiting(seq));
        seq
    }

    /// Queues an immediately-available response in request order.
    pub fn push_done(&mut self, line: String) {
        self.next_seq += 1;
        self.slots.push_back(Slot::Done(line));
    }

    /// Fills the waiting slot with sequence number `seq`. Returns `false`
    /// when no such slot exists (already filled, or never reserved).
    pub fn fill_slot(&mut self, seq: u64, line: String) -> bool {
        for slot in self.slots.iter_mut() {
            if matches!(slot, Slot::Waiting(s) if *s == seq) {
                *slot = Slot::Done(line);
                return true;
            }
        }
        false
    }

    /// Waiting (unanswered) slots on this connection.
    pub fn waiting(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s, Slot::Waiting(_)))
            .count()
    }

    /// True when nothing is queued or buffered for the peer.
    pub fn output_drained(&self) -> bool {
        self.slots.is_empty() && self.sent == self.outbox.len()
    }

    /// Moves leading `Done` slots into the outbox and writes as much as
    /// the socket accepts without blocking. Returns the number of
    /// responses that left the slot queue this call.
    pub fn flush(&mut self, now: Instant) -> usize {
        let mut released = 0;
        while let Some(Slot::Done(_)) = self.slots.front() {
            let Some(Slot::Done(line)) = self.slots.pop_front() else {
                break;
            };
            self.outbox.extend_from_slice(line.as_bytes());
            self.outbox.push(b'\n');
            released += 1;
        }
        if self.sent < self.outbox.len() && !self.dead {
            let mut progressed = false;
            loop {
                match self.stream.write(&self.outbox[self.sent..]) {
                    Ok(0) => {
                        self.dead = true;
                        break;
                    }
                    Ok(n) => {
                        self.sent += n;
                        progressed = true;
                        if self.sent == self.outbox.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.dead = true;
                        break;
                    }
                }
            }
            if progressed {
                self.touch(now);
            }
        }
        if self.sent == self.outbox.len() {
            self.outbox.clear();
            self.sent = 0;
        } else if self.sent > 64 * 1024 {
            self.outbox.drain(..self.sent);
            self.sent = 0;
        }
        released
    }

    /// Checks whether the connection should be dropped, after a flush.
    pub fn gone(&self, now: Instant) -> Option<Gone> {
        if self.dead {
            return Some(Gone::Dead);
        }
        if self.outbox.len() - self.sent > MAX_OUTBOX_BYTES {
            return Some(Gone::SlowConsumer);
        }
        if self.read_closed && self.output_drained() && self.inbuf.is_empty() {
            return Some(Gone::Finished);
        }
        // Idle/lifetime caps never cut off a connection with answers still
        // owed or queued — sweeps only reap quiescent connections.
        if self.output_drained() {
            if let Some(d) = self.life_deadline {
                if now >= d {
                    return Some(Gone::Finished);
                }
            }
            if let Some(d) = self.idle_deadline {
                if now >= d {
                    return Some(Gone::Finished);
                }
            }
        }
        None
    }

    /// True once the peer closed its write side.
    pub fn read_closed(&self) -> bool {
        self.read_closed
    }

    /// Marks the connection dead (caller saw an unrecoverable condition).
    pub fn kill(&mut self) {
        self.dead = true;
    }

    fn touch(&mut self, now: Instant) {
        if let Some(cap) = self.idle_cap {
            self.idle_deadline = Some(now + cap);
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    /// Scripted stream: reads hand out queued chunks then WouldBlock (or
    /// EOF), writes accept up to `write_budget` bytes per call.
    struct Script {
        reads: VecDeque<Vec<u8>>,
        eof: bool,
        written: Vec<u8>,
        write_budget: usize,
    }

    impl Script {
        fn new() -> Script {
            Script {
                reads: VecDeque::new(),
                eof: false,
                written: Vec::new(),
                write_budget: usize::MAX,
            }
        }
    }

    impl Read for Script {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.reads.pop_front() {
                Some(chunk) => {
                    let n = chunk.len().min(buf.len());
                    buf[..n].copy_from_slice(&chunk[..n]);
                    if n < chunk.len() {
                        self.reads.push_front(chunk[n..].to_vec());
                    }
                    Ok(n)
                }
                None if self.eof => Ok(0),
                None => Err(io::ErrorKind::WouldBlock.into()),
            }
        }
    }

    impl Write for Script {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.write_budget == 0 {
                return Err(io::ErrorKind::WouldBlock.into());
            }
            let n = buf.len().min(self.write_budget);
            self.write_budget -= n;
            self.written.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn conn(s: Script) -> Conn<Script> {
        Conn::new(s, 0, 64, Instant::now(), Duration::ZERO, Duration::ZERO)
    }

    #[test]
    fn splits_lines_across_partial_reads() {
        let mut s = Script::new();
        s.reads.push_back(b"hel".to_vec());
        s.reads.push_back(b"lo\nwor".to_vec());
        let mut c = conn(s);
        let now = Instant::now();
        c.fill(now);
        assert_eq!(c.next_line(), Some(Line::Data("hello".into())));
        assert_eq!(c.next_line(), None, "second line incomplete");
        c.stream.reads.push_back(b"ld\n".to_vec());
        c.fill(now);
        assert_eq!(c.next_line(), Some(Line::Data("world".into())));
        assert_eq!(c.next_line(), None);
    }

    #[test]
    fn oversized_line_reported_once_then_resyncs() {
        let mut s = Script::new();
        let mut big = vec![b'x'; 200];
        big.push(b'\n');
        big.extend_from_slice(b"ok\n");
        s.reads.push_back(big);
        let mut c = conn(s);
        c.fill(Instant::now());
        assert!(matches!(c.next_line(), Some(Line::Oversized { .. })));
        assert_eq!(c.next_line(), Some(Line::Data("ok".into())));
        assert_eq!(c.next_line(), None);
    }

    #[test]
    fn unterminated_final_line_accepted_at_eof() {
        let mut s = Script::new();
        s.reads.push_back(b"tail".to_vec());
        s.eof = true;
        let mut c = conn(s);
        c.fill(Instant::now());
        assert!(c.read_closed());
        assert_eq!(c.next_line(), Some(Line::Data("tail".into())));
        assert_eq!(c.next_line(), None);
    }

    #[test]
    fn pipelined_responses_leave_in_request_order() {
        let mut c = conn(Script::new());
        let now = Instant::now();
        let s0 = c.reserve_slot();
        c.push_done("r1".into());
        let s2 = c.reserve_slot();
        // Out-of-order completions: seq 2 first, then seq 0.
        assert!(c.fill_slot(s2, "r2".into()));
        assert_eq!(c.flush(now), 0, "head still waiting — nothing leaves");
        assert!(c.fill_slot(s0, "r0".into()));
        assert_eq!(c.flush(now), 3);
        assert_eq!(c.stream.written, b"r0\nr1\nr2\n");
        assert!(c.output_drained());
        assert!(!c.fill_slot(s0, "again".into()), "slot already gone");
    }

    #[test]
    fn partial_writes_resume_where_they_stopped() {
        let mut s = Script::new();
        s.write_budget = 4;
        let mut c = conn(s);
        let now = Instant::now();
        c.push_done("abcdefgh".into());
        c.flush(now);
        assert_eq!(c.stream.written, b"abcd");
        assert!(!c.output_drained());
        c.stream.write_budget = usize::MAX;
        c.flush(now);
        assert_eq!(c.stream.written, b"abcdefgh\n");
        assert!(c.output_drained());
    }

    #[test]
    fn lifecycle_finished_dead_and_slow_consumer() {
        // Finished: EOF with everything delivered.
        let mut s = Script::new();
        s.eof = true;
        let mut c = conn(s);
        let now = Instant::now();
        c.fill(now);
        assert_eq!(c.gone(now), Some(Gone::Finished));
        // Not finished while a response is still owed.
        let mut s = Script::new();
        s.eof = true;
        let mut c = conn(s);
        c.fill(now);
        let seq = c.reserve_slot();
        assert_eq!(c.gone(now), None);
        c.fill_slot(seq, "r".into());
        c.flush(now);
        assert_eq!(c.gone(now), Some(Gone::Finished));
        // Slow consumer: outbox past the cap with writes blocked.
        let mut s = Script::new();
        s.write_budget = 0;
        let mut c = conn(s);
        c.push_done("x".repeat(MAX_OUTBOX_BYTES + 2));
        c.flush(now);
        assert_eq!(c.gone(now), Some(Gone::SlowConsumer));
    }

    #[test]
    fn idle_and_lifetime_deadlines_reap_quiescent_conns_only() {
        let t0 = Instant::now();
        let mut c = Conn::new(
            Script::new(),
            0,
            64,
            t0,
            Duration::from_millis(10),
            Duration::from_millis(50),
        );
        assert_eq!(c.gone(t0), None);
        let idle = t0 + Duration::from_millis(11);
        assert_eq!(c.gone(idle), Some(Gone::Finished), "idle cap hit");
        // Activity refreshes the idle deadline.
        c.stream.reads.push_back(b"ping\n".to_vec());
        c.fill(idle);
        assert_eq!(c.gone(idle), None);
        // A waiting slot shields the connection from both caps.
        let late = t0 + Duration::from_millis(60);
        let seq = c.reserve_slot();
        assert_eq!(c.gone(late), None, "answer still owed");
        c.fill_slot(seq, "r".into());
        c.flush(late);
        assert_eq!(c.gone(late), Some(Gone::Finished), "lifetime cap hit");
    }
}

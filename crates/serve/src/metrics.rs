//! Live server metrics: per-endpoint counters and latency histograms.
//!
//! Latency goes into the shared [`LogHistogram`] from `nestwx-obs`, so the
//! `stats` endpoint reports the same p50/p90/p99/max summary shape as the
//! simulator's step metrics. Counters are relaxed atomics — `stats` is a
//! monitoring snapshot, not a transaction.

use crate::cache::CacheStats;
use crate::flight::FlightStats;
use crate::protocol::Endpoint;
use crate::sync::{lock_unpoisoned, AtomicU64, Mutex, Ordering};
use nestwx_obs::{HistSummary, LogHistogram};
use serde::Serialize;
use std::time::Duration;

/// `schema` tag of the unified `stats` result envelope.
pub const STATS_SCHEMA: &str = "nestwx-serve-stats";
/// Current version of the `stats` envelope. Version 1 was the untagged
/// PR 4–7 document; version 2 adds the schema/version tags and the
/// flight-recorder block (all pre-v2 paths are unchanged).
pub const STATS_VERSION: u64 = 2;

/// Counters plus a latency histogram for one endpoint.
#[derive(Default)]
pub struct EndpointMetrics {
    requests: AtomicU64,
    errors: AtomicU64,
    latency: Mutex<LogHistogram>,
}

impl EndpointMetrics {
    /// Records one completed request (error responses count too — clients
    /// wait for them just the same).
    pub fn record(&self, latency: Duration, ok: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        lock_unpoisoned(&self.latency).record_duration(latency);
    }

    fn snapshot(&self) -> EndpointStats {
        EndpointStats {
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            latency: lock_unpoisoned(&self.latency).summary(),
        }
    }
}

/// All server-side counters. One instance per server, shared by every
/// connection and worker thread.
#[derive(Default)]
pub struct Metrics {
    /// Connections accepted and served.
    pub accepted_conns: AtomicU64,
    /// Connections refused because the connection cap was reached.
    pub rejected_conns: AtomicU64,
    /// Request lines received (including ones that failed to parse).
    pub requests_total: AtomicU64,
    /// Response lines written (every received line gets exactly one).
    pub responses_total: AtomicU64,
    /// Lines answered with malformed/oversized/unsupported_version/bad_request.
    pub protocol_errors: AtomicU64,
    /// Predict batches executed.
    pub batches: AtomicU64,
    /// Predict requests served through batches.
    pub batched_requests: AtomicU64,
    /// Largest batch so far.
    pub max_batch: AtomicU64,
    /// Requests answered `deadline_exceeded` before a worker served them.
    pub deadline_expired: AtomicU64,
    /// Requests answered `rate_limited` by the per-client token bucket.
    pub rate_shed: AtomicU64,
    predict: EndpointMetrics,
    plan: EndpointMetrics,
    compare: EndpointMetrics,
    execute: EndpointMetrics,
    stats: EndpointMetrics,
    trace: EndpointMetrics,
    shutdown: EndpointMetrics,
}

impl Metrics {
    /// The per-endpoint metrics cell.
    pub fn endpoint(&self, e: Endpoint) -> &EndpointMetrics {
        match e {
            Endpoint::Predict => &self.predict,
            Endpoint::Plan => &self.plan,
            Endpoint::Compare => &self.compare,
            Endpoint::Execute => &self.execute,
            Endpoint::Stats => &self.stats,
            Endpoint::Trace => &self.trace,
            Endpoint::Shutdown => &self.shutdown,
        }
    }

    /// Records one executed predict batch of the given size.
    pub fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(size as u64, Ordering::Relaxed);
        self.max_batch.fetch_max(size as u64, Ordering::Relaxed);
    }

    /// Builds the full `stats` result (queue/cache/conn/disk figures are
    /// owned by other components and passed in, as are the limit gauges).
    pub fn snapshot(
        &self,
        queue: QueueStats,
        cache: CacheStats,
        live_conns: u64,
        gauges: LimitGauges,
        disk: crate::disk::DiskStats,
        flight: FlightStats,
    ) -> StatsSnapshot {
        StatsSnapshot {
            schema: STATS_SCHEMA,
            version: STATS_VERSION,
            server: ServerStats {
                accepted_conns: self.accepted_conns.load(Ordering::Relaxed),
                rejected_conns: self.rejected_conns.load(Ordering::Relaxed),
                live_conns,
                requests_total: self.requests_total.load(Ordering::Relaxed),
                responses_total: self.responses_total.load(Ordering::Relaxed),
                protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            },
            queue,
            cache,
            disk,
            batch: BatchStats {
                batches: self.batches.load(Ordering::Relaxed),
                batched_requests: self.batched_requests.load(Ordering::Relaxed),
                max_batch: self.max_batch.load(Ordering::Relaxed),
            },
            limits: LimitStats {
                deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
                rate_shed: self.rate_shed.load(Ordering::Relaxed),
                clients_tracked: gauges.clients_tracked,
                rate_evictions: gauges.rate_evictions,
                predictors_cached: gauges.predictors_cached,
                predictor_evictions: gauges.predictor_evictions,
            },
            flight,
            endpoints: EndpointsStats {
                predict: self.predict.snapshot(),
                plan: self.plan.snapshot(),
                compare: self.compare.snapshot(),
                execute: self.execute.snapshot(),
                stats: self.stats.snapshot(),
                trace: self.trace.snapshot(),
                shutdown: self.shutdown.snapshot(),
            },
        }
    }
}

/// Point-in-time gauges owned by the limiter and the predictor map,
/// passed into [`Metrics::snapshot`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LimitGauges {
    /// Clients with a live token bucket.
    pub clients_tracked: u64,
    /// Token buckets evicted by the client-table cap.
    pub rate_evictions: u64,
    /// Predictors resident in the bounded map.
    pub predictors_cached: u64,
    /// Predictors evicted by the map's cap.
    pub predictor_evictions: u64,
}

/// Production-limit figures in the `stats` result.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct LimitStats {
    /// Requests answered `deadline_exceeded`.
    pub deadline_expired: u64,
    /// Requests answered `rate_limited`.
    pub rate_shed: u64,
    /// Clients with a live token bucket.
    pub clients_tracked: u64,
    /// Token buckets evicted by the client-table cap.
    pub rate_evictions: u64,
    /// Predictors resident in the bounded map.
    pub predictors_cached: u64,
    /// Predictors evicted by the map's cap.
    pub predictor_evictions: u64,
}

/// One endpoint's row in the `stats` result.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct EndpointStats {
    /// Requests handled (including error responses).
    pub requests: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Wall-clock latency summary (seconds), p50/p90/p99 at histogram
    /// bucket resolution.
    pub latency: HistSummary,
}

/// Connection/request totals.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ServerStats {
    /// Connections accepted and served.
    pub accepted_conns: u64,
    /// Connections refused at the connection cap.
    pub rejected_conns: u64,
    /// Connections currently open.
    pub live_conns: u64,
    /// Request lines received.
    pub requests_total: u64,
    /// Response lines written.
    pub responses_total: u64,
    /// Protocol-level rejections.
    pub protocol_errors: u64,
}

/// Bounded-queue figures.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct QueueStats {
    /// Maximum queued jobs.
    pub capacity: u64,
    /// Jobs queued right now.
    pub depth: u64,
    /// Jobs ever accepted.
    pub enqueued: u64,
    /// Jobs ever taken by a worker.
    pub dequeued: u64,
    /// Pushes refused with `overloaded`.
    pub rejected_full: u64,
}

/// Predict micro-batching figures.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct BatchStats {
    /// Batches executed.
    pub batches: u64,
    /// Predict requests served through batches.
    pub batched_requests: u64,
    /// Largest single batch.
    pub max_batch: u64,
}

/// Per-endpoint stats table.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct EndpointsStats {
    /// `predict` row.
    pub predict: EndpointStats,
    /// `plan` row.
    pub plan: EndpointStats,
    /// `compare` row.
    pub compare: EndpointStats,
    /// `execute` row.
    pub execute: EndpointStats,
    /// `stats` row.
    pub stats: EndpointStats,
    /// `trace` row.
    pub trace: EndpointStats,
    /// `shutdown` row.
    pub shutdown: EndpointStats,
}

/// The complete `stats` result (schema `nestwx-serve-stats` v2).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct StatsSnapshot {
    /// Always [`STATS_SCHEMA`].
    pub schema: &'static str,
    /// Always [`STATS_VERSION`].
    pub version: u64,
    /// Connection/request totals.
    pub server: ServerStats,
    /// Request-queue figures.
    pub queue: QueueStats,
    /// Plan-cache figures.
    pub cache: CacheStats,
    /// Disk-cache figures (all zero when no `cache_dir` is configured).
    pub disk: crate::disk::DiskStats,
    /// Predict-batching figures.
    pub batch: BatchStats,
    /// Deadline/rate-limit/bounded-map figures.
    pub limits: LimitStats,
    /// Flight-recorder figures (ring drops, slow-log crossings).
    pub flight: FlightStats,
    /// Per-endpoint counters and latency.
    pub endpoints: EndpointsStats,
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn flight_stats() -> FlightStats {
        crate::flight::FlightRecorder::new(true, 2, 64, 1000).stats()
    }

    #[test]
    fn endpoint_rows_accumulate() {
        let m = Metrics::default();
        m.endpoint(Endpoint::Plan)
            .record(Duration::from_millis(10), true);
        m.endpoint(Endpoint::Plan)
            .record(Duration::from_millis(20), false);
        m.endpoint(Endpoint::Stats)
            .record(Duration::from_micros(50), true);
        let snap = m.snapshot(
            QueueStats {
                capacity: 8,
                depth: 0,
                enqueued: 0,
                dequeued: 0,
                rejected_full: 0,
            },
            crate::cache::CacheStats {
                capacity: 0,
                entries: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
                hit_rate: 0.0,
            },
            0,
            LimitGauges::default(),
            crate::disk::DiskStats::default(),
            flight_stats(),
        );
        assert_eq!(snap.endpoints.plan.requests, 2);
        assert_eq!(snap.endpoints.plan.errors, 1);
        assert_eq!(snap.endpoints.plan.latency.count, 2);
        assert!(snap.endpoints.plan.latency.max >= 0.02);
        assert_eq!(snap.endpoints.stats.requests, 1);
        assert_eq!(snap.endpoints.predict.requests, 0);
    }

    #[test]
    fn batch_counters_track_max() {
        let m = Metrics::default();
        m.record_batch(3);
        m.record_batch(7);
        m.record_batch(2);
        assert_eq!(m.batches.load(Ordering::Relaxed), 3);
        assert_eq!(m.batched_requests.load(Ordering::Relaxed), 12);
        assert_eq!(m.max_batch.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn snapshot_serializes() {
        let m = Metrics::default();
        m.deadline_expired.fetch_add(3, Ordering::Relaxed);
        m.rate_shed.fetch_add(4, Ordering::Relaxed);
        let snap = m.snapshot(
            QueueStats {
                capacity: 4,
                depth: 1,
                enqueued: 9,
                dequeued: 8,
                rejected_full: 2,
            },
            crate::cache::CacheStats {
                capacity: 16,
                entries: 3,
                hits: 5,
                misses: 4,
                evictions: 1,
                hit_rate: 5.0 / 9.0,
            },
            2,
            LimitGauges {
                clients_tracked: 7,
                rate_evictions: 1,
                predictors_cached: 2,
                predictor_evictions: 0,
            },
            crate::disk::DiskStats {
                hits: 6,
                misses: 2,
                writes: 2,
                corrupt: 0,
            },
            flight_stats(),
        );
        let json = serde_json::to_string(&snap).unwrap();
        let v = serde_json::from_str(&json).unwrap();
        assert_eq!(v["schema"].as_str(), Some(STATS_SCHEMA));
        assert_eq!(v["version"].as_u64(), Some(STATS_VERSION));
        assert_eq!(v["flight"]["recording"].as_bool(), Some(true));
        assert_eq!(v["flight"]["rings"].as_u64(), Some(2));
        assert_eq!(v["flight"]["slow_threshold_us"].as_u64(), Some(1000));
        assert_eq!(v["endpoints"]["trace"]["requests"].as_u64(), Some(0));
        assert_eq!(v["queue"]["rejected_full"].as_u64(), Some(2));
        assert_eq!(v["cache"]["hits"].as_u64(), Some(5));
        assert_eq!(v["disk"]["hits"].as_u64(), Some(6));
        assert_eq!(v["disk"]["writes"].as_u64(), Some(2));
        assert_eq!(v["server"]["live_conns"].as_u64(), Some(2));
        assert_eq!(v["endpoints"]["plan"]["latency"]["count"].as_u64(), Some(0));
        assert_eq!(v["limits"]["deadline_expired"].as_u64(), Some(3));
        assert_eq!(v["limits"]["rate_shed"].as_u64(), Some(4));
        assert_eq!(v["limits"]["clients_tracked"].as_u64(), Some(7));
        assert_eq!(v["limits"]["predictors_cached"].as_u64(), Some(2));
    }
}

//! Micro-batching of `predict` requests.
//!
//! Concurrent predict queries for the *same machine* share one fitted
//! predictor (the expensive part: 13 profiling simulations + basis
//! triangulation). A connection thread parks its request here and enqueues
//! a lightweight tick job; whichever worker pops a tick drains *every*
//! pending request for that machine and answers them all against a single
//! predictor resolution. Later ticks that find the batch already drained
//! are no-ops, so a burst of N concurrent queries costs one predictor
//! lookup instead of N.

use crate::protocol::ProtoError;
use crate::sync::{lock_unpoisoned, AtomicU64, Mutex, Ordering};
use nestwx_grid::DomainFeatures;
use std::collections::BTreeMap;
use std::sync::mpsc::Sender;

/// The result a worker sends back to a parked connection thread: the
/// rendered result JSON, or a typed error.
pub type Outcome = Result<String, ProtoError>;

/// One parked predict request.
pub struct Pending {
    /// Unique token, used to cancel (remove) exactly this entry if its
    /// tick could not be enqueued.
    pub token: u64,
    /// Machine spec string from the request (echoed in the result).
    pub machine_spec: String,
    /// Features of the nests to rank.
    pub features: Vec<DomainFeatures>,
    /// Where the worker sends the outcome.
    pub reply: Sender<Outcome>,
}

/// Parking lot of pending predict requests, grouped by machine identity.
/// The group map is ordered so the shutdown sweep ([`drain_all`]) answers
/// leftovers in a deterministic machine order.
///
/// [`drain_all`]: PredictBatcher::drain_all
#[derive(Default)]
pub struct PredictBatcher {
    groups: Mutex<BTreeMap<String, Vec<Pending>>>,
    next_token: AtomicU64,
}

impl PredictBatcher {
    /// An empty batcher.
    pub fn new() -> PredictBatcher {
        PredictBatcher::default()
    }

    /// A fresh cancellation token.
    pub fn token(&self) -> u64 {
        self.next_token.fetch_add(1, Ordering::Relaxed)
    }

    /// Parks a request under the given machine key.
    pub fn add(&self, machine_key: &str, pending: Pending) {
        lock_unpoisoned(&self.groups)
            .entry(machine_key.to_string())
            .or_default()
            .push(pending);
    }

    /// Removes one parked request by token. Returns `false` when a worker
    /// already took it (its reply will arrive; the caller must wait instead
    /// of reporting an error).
    pub fn cancel(&self, machine_key: &str, token: u64) -> bool {
        let mut groups = lock_unpoisoned(&self.groups);
        if let Some(list) = groups.get_mut(machine_key) {
            if let Some(i) = list.iter().position(|p| p.token == token) {
                list.swap_remove(i);
                if list.is_empty() {
                    groups.remove(machine_key);
                }
                return true;
            }
        }
        false
    }

    /// Takes every pending request for one machine (the whole batch).
    pub fn take(&self, machine_key: &str) -> Vec<Pending> {
        lock_unpoisoned(&self.groups)
            .remove(machine_key)
            .unwrap_or_default()
    }

    /// Takes everything, across all machines — the final shutdown sweep.
    pub fn drain_all(&self) -> Vec<Pending> {
        std::mem::take(&mut *lock_unpoisoned(&self.groups))
            .into_values()
            .flatten()
            .collect()
    }

    /// Parked requests right now (all machines).
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.groups).values().map(Vec::len).sum()
    }

    /// True when nothing is parked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn pending(b: &PredictBatcher) -> (Pending, std::sync::mpsc::Receiver<Outcome>) {
        let (tx, rx) = channel();
        (
            Pending {
                token: b.token(),
                machine_spec: "bgl:64".into(),
                features: vec![DomainFeatures::from_dims(100, 100)],
                reply: tx,
            },
            rx,
        )
    }

    #[test]
    fn take_drains_whole_group() {
        let b = PredictBatcher::new();
        let (p1, _r1) = pending(&b);
        let (p2, _r2) = pending(&b);
        b.add("m1", p1);
        b.add("m1", p2);
        let (p3, _r3) = pending(&b);
        b.add("m2", p3);
        assert_eq!(b.len(), 3);
        let batch = b.take("m1");
        assert_eq!(batch.len(), 2);
        assert_eq!(b.len(), 1, "other machines' groups untouched");
        assert!(b.take("m1").is_empty(), "second take finds nothing");
    }

    #[test]
    fn cancel_races_with_take() {
        let b = PredictBatcher::new();
        let (p, _r) = pending(&b);
        let token = p.token;
        b.add("m", p);
        assert!(b.cancel("m", token), "still parked → cancelled");
        assert!(!b.cancel("m", token), "already removed");
        let (p2, _r2) = pending(&b);
        let token2 = p2.token;
        b.add("m", p2);
        let _batch = b.take("m");
        assert!(!b.cancel("m", token2), "worker took it → cannot cancel");
    }

    #[test]
    fn drain_all_sweeps_every_group() {
        let b = PredictBatcher::new();
        let (p1, _r1) = pending(&b);
        let (p2, _r2) = pending(&b);
        b.add("a", p1);
        b.add("b", p2);
        assert_eq!(b.drain_all().len(), 2);
        assert!(b.is_empty());
    }
}

//! Micro-batching of `predict` requests, the reply plumbing between
//! workers and the event loop, and the bounded predictor map.
//!
//! Concurrent predict queries for the *same machine* share one fitted
//! predictor (the expensive part: 13 profiling simulations + basis
//! triangulation). The event loop parks a request here and enqueues a
//! lightweight tick job; whichever worker pops a tick drains *every*
//! pending request for that machine and answers them all against a single
//! predictor resolution. Later ticks that find the batch already drained
//! are no-ops, so a burst of N concurrent queries costs one predictor
//! lookup instead of N.
//!
//! Workers answer through a [`Reply`]: either a blocking channel (the
//! in-process [`crate::server`] API) or a [`Completion`] routed back to
//! the event-loop reader that owns the connection. A `Completion` carries
//! only connection/sequence numbers and the finished response line —
//! never a socket — so this module stays free of I/O handles (lint rule
//! NW-S003 runs on it).
//!
//! [`BoundedMap`] is the LRU-evicting store behind the per-machine
//! predictor cache: a churn of distinct machine specs evicts the stalest
//! predictor instead of growing without bound.

use crate::limits::CancelToken;
use crate::protocol::{response_err_line, response_ok_line, ProtoError};
use crate::sync::{lock_unpoisoned, AtomicU64, Mutex, Ordering};
use nestwx_grid::DomainFeatures;
use std::collections::BTreeMap;
use std::sync::mpsc::Sender;

/// The result a worker sends back to a parked caller: the rendered result
/// JSON, or a typed error.
pub type Outcome = Result<String, ProtoError>;

/// A finished response headed back to an event-loop reader. Identifies the
/// connection and pipeline slot by number only; the reader that owns the
/// socket splices `line` into the connection's in-order response queue.
pub struct Completion {
    /// Connection number within the owning reader.
    pub conn: u64,
    /// Pipeline sequence number within the connection.
    pub seq: u64,
    /// The full response line (no trailing newline).
    pub line: String,
    /// Whether the response is a success (`ok:true`).
    pub ok: bool,
    /// Flight-recorder stage: queue wait in µs (0 when not recorded).
    pub wait_us: u32,
    /// Flight-recorder stage: worker compute in µs (0 when not recorded).
    pub work_us: u32,
}

/// Where a worker's answer goes.
pub enum Reply {
    /// A blocking in-process caller parked on a channel (receives the raw
    /// result JSON / typed error and renders its own response line).
    Chan(Sender<Outcome>),
    /// An event-loop connection: the worker renders the response line
    /// (echoing `id`) and posts a [`Completion`] to the owning reader.
    Conn {
        /// The owning reader's completion channel.
        tx: Sender<Completion>,
        /// Connection number within that reader.
        conn: u64,
        /// Pipeline sequence number within the connection.
        seq: u64,
        /// Request correlation id to echo.
        id: Option<String>,
    },
}

impl Reply {
    /// Delivers the outcome. Send failures are ignored: a vanished caller
    /// (disconnected client, reader already gone) needs no answer.
    pub fn send(self, outcome: Outcome) {
        self.send_with_stages(outcome, 0, 0);
    }

    /// Delivers the outcome, carrying the worker-measured flight-recorder
    /// stages (queue wait / compute, µs) back to the owning reader. The
    /// stages ride the [`Completion`] only — they never touch the response
    /// line, so recorded and unrecorded responses stay byte-identical.
    pub fn send_with_stages(self, outcome: Outcome, wait_us: u32, work_us: u32) {
        match self {
            Reply::Chan(tx) => {
                let _ = tx.send(outcome);
            }
            Reply::Conn { tx, conn, seq, id } => {
                let ok = outcome.is_ok();
                let line = match &outcome {
                    Ok(result) => response_ok_line(id.as_deref(), result),
                    Err(e) => response_err_line(id.as_deref(), e),
                };
                let _ = tx.send(Completion {
                    conn,
                    seq,
                    line,
                    ok,
                    wait_us,
                    work_us,
                });
            }
        }
    }
}

/// One parked predict request.
pub struct Pending {
    /// Unique token, used to cancel (remove) exactly this entry if its
    /// tick could not be enqueued.
    pub token: u64,
    /// Claim on the right to answer: the draining worker and the deadline
    /// sweep race on it, and only the winner replies.
    pub cancel: CancelToken,
    /// Machine spec string from the request (echoed in the result).
    pub machine_spec: String,
    /// Features of the nests to rank.
    pub features: Vec<DomainFeatures>,
    /// Arrival instant, for endpoint latency metrics.
    pub started: std::time::Instant,
    /// Where the worker sends the outcome.
    pub reply: Reply,
}

/// Parking lot of pending predict requests, grouped by machine identity.
/// The group map is ordered so the shutdown sweep ([`drain_all`]) answers
/// leftovers in a deterministic machine order.
///
/// [`drain_all`]: PredictBatcher::drain_all
#[derive(Default)]
pub struct PredictBatcher {
    groups: Mutex<BTreeMap<String, Vec<Pending>>>,
    next_token: AtomicU64,
}

impl PredictBatcher {
    /// An empty batcher.
    pub fn new() -> PredictBatcher {
        PredictBatcher::default()
    }

    /// A fresh cancellation token.
    pub fn token(&self) -> u64 {
        self.next_token.fetch_add(1, Ordering::Relaxed)
    }

    /// Parks a request under the given machine key.
    pub fn add(&self, machine_key: &str, pending: Pending) {
        lock_unpoisoned(&self.groups)
            .entry(machine_key.to_string())
            .or_default()
            .push(pending);
    }

    /// Removes one parked request by token. Returns `false` when a worker
    /// already took it (its reply will arrive; the caller must wait instead
    /// of reporting an error).
    pub fn cancel(&self, machine_key: &str, token: u64) -> bool {
        let mut groups = lock_unpoisoned(&self.groups);
        if let Some(list) = groups.get_mut(machine_key) {
            if let Some(i) = list.iter().position(|p| p.token == token) {
                list.swap_remove(i);
                if list.is_empty() {
                    groups.remove(machine_key);
                }
                return true;
            }
        }
        false
    }

    /// Takes every pending request for one machine (the whole batch).
    pub fn take(&self, machine_key: &str) -> Vec<Pending> {
        lock_unpoisoned(&self.groups)
            .remove(machine_key)
            .unwrap_or_default()
    }

    /// Takes everything, across all machines — the final shutdown sweep.
    pub fn drain_all(&self) -> Vec<Pending> {
        std::mem::take(&mut *lock_unpoisoned(&self.groups))
            .into_values()
            .flatten()
            .collect()
    }

    /// Parked requests right now (all machines).
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.groups).values().map(Vec::len).sum()
    }

    /// True when nothing is parked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// Bounded LRU map
// ---------------------------------------------------------------------------

struct BoundedSlot<V> {
    value: V,
    last_used: u64,
}

struct BoundedInner<V> {
    map: BTreeMap<String, BoundedSlot<V>>,
    /// Monotonic touch counter backing the LRU stamps (not wall time, so
    /// eviction order is deterministic and loom-checkable).
    clock: u64,
}

/// A capacity-bounded map with least-recently-used eviction, keyed by
/// string. Backs the per-machine predictor cache: inserting past the cap
/// evicts the stalest entry (deterministic victim — lowest stamp, then map
/// order), so memory stays O(cap) under a churn of distinct machine specs.
pub struct BoundedMap<V> {
    inner: Mutex<BoundedInner<V>>,
    cap: usize,
    evictions: AtomicU64,
}

impl<V: Clone> BoundedMap<V> {
    /// An empty map holding at most `cap` entries (`cap` is clamped to
    /// at least 1 — a zero-capacity cache would evict its own insert).
    pub fn new(cap: usize) -> BoundedMap<V> {
        BoundedMap {
            inner: Mutex::new(BoundedInner {
                map: BTreeMap::new(),
                clock: 0,
            }),
            cap: cap.max(1),
            evictions: AtomicU64::new(0),
        }
    }

    /// Returns the value under `key`, building and inserting it with
    /// `build` on a miss. The builder runs under the map lock, so
    /// concurrent callers for the same key share one construction.
    pub fn get_or_insert_with(&self, key: &str, build: impl FnOnce() -> V) -> V {
        let mut inner = lock_unpoisoned(&self.inner);
        inner.clock += 1;
        let stamp = inner.clock;
        if let Some(slot) = inner.map.get_mut(key) {
            slot.last_used = stamp;
            return slot.value.clone();
        }
        if inner.map.len() >= self.cap {
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let value = build();
        inner.map.insert(
            key.to_string(),
            BoundedSlot {
                value: value.clone(),
                last_used: stamp,
            },
        );
        value
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.inner).map.len()
    }

    /// True when the map holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries evicted by the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn pending(b: &PredictBatcher) -> (Pending, std::sync::mpsc::Receiver<Outcome>) {
        let (tx, rx) = channel();
        (
            Pending {
                token: b.token(),
                cancel: CancelToken::new(),
                machine_spec: "bgl:64".into(),
                features: vec![DomainFeatures::from_dims(100, 100)],
                started: nestwx_obs::clock::now(),
                reply: Reply::Chan(tx),
            },
            rx,
        )
    }

    #[test]
    fn take_drains_whole_group() {
        let b = PredictBatcher::new();
        let (p1, _r1) = pending(&b);
        let (p2, _r2) = pending(&b);
        b.add("m1", p1);
        b.add("m1", p2);
        let (p3, _r3) = pending(&b);
        b.add("m2", p3);
        assert_eq!(b.len(), 3);
        let batch = b.take("m1");
        assert_eq!(batch.len(), 2);
        assert_eq!(b.len(), 1, "other machines' groups untouched");
        assert!(b.take("m1").is_empty(), "second take finds nothing");
    }

    #[test]
    fn cancel_races_with_take() {
        let b = PredictBatcher::new();
        let (p, _r) = pending(&b);
        let token = p.token;
        b.add("m", p);
        assert!(b.cancel("m", token), "still parked → cancelled");
        assert!(!b.cancel("m", token), "already removed");
        let (p2, _r2) = pending(&b);
        let token2 = p2.token;
        b.add("m", p2);
        let _batch = b.take("m");
        assert!(!b.cancel("m", token2), "worker took it → cannot cancel");
    }

    #[test]
    fn drain_all_sweeps_every_group() {
        let b = PredictBatcher::new();
        let (p1, _r1) = pending(&b);
        let (p2, _r2) = pending(&b);
        b.add("a", p1);
        b.add("b", p2);
        assert_eq!(b.drain_all().len(), 2);
        assert!(b.is_empty());
    }

    #[test]
    fn reply_conn_renders_response_lines() {
        let (tx, rx) = channel();
        Reply::Conn {
            tx: tx.clone(),
            conn: 3,
            seq: 9,
            id: Some("q1".into()),
        }
        .send(Ok("{\"a\":1}".into()));
        let c = rx.recv().unwrap();
        assert_eq!((c.conn, c.seq, c.ok), (3, 9, true));
        assert_eq!(
            c.line,
            "{\"v\":1,\"id\":\"q1\",\"ok\":true,\"result\":{\"a\":1}}"
        );
        Reply::Conn {
            tx,
            conn: 3,
            seq: 10,
            id: None,
        }
        .send(Err(ProtoError::new(
            crate::protocol::ErrorKind::DeadlineExceeded,
            "too late",
        )));
        let c = rx.recv().unwrap();
        assert!(!c.ok);
        assert!(
            c.line.contains("\"kind\":\"deadline_exceeded\""),
            "{}",
            c.line
        );
    }

    #[test]
    fn bounded_map_caps_and_evicts_lru() {
        let m: BoundedMap<u32> = BoundedMap::new(2);
        assert_eq!(m.get_or_insert_with("a", || 1), 1);
        assert_eq!(m.get_or_insert_with("b", || 2), 2);
        // Touch "a" so "b" is the LRU victim.
        assert_eq!(m.get_or_insert_with("a", || 99), 1, "hit, no rebuild");
        assert_eq!(m.get_or_insert_with("c", || 3), 3);
        assert_eq!(m.len(), 2, "capacity bound holds");
        assert_eq!(m.evictions(), 1);
        assert_eq!(m.get_or_insert_with("b", || 20), 20, "evicted key rebuilds");
        assert_eq!(m.evictions(), 2, "reinserting b evicts the next victim");
    }

    #[test]
    fn bounded_map_zero_capacity_clamps_to_one() {
        let m: BoundedMap<u32> = BoundedMap::new(0);
        assert_eq!(m.get_or_insert_with("a", || 1), 1);
        assert_eq!(m.get_or_insert_with("a", || 9), 1, "own insert survives");
        assert_eq!(m.len(), 1);
    }
}

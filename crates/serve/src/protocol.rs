//! The versioned newline-delimited JSON wire protocol.
//!
//! One request per line, one response line per request, in order:
//!
//! ```text
//! → {"v":1,"id":"q1","op":"plan","params":{"machine":"bgl:64",
//!      "parent":{"nx":286,"ny":307,"dx_km":24.0},
//!      "nests":[{"nx":150,"ny":150,"r":3,"ox":10,"oy":12}],
//!      "strategy":"concurrent","alloc":"huffman","mapping":"partition"}}
//! ← {"v":1,"id":"q1","ok":true,"result":{...}}
//! ← {"v":1,"ok":false,"error":{"kind":"overloaded","message":"..."}}
//! ```
//!
//! Ops: `predict`, `plan`, `compare`, `execute`, `stats`, `trace`,
//! `shutdown`. The version
//! field `v` is mandatory and must equal [`PROTOCOL_VERSION`]; unknown
//! *fields* are tolerated (forward compatibility), unknown *ops* and
//! malformed values are rejected with a typed error. Lines longer than
//! [`MAX_LINE_BYTES`] are rejected with kind `oversized` without buffering
//! the excess (the reader discards until the next newline).
//!
//! Error kinds are a closed set ([`ErrorKind`]); `overloaded` (bounded
//! request queue full), `rate_limited` (per-client token bucket empty),
//! `deadline_exceeded` (the request's deadline passed before a worker
//! reached it) and `shutting_down` (drain in progress) are the
//! backpressure signals — clients should retry elsewhere/later, never
//! queue unboundedly on the server.
//!
//! Two optional request fields drive those semantics: `client` (a caller
//! identity string the per-client rate limiter keys on; requests without
//! one are exempt) and `deadline_ms` (a per-request deadline in
//! milliseconds from arrival, overriding the server default).

use nestwx_core::{AllocPolicy, MappingKind, Scenario, Strategy};
use nestwx_grid::{Domain, NestSpec};
use nestwx_netsim::{IoMode, Machine};
use serde_json::Value;
use std::fmt;
use std::io::{self, Read};

/// Wire protocol version carried in every request/response (`"v"`).
pub const PROTOCOL_VERSION: u64 = 1;

/// Maximum accepted request-line length in bytes (newline included).
/// Longer lines are answered with an `oversized` error and skipped.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Cap on `execute` parent iterations — a fleet run is real simulation
/// work on the server; unbounded iteration counts would be a trivial DoS.
pub const MAX_EXECUTE_ITERATIONS: u32 = 1000;

/// Cap on `execute` fleet workers (each is a thread pair plus a socket).
pub const MAX_EXECUTE_WORKERS: u32 = 8;

/// The seven server endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// Relative execution-time prediction for a nest set (micro-batched).
    Predict,
    /// Full plan: predict → allocate → map (cached).
    Plan,
    /// Sequential-vs-planned simulation comparison (cached).
    Compare,
    /// Multi-process fleet execution of the scenario (uncached).
    Execute,
    /// Live server metrics snapshot.
    Stats,
    /// Drain of the flight recorder's recent request spans.
    Trace,
    /// Graceful drain-then-exit.
    Shutdown,
}

impl Endpoint {
    /// All endpoints, in protocol documentation order.
    pub const ALL: [Endpoint; 7] = [
        Endpoint::Predict,
        Endpoint::Plan,
        Endpoint::Compare,
        Endpoint::Execute,
        Endpoint::Stats,
        Endpoint::Trace,
        Endpoint::Shutdown,
    ];

    /// The wire token (`"op"` value).
    pub fn name(&self) -> &'static str {
        match self {
            Endpoint::Predict => "predict",
            Endpoint::Plan => "plan",
            Endpoint::Compare => "compare",
            Endpoint::Execute => "execute",
            Endpoint::Stats => "stats",
            Endpoint::Trace => "trace",
            Endpoint::Shutdown => "shutdown",
        }
    }

    /// Parses a wire token.
    pub fn from_name(s: &str) -> Option<Endpoint> {
        Endpoint::ALL.into_iter().find(|e| e.name() == s)
    }
}

/// Typed error kinds — the closed set of `error.kind` strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The line was not a valid JSON request object.
    Malformed,
    /// The line exceeded [`MAX_LINE_BYTES`].
    Oversized,
    /// `v` missing or not equal to [`PROTOCOL_VERSION`].
    UnsupportedVersion,
    /// Syntactically valid JSON but semantically invalid request.
    BadRequest,
    /// The bounded request queue is full — retry later.
    Overloaded,
    /// The request's deadline passed before a worker reached it.
    DeadlineExceeded,
    /// The per-client token bucket is empty — slow down and retry.
    RateLimited,
    /// The server is draining after a shutdown request.
    ShuttingDown,
    /// Planning/prediction/simulation failed for this scenario.
    Failed,
    /// A fleet worker process was lost mid-execution (disconnect or
    /// frame timeout); the run was aborted with no partial result.
    WorkerLost,
    /// Unexpected server-side failure (worker died, channel closed).
    Internal,
}

impl ErrorKind {
    /// The wire token (`error.kind`).
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorKind::Malformed => "malformed",
            ErrorKind::Oversized => "oversized",
            ErrorKind::UnsupportedVersion => "unsupported_version",
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::RateLimited => "rate_limited",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::Failed => "failed",
            ErrorKind::WorkerLost => "worker_lost",
            ErrorKind::Internal => "internal",
        }
    }
}

/// A typed protocol error: kind + human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// Error classification (closed set).
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl ProtoError {
    /// Convenience constructor.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> ProtoError {
        ProtoError {
            kind,
            message: message.into(),
        }
    }

    /// A `bad_request` error.
    pub fn bad_request(message: impl Into<String>) -> ProtoError {
        ProtoError::new(ErrorKind::BadRequest, message)
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.as_str(), self.message)
    }
}

impl std::error::Error for ProtoError {}

/// Scenario-shaped parameters shared by `plan` and `compare`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioParams {
    /// Machine spec token, e.g. `"bgl:64"`.
    pub machine: String,
    /// Parent domain.
    pub parent: Domain,
    /// Nest list (at least one).
    pub nests: Vec<NestSpec>,
    /// Execution strategy (default concurrent).
    pub strategy: Strategy,
    /// Allocation policy (default huffman).
    pub alloc: AllocPolicy,
    /// Mapping kind (default partition).
    pub mapping: MappingKind,
    /// Optional history output (mode, interval).
    pub io: Option<(IoMode, u32)>,
}

impl ScenarioParams {
    /// Resolves the wire-level parameters into a cacheable [`Scenario`]
    /// (instantiates the machine model; domain validity is checked later
    /// by the planner).
    pub fn to_scenario(&self) -> Result<Scenario, ProtoError> {
        let machine = parse_machine(&self.machine).map_err(ProtoError::bad_request)?;
        Ok(Scenario {
            machine,
            parent: self.parent.clone(),
            nests: self.nests.clone(),
            strategy: self.strategy,
            alloc: self.alloc,
            mapping: self.mapping,
            io_mode: self.io.map(|(m, _)| m).unwrap_or(IoMode::None),
            output_interval: self.io.map(|(_, every)| every),
        })
    }
}

/// `predict` parameters: a machine and the nests to rank.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictParams {
    /// Machine spec token, e.g. `"bgl:64"`.
    pub machine: String,
    /// Nests whose relative execution times are requested.
    pub nests: Vec<NestSpec>,
}

/// A parsed request body.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// Relative-time prediction.
    Predict(PredictParams),
    /// Execution plan.
    Plan(ScenarioParams),
    /// Strategy comparison over `iterations` parent iterations.
    Compare {
        /// Scenario to compare.
        params: ScenarioParams,
        /// Parent iterations to simulate.
        iterations: u32,
    },
    /// Fleet execution: run the scenario's model across socket-connected
    /// worker processes and return the merged simulation report.
    Execute {
        /// Scenario to execute.
        params: ScenarioParams,
        /// Parent iterations to run.
        iterations: u32,
        /// Fleet worker count.
        workers: u32,
    },
    /// Metrics snapshot.
    Stats,
    /// Flight-recorder span drain.
    Trace,
    /// Graceful shutdown.
    Shutdown,
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Optional client correlation id, echoed in the response.
    pub id: Option<String>,
    /// Optional caller identity the per-client rate limiter keys on
    /// (requests without one are exempt from rate limiting).
    pub client: Option<String>,
    /// Optional per-request deadline in milliseconds from arrival,
    /// overriding the server's default.
    pub deadline_ms: Option<u64>,
    /// Opt-in `explain` block on `plan`/`compare` responses (per-nest
    /// predicted vs allocated share, hop histogram). Off by default so
    /// cached plan bytes stay byte-identical for plain requests.
    pub explain: bool,
    /// The operation.
    pub body: RequestBody,
}

impl Request {
    /// A request with neither client identity nor deadline — the common
    /// construction in tests and embedding code.
    pub fn new(id: Option<String>, body: RequestBody) -> Request {
        Request {
            id,
            client: None,
            deadline_ms: None,
            explain: false,
            body,
        }
    }

    /// The endpoint this request targets.
    pub fn endpoint(&self) -> Endpoint {
        match &self.body {
            RequestBody::Predict(_) => Endpoint::Predict,
            RequestBody::Plan(_) => Endpoint::Plan,
            RequestBody::Compare { .. } => Endpoint::Compare,
            RequestBody::Execute { .. } => Endpoint::Execute,
            RequestBody::Stats => Endpoint::Stats,
            RequestBody::Trace => Endpoint::Trace,
            RequestBody::Shutdown => Endpoint::Shutdown,
        }
    }

    /// Serializes the request as one wire line (no trailing newline).
    /// Always writes every knob explicitly, so
    /// `Request::parse_line(r.to_json_line())` round-trips exactly.
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str("{\"v\":");
        s.push_str(&PROTOCOL_VERSION.to_string());
        if let Some(id) = &self.id {
            s.push_str(",\"id\":");
            serde::write_escaped_str(id, &mut s);
        }
        if let Some(client) = &self.client {
            s.push_str(",\"client\":");
            serde::write_escaped_str(client, &mut s);
        }
        if let Some(deadline_ms) = self.deadline_ms {
            s.push_str(&format!(",\"deadline_ms\":{deadline_ms}"));
        }
        if self.explain {
            s.push_str(",\"explain\":true");
        }
        s.push_str(",\"op\":\"");
        s.push_str(self.endpoint().name());
        s.push('"');
        match &self.body {
            RequestBody::Predict(p) => {
                s.push_str(",\"params\":{\"machine\":");
                serde::write_escaped_str(&p.machine, &mut s);
                s.push_str(",\"nests\":");
                write_nests(&p.nests, &mut s);
                s.push('}');
            }
            RequestBody::Plan(p) => {
                s.push_str(",\"params\":");
                write_scenario_params(p, None, None, &mut s);
            }
            RequestBody::Compare { params, iterations } => {
                s.push_str(",\"params\":");
                write_scenario_params(params, Some(*iterations), None, &mut s);
            }
            RequestBody::Execute {
                params,
                iterations,
                workers,
            } => {
                s.push_str(",\"params\":");
                write_scenario_params(params, Some(*iterations), Some(*workers), &mut s);
            }
            RequestBody::Stats | RequestBody::Trace | RequestBody::Shutdown => {}
        }
        s.push('}');
        s
    }

    /// Parses one wire line into a request, classifying failures.
    pub fn parse_line(line: &str) -> Result<Request, ProtoError> {
        let v = serde_json::from_str(line)
            .map_err(|e| ProtoError::new(ErrorKind::Malformed, format!("invalid JSON: {e}")))?;
        let Value::Object(_) = &v else {
            return Err(ProtoError::new(
                ErrorKind::Malformed,
                "request must be a JSON object",
            ));
        };
        match field(&v, "v").and_then(Value::as_u64) {
            Some(PROTOCOL_VERSION) => {}
            Some(other) => {
                return Err(ProtoError::new(
                    ErrorKind::UnsupportedVersion,
                    format!("protocol version {other} not supported (this server speaks v{PROTOCOL_VERSION})"),
                ))
            }
            None => {
                return Err(ProtoError::new(
                    ErrorKind::UnsupportedVersion,
                    "missing integer protocol version field 'v'",
                ))
            }
        }
        let id = match field(&v, "id") {
            None => None,
            Some(Value::String(s)) => Some(s.clone()),
            Some(_) => return Err(ProtoError::bad_request("'id' must be a string")),
        };
        let client = match field(&v, "client") {
            None => None,
            Some(Value::String(s)) => Some(s.clone()),
            Some(_) => return Err(ProtoError::bad_request("'client' must be a string")),
        };
        let deadline_ms = match field(&v, "deadline_ms") {
            None => None,
            Some(v) => {
                let ms = v.as_u64().ok_or_else(|| {
                    ProtoError::bad_request("'deadline_ms' must be an unsigned integer")
                })?;
                if ms == 0 {
                    return Err(ProtoError::bad_request("'deadline_ms' must be ≥ 1"));
                }
                Some(ms)
            }
        };
        let explain = match field(&v, "explain") {
            None => false,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| ProtoError::bad_request("'explain' must be a boolean"))?,
        };
        let op = field(&v, "op")
            .and_then(Value::as_str)
            .ok_or_else(|| ProtoError::bad_request("missing string field 'op'"))?;
        let endpoint = Endpoint::from_name(op).ok_or_else(|| {
            ProtoError::bad_request(format!(
                "unknown op '{op}' (predict|plan|compare|execute|stats|trace|shutdown)"
            ))
        })?;
        let params = field(&v, "params");
        let body = match endpoint {
            Endpoint::Stats => RequestBody::Stats,
            Endpoint::Trace => RequestBody::Trace,
            Endpoint::Shutdown => RequestBody::Shutdown,
            Endpoint::Predict => {
                let p = params_object(params)?;
                RequestBody::Predict(PredictParams {
                    machine: parse_machine_field(p)?,
                    nests: parse_nests(p)?,
                })
            }
            Endpoint::Plan => RequestBody::Plan(parse_scenario_params(params_object(params)?)?),
            Endpoint::Compare => {
                let p = params_object(params)?;
                let iterations = match field(p, "iterations") {
                    None => 5,
                    Some(v) => u32_value(v, "iterations")?,
                };
                if iterations == 0 {
                    return Err(ProtoError::bad_request("'iterations' must be ≥ 1"));
                }
                RequestBody::Compare {
                    params: parse_scenario_params(p)?,
                    iterations,
                }
            }
            Endpoint::Execute => {
                let p = params_object(params)?;
                let iterations = match field(p, "iterations") {
                    None => 5,
                    Some(v) => u32_value(v, "iterations")?,
                };
                if iterations == 0 || iterations > MAX_EXECUTE_ITERATIONS {
                    return Err(ProtoError::bad_request(format!(
                        "'iterations' must be in 1..={MAX_EXECUTE_ITERATIONS}"
                    )));
                }
                let workers = match field(p, "workers") {
                    None => 2,
                    Some(v) => u32_value(v, "workers")?,
                };
                if workers == 0 || workers > MAX_EXECUTE_WORKERS {
                    return Err(ProtoError::bad_request(format!(
                        "'workers' must be in 1..={MAX_EXECUTE_WORKERS}"
                    )));
                }
                RequestBody::Execute {
                    params: parse_scenario_params(p)?,
                    iterations,
                    workers,
                }
            }
        };
        Ok(Request {
            id,
            client,
            deadline_ms,
            explain,
            body,
        })
    }
}

// ---------------------------------------------------------------------------
// Request serialization helpers (manual, so integers stay integers on the
// wire — the dynamic `Value` path would render every number as a float).
// ---------------------------------------------------------------------------

fn write_nests(nests: &[NestSpec], s: &mut String) {
    s.push('[');
    for (i, n) in nests.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"nx\":{},\"ny\":{},\"r\":{},\"ox\":{},\"oy\":{}",
            n.nx, n.ny, n.refine_ratio, n.offset.0, n.offset.1
        ));
        if let Some(k) = n.parent_nest {
            s.push_str(&format!(",\"in\":{k}"));
        }
        s.push('}');
    }
    s.push(']');
}

fn write_scenario_params(
    p: &ScenarioParams,
    iterations: Option<u32>,
    workers: Option<u32>,
    s: &mut String,
) {
    s.push_str("{\"machine\":");
    serde::write_escaped_str(&p.machine, s);
    s.push_str(&format!(
        ",\"parent\":{{\"nx\":{},\"ny\":{},\"dx_km\":",
        p.parent.nx, p.parent.ny
    ));
    serde::write_f64(p.parent.dx_km, s);
    s.push_str("},\"nests\":");
    write_nests(&p.nests, s);
    s.push_str(",\"strategy\":\"");
    s.push_str(strategy_token(p.strategy));
    s.push_str("\",\"alloc\":\"");
    s.push_str(alloc_token(p.alloc));
    s.push_str("\",\"mapping\":\"");
    s.push_str(mapping_token(p.mapping));
    s.push('"');
    if let Some((mode, every)) = p.io {
        s.push_str(&format!(
            ",\"io\":{{\"mode\":\"{}\",\"interval\":{every}}}",
            io_token(mode)
        ));
    }
    if let Some(iters) = iterations {
        s.push_str(&format!(",\"iterations\":{iters}"));
    }
    if let Some(w) = workers {
        s.push_str(&format!(",\"workers\":{w}"));
    }
    s.push('}');
}

/// Wire token of a strategy.
pub fn strategy_token(s: Strategy) -> &'static str {
    match s {
        Strategy::Sequential => "sequential",
        Strategy::Concurrent => "concurrent",
    }
}

/// Wire token of an allocation policy (same tokens as the CLI `--alloc`).
pub fn alloc_token(a: AllocPolicy) -> &'static str {
    match a {
        AllocPolicy::Equal => "equal",
        AllocPolicy::NaiveProportional => "naive",
        AllocPolicy::HuffmanSplitTree => "huffman",
    }
}

/// Wire token of a mapping kind (same tokens as the CLI `--mapping`).
pub fn mapping_token(m: MappingKind) -> &'static str {
    match m {
        MappingKind::Oblivious => "oblivious",
        MappingKind::Txyz => "txyz",
        MappingKind::Partition => "partition",
        MappingKind::MultiLevel => "multilevel",
    }
}

/// Wire token of an I/O mode.
pub fn io_token(m: IoMode) -> &'static str {
    match m {
        IoMode::None => "none",
        IoMode::PnetCdf => "pnetcdf",
        IoMode::SplitFiles => "split",
    }
}

// ---------------------------------------------------------------------------
// Request parsing helpers
// ---------------------------------------------------------------------------

/// `get` that treats JSON `null` as absent.
fn field<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    v.get(key).filter(|x| !x.is_null())
}

fn params_object(params: Option<&Value>) -> Result<&Value, ProtoError> {
    match params {
        Some(v @ Value::Object(_)) => Ok(v),
        Some(_) => Err(ProtoError::bad_request("'params' must be an object")),
        None => Err(ProtoError::bad_request("missing 'params' object")),
    }
}

fn u32_value(v: &Value, what: &str) -> Result<u32, ProtoError> {
    v.as_u64()
        .and_then(|n| u32::try_from(n).ok())
        .ok_or_else(|| ProtoError::bad_request(format!("'{what}' must be an unsigned integer")))
}

fn req_u32(obj: &Value, key: &str, what: &str) -> Result<u32, ProtoError> {
    field(obj, key)
        .ok_or_else(|| ProtoError::bad_request(format!("missing '{key}' in {what}")))
        .and_then(|v| u32_value(v, key))
}

fn parse_machine_field(p: &Value) -> Result<String, ProtoError> {
    field(p, "machine")
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| ProtoError::bad_request("missing string field 'machine'"))
}

fn parse_nests(p: &Value) -> Result<Vec<NestSpec>, ProtoError> {
    let arr = field(p, "nests")
        .and_then(Value::as_array)
        .ok_or_else(|| ProtoError::bad_request("missing array field 'nests'"))?;
    if arr.is_empty() {
        return Err(ProtoError::bad_request("'nests' must not be empty"));
    }
    arr.iter()
        .enumerate()
        .map(|(i, n)| {
            let what = format!("nests[{i}]");
            let nx = req_u32(n, "nx", &what)?;
            let ny = req_u32(n, "ny", &what)?;
            let r = req_u32(n, "r", &what)?;
            let ox = req_u32(n, "ox", &what)?;
            let oy = req_u32(n, "oy", &what)?;
            let parent_nest = match field(n, "in") {
                None => None,
                Some(v) => Some(
                    v.as_u64()
                        .and_then(|k| usize::try_from(k).ok())
                        .ok_or_else(|| {
                            ProtoError::bad_request(format!("'{what}.in' must be a nest index"))
                        })?,
                ),
            };
            Ok(NestSpec {
                nx,
                ny,
                refine_ratio: r,
                offset: (ox, oy),
                parent_nest,
            })
        })
        .collect()
}

fn parse_scenario_params(p: &Value) -> Result<ScenarioParams, ProtoError> {
    let parent = field(p, "parent")
        .ok_or_else(|| ProtoError::bad_request("missing object field 'parent'"))?;
    let dx_km = field(parent, "dx_km")
        .and_then(Value::as_f64)
        .ok_or_else(|| ProtoError::bad_request("missing number field 'parent.dx_km'"))?;
    if !(dx_km.is_finite() && dx_km > 0.0) {
        return Err(ProtoError::bad_request("'parent.dx_km' must be positive"));
    }
    let strategy = match field(p, "strategy").map(|v| v.as_str().unwrap_or_default()) {
        None => Strategy::Concurrent,
        Some("sequential") => Strategy::Sequential,
        Some("concurrent") => Strategy::Concurrent,
        Some(other) => {
            return Err(ProtoError::bad_request(format!(
                "unknown strategy '{other}' (sequential|concurrent)"
            )))
        }
    };
    let alloc = match field(p, "alloc").map(|v| v.as_str().unwrap_or_default()) {
        None => AllocPolicy::HuffmanSplitTree,
        Some("equal") => AllocPolicy::Equal,
        Some("naive") => AllocPolicy::NaiveProportional,
        Some("huffman") => AllocPolicy::HuffmanSplitTree,
        Some(other) => {
            return Err(ProtoError::bad_request(format!(
                "unknown allocation policy '{other}' (equal|naive|huffman)"
            )))
        }
    };
    let mapping = match field(p, "mapping").map(|v| v.as_str().unwrap_or_default()) {
        None => MappingKind::Partition,
        Some("oblivious") => MappingKind::Oblivious,
        Some("txyz") => MappingKind::Txyz,
        Some("partition") => MappingKind::Partition,
        Some("multilevel") => MappingKind::MultiLevel,
        Some(other) => {
            return Err(ProtoError::bad_request(format!(
                "unknown mapping '{other}' (oblivious|txyz|partition|multilevel)"
            )))
        }
    };
    let io = match field(p, "io") {
        None => None,
        Some(io) => {
            let mode = match field(io, "mode").and_then(Value::as_str) {
                Some("pnetcdf") => IoMode::PnetCdf,
                Some("split") => IoMode::SplitFiles,
                Some(other) => {
                    return Err(ProtoError::bad_request(format!(
                        "unknown io mode '{other}' (pnetcdf|split)"
                    )))
                }
                None => return Err(ProtoError::bad_request("missing string field 'io.mode'")),
            };
            let every = req_u32(io, "interval", "io")?;
            if every == 0 {
                return Err(ProtoError::bad_request("'io.interval' must be ≥ 1"));
            }
            Some((mode, every))
        }
    };
    Ok(ScenarioParams {
        machine: parse_machine_field(p)?,
        parent: Domain::parent(
            req_u32(parent, "nx", "parent")?,
            req_u32(parent, "ny", "parent")?,
            dx_km,
        ),
        nests: parse_nests(p)?,
        strategy,
        alloc,
        mapping,
        io,
    })
}

/// Parses a machine spec token (`bgl:64` / `bgp:4096`) into the machine
/// model. Same family/size rules as the CLI, plus an upper bound — a
/// daemon must not let one request allocate an absurd torus.
pub fn parse_machine(spec: &str) -> Result<Machine, String> {
    const MAX_CORES: u32 = 65_536;
    let (fam, cores) = spec
        .split_once(':')
        .ok_or_else(|| format!("machine '{spec}': expected FAMILY:CORES"))?;
    let cores: u32 = cores
        .parse()
        .map_err(|_| format!("bad core count '{cores}'"))?;
    if !cores.is_power_of_two() {
        return Err(format!("core count {cores} must be a power of two"));
    }
    if cores > MAX_CORES {
        return Err(format!("core count {cores} exceeds the limit {MAX_CORES}"));
    }
    let min = match fam {
        "bgl" => 16,
        "bgp" => 64,
        other => return Err(format!("unknown machine family '{other}' (bgl|bgp)")),
    };
    if cores < min {
        return Err(format!("{fam} needs at least {min} cores"));
    }
    Ok(match fam {
        "bgl" => Machine::bgl(cores),
        _ => Machine::bgp(cores),
    })
}

// ---------------------------------------------------------------------------
// Response lines
// ---------------------------------------------------------------------------

/// Builds a success response line around an already-serialized result
/// (no trailing newline). Splicing the raw result string is what makes
/// cached responses byte-identical to freshly computed ones.
pub fn response_ok_line(id: Option<&str>, result_json: &str) -> String {
    let mut s = String::with_capacity(result_json.len() + 32);
    s.push_str("{\"v\":1");
    if let Some(id) = id {
        s.push_str(",\"id\":");
        serde::write_escaped_str(id, &mut s);
    }
    s.push_str(",\"ok\":true,\"result\":");
    s.push_str(result_json);
    s.push('}');
    s
}

/// Builds an error response line (no trailing newline).
pub fn response_err_line(id: Option<&str>, e: &ProtoError) -> String {
    let mut s = String::with_capacity(64 + e.message.len());
    s.push_str("{\"v\":1");
    if let Some(id) = id {
        s.push_str(",\"id\":");
        serde::write_escaped_str(id, &mut s);
    }
    s.push_str(",\"ok\":false,\"error\":{\"kind\":\"");
    s.push_str(e.kind.as_str());
    s.push_str("\",\"message\":");
    serde::write_escaped_str(&e.message, &mut s);
    s.push_str("}}");
    s
}

// ---------------------------------------------------------------------------
// Capped line reader
// ---------------------------------------------------------------------------

/// One read outcome from a [`LineReader`].
#[derive(Debug, PartialEq, Eq)]
pub enum Line {
    /// A complete line within the cap (newline stripped).
    Data(String),
    /// The line exceeded the cap; `discarded` bytes were dropped so far
    /// (the reader keeps discarding until the terminating newline before
    /// returning further data lines).
    Oversized {
        /// Bytes dropped before reporting.
        discarded: usize,
    },
    /// End of stream.
    Eof,
}

/// A newline-delimited reader that never buffers more than the line cap:
/// oversized lines are reported immediately and their remainder discarded,
/// so a hostile client cannot balloon server memory.
pub struct LineReader<R> {
    inner: R,
    buf: Vec<u8>,
    skipping: bool,
    max: usize,
}

impl<R: Read> LineReader<R> {
    /// Wraps `inner` with a per-line cap of `max` bytes.
    pub fn new(inner: R, max: usize) -> LineReader<R> {
        LineReader {
            inner,
            buf: Vec::new(),
            skipping: false,
            max,
        }
    }

    /// Reads the next line. I/O errors (including read timeouts, surfaced
    /// as `WouldBlock`/`TimedOut`) pass through; buffered partial data
    /// survives across calls.
    pub fn next_line(&mut self) -> io::Result<Line> {
        let mut chunk = [0u8; 4096];
        loop {
            if self.skipping {
                if let Some(i) = self.buf.iter().position(|&b| b == b'\n') {
                    self.buf.drain(..=i);
                    self.skipping = false;
                } else {
                    self.buf.clear();
                }
            }
            if !self.skipping {
                if let Some(i) = self.buf.iter().position(|&b| b == b'\n') {
                    if i > self.max {
                        self.buf.drain(..=i);
                        return Ok(Line::Oversized { discarded: i });
                    }
                    let line: Vec<u8> = self.buf.drain(..=i).collect();
                    let text = String::from_utf8_lossy(&line[..i]).into_owned();
                    return Ok(Line::Data(text));
                }
                if self.buf.len() > self.max {
                    let discarded = self.buf.len();
                    self.buf.clear();
                    self.skipping = true;
                    return Ok(Line::Oversized { discarded });
                }
            }
            let n = self.inner.read(&mut chunk)?;
            if n == 0 {
                if !self.skipping && !self.buf.is_empty() {
                    // Final unterminated line: accept it (clients may close
                    // right after the last request).
                    let text = String::from_utf8_lossy(&self.buf).into_owned();
                    self.buf.clear();
                    return Ok(Line::Data(text));
                }
                return Ok(Line::Eof);
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn line_reader_splits_and_caps() {
        let data = b"short\nanother\n".to_vec();
        let mut r = LineReader::new(Cursor::new(data), 16);
        assert_eq!(r.next_line().unwrap(), Line::Data("short".into()));
        assert_eq!(r.next_line().unwrap(), Line::Data("another".into()));
        assert_eq!(r.next_line().unwrap(), Line::Eof);
    }

    #[test]
    fn line_reader_rejects_oversized_then_recovers() {
        let mut data = vec![b'x'; 100];
        data.push(b'\n');
        data.extend_from_slice(b"ok\n");
        let mut r = LineReader::new(Cursor::new(data), 16);
        assert!(matches!(r.next_line().unwrap(), Line::Oversized { .. }));
        assert_eq!(r.next_line().unwrap(), Line::Data("ok".into()));
        assert_eq!(r.next_line().unwrap(), Line::Eof);
    }

    #[test]
    fn line_reader_reports_oversized_before_newline_arrives() {
        // 100 bytes, no newline yet: the reader must report without
        // waiting for the line to end (the server responds immediately).
        let data = vec![b'y'; 100];
        let mut r = LineReader::new(Cursor::new(data), 16);
        assert!(matches!(
            r.next_line().unwrap(),
            Line::Oversized { discarded: 100 }
        ));
        assert_eq!(r.next_line().unwrap(), Line::Eof);
    }

    #[test]
    fn line_reader_accepts_unterminated_final_line() {
        let mut r = LineReader::new(Cursor::new(b"tail".to_vec()), 16);
        assert_eq!(r.next_line().unwrap(), Line::Data("tail".into()));
        assert_eq!(r.next_line().unwrap(), Line::Eof);
    }

    #[test]
    fn parse_rejects_wrong_version_and_ops() {
        let e = Request::parse_line("{\"op\":\"plan\"}").unwrap_err();
        assert_eq!(e.kind, ErrorKind::UnsupportedVersion);
        let e = Request::parse_line("{\"v\":2,\"op\":\"plan\"}").unwrap_err();
        assert_eq!(e.kind, ErrorKind::UnsupportedVersion);
        let e = Request::parse_line("{\"v\":1,\"op\":\"frobnicate\"}").unwrap_err();
        assert_eq!(e.kind, ErrorKind::BadRequest);
        let e = Request::parse_line("not json at all").unwrap_err();
        assert_eq!(e.kind, ErrorKind::Malformed);
        let e = Request::parse_line("[1,2,3]").unwrap_err();
        assert_eq!(e.kind, ErrorKind::Malformed);
        let e = Request::parse_line("{\"v\":1,\"id\":7,\"op\":\"stats\"}").unwrap_err();
        assert_eq!(e.kind, ErrorKind::BadRequest);
    }

    #[test]
    fn stats_and_shutdown_need_no_params() {
        let r = Request::parse_line("{\"v\":1,\"op\":\"stats\"}").unwrap();
        assert_eq!(r.body, RequestBody::Stats);
        let r = Request::parse_line("{\"v\":1,\"id\":\"x\",\"op\":\"shutdown\"}").unwrap();
        assert_eq!(r.body, RequestBody::Shutdown);
        assert_eq!(r.id.as_deref(), Some("x"));
    }

    #[test]
    fn client_and_deadline_fields_round_trip() {
        let mut r = Request::new(Some("q".into()), RequestBody::Stats);
        r.client = Some("tenant-a".into());
        r.deadline_ms = Some(250);
        let line = r.to_json_line();
        assert!(line.contains("\"client\":\"tenant-a\""), "{line}");
        assert!(line.contains("\"deadline_ms\":250"), "{line}");
        assert_eq!(Request::parse_line(&line).unwrap(), r);
        // Absent fields parse back as None.
        let bare = Request::parse_line("{\"v\":1,\"op\":\"stats\"}").unwrap();
        assert_eq!(bare.client, None);
        assert_eq!(bare.deadline_ms, None);
    }

    #[test]
    fn bad_client_or_deadline_is_bad_request() {
        let e = Request::parse_line("{\"v\":1,\"client\":7,\"op\":\"stats\"}").unwrap_err();
        assert_eq!(e.kind, ErrorKind::BadRequest);
        let e = Request::parse_line("{\"v\":1,\"deadline_ms\":0,\"op\":\"stats\"}").unwrap_err();
        assert_eq!(e.kind, ErrorKind::BadRequest);
        let e =
            Request::parse_line("{\"v\":1,\"deadline_ms\":\"soon\",\"op\":\"stats\"}").unwrap_err();
        assert_eq!(e.kind, ErrorKind::BadRequest);
    }

    #[test]
    fn trace_needs_no_params_and_round_trips() {
        let r = Request::parse_line("{\"v\":1,\"op\":\"trace\"}").unwrap();
        assert_eq!(r.body, RequestBody::Trace);
        assert_eq!(r.endpoint(), Endpoint::Trace);
        let r = Request::new(Some("t1".into()), RequestBody::Trace);
        assert_eq!(r.to_json_line(), "{\"v\":1,\"id\":\"t1\",\"op\":\"trace\"}");
        assert_eq!(Request::parse_line(&r.to_json_line()).unwrap(), r);
        assert_eq!(Endpoint::from_name("trace"), Some(Endpoint::Trace));
    }

    #[test]
    fn explain_field_round_trips_and_defaults_off() {
        // Absent → false, and serialization omits it, so pre-explain
        // request lines are byte-identical.
        let bare = Request::new(None, RequestBody::Stats);
        assert!(!bare.explain);
        assert_eq!(bare.to_json_line(), "{\"v\":1,\"op\":\"stats\"}");
        let parsed = Request::parse_line("{\"v\":1,\"op\":\"stats\"}").unwrap();
        assert!(!parsed.explain);
        // explain:false parses but re-serializes without the field.
        let parsed = Request::parse_line("{\"v\":1,\"explain\":false,\"op\":\"stats\"}").unwrap();
        assert!(!parsed.explain);
        // explain:true round-trips exactly.
        let mut r = Request::new(Some("p".into()), RequestBody::Stats);
        r.explain = true;
        let line = r.to_json_line();
        assert!(line.contains("\"explain\":true"), "{line}");
        assert_eq!(Request::parse_line(&line).unwrap(), r);
    }

    #[test]
    fn non_boolean_explain_is_bad_request() {
        for line in [
            "{\"v\":1,\"explain\":1,\"op\":\"stats\"}",
            "{\"v\":1,\"explain\":\"yes\",\"op\":\"plan\"}",
        ] {
            let e = Request::parse_line(line).unwrap_err();
            assert_eq!(e.kind, ErrorKind::BadRequest, "{line}");
        }
        // null is treated as absent, like every other optional knob.
        let r = Request::parse_line("{\"v\":1,\"explain\":null,\"op\":\"stats\"}").unwrap();
        assert!(!r.explain);
    }

    #[test]
    fn machine_spec_limits() {
        assert!(parse_machine("bgl:64").is_ok());
        assert!(parse_machine("bgp:4096").is_ok());
        assert!(parse_machine("bgl:63").is_err());
        assert!(parse_machine("bgl:8").is_err());
        assert!(parse_machine("bgq:64").is_err());
        assert!(parse_machine("bgl:131072").is_err());
    }

    #[test]
    fn response_lines_embed_raw_results() {
        assert_eq!(
            response_ok_line(Some("q"), "{\"a\":1}"),
            "{\"v\":1,\"id\":\"q\",\"ok\":true,\"result\":{\"a\":1}}"
        );
        let e = ProtoError::new(ErrorKind::Overloaded, "queue full");
        let line = response_err_line(None, &e);
        let v = serde_json::from_str(&line).unwrap();
        assert_eq!(v["ok"].as_bool(), Some(false));
        assert_eq!(v["error"]["kind"].as_str(), Some("overloaded"));
    }
}

//! Production limit primitives: request cancellation tokens and the
//! per-client token-bucket rate limiter.
//!
//! **Cancellation.** Every queued job carries a [`CancelToken`]. Exactly
//! one party — the worker that popped the job, or the event loop's
//! deadline sweep — may *claim* the token (an atomic swap), and only the
//! claimant answers the request. That compare-and-swap is the whole
//! exactly-once protocol: a job is never lost (the loser of the race knows
//! the winner will answer) and never double-executed (a worker whose claim
//! fails skips the compute entirely). Model-checked in `tests/loom.rs`.
//!
//! **Rate limiting.** One token bucket per `client` identity string, with
//! weighted costs per endpoint (a `compare` simulation spends more budget
//! than a cached `plan` hit — weighted fairness, not per-message
//! counting). Buckets hold *micro-tokens* (1 token = [`MICRO`]), refilled
//! by integer arithmetic from a caller-supplied microsecond clock
//! ([`nestwx_obs::clock::micros_since`] in production, fixed values in the
//! loom suite), so refill math is exact and the limiter itself never reads
//! a clock. The client table is LRU-bounded: a flood of distinct client
//! ids evicts the stalest bucket instead of growing without bound — an
//! evicted-and-recreated bucket restarts full, which errs in the client's
//! favor and keeps memory O(cap).

use crate::sync::{lock_unpoisoned, AtomicBool, Mutex, Ordering};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Micro-tokens per token (see module docs).
pub const MICRO: u64 = 1_000_000;

/// Exactly-once claim on a queued job's right to answer.
///
/// Cloned into both the job (for the worker) and the event loop's deadline
/// registry (for the expiry sweep); whichever side claims first answers,
/// the other side stands down.
#[derive(Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, unclaimed token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Claims the token. Returns `true` for exactly one caller over the
    /// token's lifetime; everyone else gets `false` and must not answer.
    pub fn claim(&self) -> bool {
        !self.0.swap(true, Ordering::SeqCst)
    }

    /// True once someone claimed the token.
    pub fn is_claimed(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

struct Bucket {
    /// Micro-tokens available.
    micro: u64,
    /// Microsecond stamp of the last refill.
    refilled_us: u64,
    /// LRU stamp (touch counter, not time).
    last_used: u64,
}

struct Table {
    buckets: BTreeMap<String, Bucket>,
    /// Monotonic touch counter backing the LRU stamps.
    clock: u64,
}

/// A bounded table of per-client token buckets.
///
/// `try_charge` is the only mutation: refill from elapsed time, then spend
/// `cost` tokens or shed. All state sits behind one mutex — the critical
/// section is a map lookup plus integer arithmetic, far cheaper than the
/// request it gates.
pub struct RateLimiter {
    table: Mutex<Table>,
    /// Tokens added per second.
    rate: u64,
    /// Bucket capacity in micro-tokens (burst ceiling).
    burst_micro: u64,
    /// Maximum tracked clients.
    client_cap: usize,
    shed: crate::sync::AtomicU64,
    evictions: crate::sync::AtomicU64,
}

impl RateLimiter {
    /// A limiter granting `rate` tokens/second per client with bucket
    /// capacity `burst` tokens, tracking at most `client_cap` clients.
    pub fn new(rate: u64, burst: u64, client_cap: usize) -> RateLimiter {
        RateLimiter {
            table: Mutex::new(Table {
                buckets: BTreeMap::new(),
                clock: 0,
            }),
            rate,
            burst_micro: burst.max(1).saturating_mul(MICRO),
            client_cap: client_cap.max(1),
            shed: crate::sync::AtomicU64::new(0),
            evictions: crate::sync::AtomicU64::new(0),
        }
    }

    /// Spends `cost` tokens from `client`'s bucket at time `now_us`
    /// (microseconds on any monotonic scale shared across calls). Returns
    /// `false` — shed the request — when the bucket cannot cover the cost.
    /// Zero-cost requests always pass without creating a bucket.
    pub fn try_charge(&self, client: &str, cost: u64, now_us: u64) -> bool {
        if cost == 0 {
            return true;
        }
        let cost_micro = cost.saturating_mul(MICRO);
        let mut table = lock_unpoisoned(&self.table);
        table.clock += 1;
        let stamp = table.clock;
        if !table.buckets.contains_key(client) {
            if table.buckets.len() >= self.client_cap {
                // Evict the least recently used bucket; deterministic
                // victim under stamp ties because the map is ordered.
                if let Some(victim) = table
                    .buckets
                    .iter()
                    .min_by_key(|(_, b)| b.last_used)
                    .map(|(k, _)| k.clone())
                {
                    table.buckets.remove(&victim);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
            table.buckets.insert(
                client.to_string(),
                Bucket {
                    micro: self.burst_micro,
                    refilled_us: now_us,
                    last_used: stamp,
                },
            );
        }
        let rate = self.rate;
        let burst_micro = self.burst_micro;
        let Some(bucket) = table.buckets.get_mut(client) else {
            // Unreachable (just inserted), but shedding beats panicking on
            // the request path.
            return false;
        };
        bucket.last_used = stamp;
        // Exact integer refill: `rate` tokens/s is `rate` micro-tokens/µs.
        let elapsed_us = now_us.saturating_sub(bucket.refilled_us);
        bucket.micro = bucket
            .micro
            .saturating_add(elapsed_us.saturating_mul(rate))
            .min(burst_micro);
        bucket.refilled_us = now_us;
        if bucket.micro >= cost_micro {
            bucket.micro -= cost_micro;
            true
        } else {
            self.shed.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    /// Clients currently tracked.
    pub fn clients_tracked(&self) -> usize {
        lock_unpoisoned(&self.table).buckets.len()
    }

    /// Buckets evicted by the client-table cap.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Charges refused (requests shed).
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_claims_exactly_once() {
        let t = CancelToken::new();
        assert!(!t.is_claimed());
        assert!(t.claim());
        assert!(!t.claim(), "second claim must lose");
        assert!(t.is_claimed());
        let u = t.clone();
        assert!(!u.claim(), "clones share the claim state");
    }

    #[test]
    fn bucket_starts_full_and_sheds_past_burst() {
        let l = RateLimiter::new(1, 4, 16);
        for i in 0..4 {
            assert!(l.try_charge("c", 1, 0), "burst token {i}");
        }
        assert!(!l.try_charge("c", 1, 0), "bucket empty");
        assert_eq!(l.shed_total(), 1);
    }

    #[test]
    fn refill_is_exact_integer_math() {
        let l = RateLimiter::new(2, 10, 16);
        assert!(l.try_charge("c", 10, 0), "drain the whole burst");
        assert!(!l.try_charge("c", 1, 0));
        // 2 tokens/s → one token every 500_000 µs. At 499_999 µs the bucket
        // holds 999_998 micro-tokens: still short of one token.
        assert!(!l.try_charge("c", 1, 499_999));
        assert!(l.try_charge("c", 1, 500_000), "exactly one token refilled");
        assert!(!l.try_charge("c", 1, 500_000), "and spent");
    }

    #[test]
    fn weighted_costs_spend_proportionally() {
        let l = RateLimiter::new(0, 8, 16);
        assert!(l.try_charge("c", 4, 0));
        assert!(l.try_charge("c", 4, 0));
        assert!(!l.try_charge("c", 1, 0), "8 tokens spent in 2 requests");
        assert!(l.try_charge("c", 0, 0), "zero-cost always passes");
    }

    #[test]
    fn client_table_is_lru_bounded() {
        let l = RateLimiter::new(0, 1, 2);
        assert!(l.try_charge("a", 1, 0));
        assert!(l.try_charge("b", 1, 0));
        assert_eq!(l.clients_tracked(), 2);
        // Touch "a" so "b" is the LRU victim when "c" arrives.
        let _ = l.try_charge("a", 1, 0);
        assert!(l.try_charge("c", 1, 0));
        assert_eq!(l.clients_tracked(), 2, "table never exceeds the cap");
        assert_eq!(l.evictions(), 1);
        // "b" was evicted: it returns with a fresh (full) bucket.
        assert!(l.try_charge("b", 1, 0));
    }

    #[test]
    fn distinct_clients_have_independent_buckets() {
        let l = RateLimiter::new(0, 1, 16);
        assert!(l.try_charge("a", 1, 0));
        assert!(!l.try_charge("a", 1, 0));
        assert!(l.try_charge("b", 1, 0), "b unaffected by a's spend");
    }
}

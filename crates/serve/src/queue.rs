//! The bounded Mutex+Condvar job queue, generic over the job type.
//!
//! Extracted from the server so the loom suite (`tests/loom.rs`) can model
//! check the exact production queue in isolation: no lost jobs under
//! concurrent push/pop, capacity never exceeded, and close-then-drain
//! semantics (workers finish everything already accepted before seeing
//! `None`).

use crate::metrics::QueueStats;
use crate::sync::{lock_unpoisoned, AtomicU64, Condvar, Mutex, Ordering};
use std::collections::VecDeque;

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// Queue at capacity — the `overloaded` signal.
    Full,
    /// Queue closed by shutdown.
    Closed,
}

struct Inner<T> {
    jobs: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue: producers get an immediate [`PushError::Full`]
/// instead of blocking, consumers block in [`pop`](BoundedQueue::pop)
/// until a job or close-and-drained.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    cap: usize,
    enqueued: AtomicU64,
    dequeued: AtomicU64,
    rejected_full: AtomicU64,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `cap` jobs (minimum 1).
    pub fn new(cap: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(Inner {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
            enqueued: AtomicU64::new(0),
            dequeued: AtomicU64::new(0),
            rejected_full: AtomicU64::new(0),
        }
    }

    /// Enqueues a job, refusing immediately when full or closed.
    pub fn push(&self, job: T) -> Result<(), PushError> {
        let mut inner = lock_unpoisoned(&self.inner);
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.jobs.len() >= self.cap {
            self.rejected_full.fetch_add(1, Ordering::Relaxed);
            return Err(PushError::Full);
        }
        inner.jobs.push_back(job);
        self.enqueued.fetch_add(1, Ordering::Relaxed);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once closed *and* drained — workers
    /// finish everything already accepted before exiting.
    pub fn pop(&self) -> Option<T> {
        let mut inner = lock_unpoisoned(&self.inner);
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                self.dequeued.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Closes the queue: further pushes fail with [`PushError::Closed`],
    /// and every blocked consumer wakes to drain what remains.
    pub fn close(&self) {
        lock_unpoisoned(&self.inner).closed = true;
        self.ready.notify_all();
    }

    /// Jobs queued right now.
    pub fn depth(&self) -> usize {
        lock_unpoisoned(&self.inner).jobs.len()
    }

    /// Counter snapshot for the `stats` endpoint.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            capacity: self.cap as u64,
            depth: self.depth() as u64,
            enqueued: self.enqueued.load(Ordering::Relaxed),
            dequeued: self.dequeued.load(Ordering::Relaxed),
            rejected_full: self.rejected_full.load(Ordering::Relaxed),
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn push_pop_fifo() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        let s = q.stats();
        assert_eq!((s.enqueued, s.dequeued), (2, 2));
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let q = BoundedQueue::new(1);
        q.push("a").unwrap();
        assert_eq!(q.push("b"), Err(PushError::Full));
        assert_eq!(q.stats().rejected_full, 1);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(8);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumer_wakes_on_close() {
        let q = std::sync::Arc::new(BoundedQueue::<u32>::new(2));
        let q2 = std::sync::Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }
}

//! Disk-persisted plan/result cache, shared by `nestwx sweep` and the
//! serving daemon.
//!
//! On-disk layout: one file per entry under the configured cache
//! directory, named by the FNV-1a 64 digest of the full cache key
//! (`<digest-hex>.plan`). The file's first line is the exact key — reads
//! verify it, so a digest collision or a foreign file degrades to a miss,
//! never a wrong answer — and everything after the first newline is the
//! cached value verbatim (rendered result JSON is single-line, so the
//! round trip is byte-exact).
//!
//! Writes are atomic: the entry is written to a `.tmp-…` sibling and
//! `rename`d into place, so a concurrent reader (another sweep job, a
//! serve worker) sees either the old entry or the complete new one, never
//! a torn file. Reads are corruption-tolerant: any I/O error, missing
//! newline, or key mismatch counts as a miss (plus a `corrupt` counter
//! when the file existed but did not verify) and the engine recomputes.
//!
//! Versioning rides on the key itself — every key bakes in
//! [`crate::keys::PLAN_FORMAT_VERSION`], so bumping the format orphans
//! old files (digest no longer looked up; even a digest collision fails
//! the key check) instead of serving stale-format bytes. No cleanup pass
//! is required for correctness.
//!
//! The cache directory always flows in through configuration
//! ([`crate::ServeConfig::cache_dir`], `nestwx sweep --cache-dir`) —
//! lint rule NW-D006 keeps ambient paths (`std::env::temp_dir`,
//! `current_dir`) off the determinism paths so two runs given the same
//! config read and write the same entries.

use nestwx_core::fnv1a64;
use serde::Serialize;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A content-addressed cache of rendered result bytes on disk.
#[derive(Debug)]
pub struct DiskCache {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    corrupt: AtomicU64,
    /// Per-process tempfile sequence (uniqueness within the process; the
    /// pid in the name handles concurrent processes).
    tmp_seq: AtomicU64,
}

/// Point-in-time disk-cache counters (all zero when no disk cache is
/// configured).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct DiskStats {
    /// Lookups answered from disk.
    pub hits: u64,
    /// Lookups that found no usable entry.
    pub misses: u64,
    /// Entries written (tempfile + rename completed).
    pub writes: u64,
    /// Files present but unverifiable (torn, foreign, or key-mismatched) —
    /// counted within `misses` as well.
    pub corrupt: u64,
}

impl DiskCache {
    /// Opens (creating if needed) the cache directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<DiskCache> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(DiskCache {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            tmp_seq: AtomicU64::new(0),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.dir
            .join(format!("{:016x}.plan", fnv1a64(key.as_bytes())))
    }

    /// Looks `key` up, verifying the stored key byte-for-byte. Every
    /// failure mode — absent file, unreadable file, torn entry, digest
    /// collision — is a miss.
    pub fn get(&self, key: &str) -> Option<Arc<str>> {
        let text = match fs::read_to_string(self.entry_path(key)) {
            Ok(text) => text,
            Err(e) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                if e.kind() != io::ErrorKind::NotFound {
                    self.corrupt.fetch_add(1, Ordering::Relaxed);
                }
                return None;
            }
        };
        match text.split_once('\n') {
            Some((stored_key, value)) if stored_key == key => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::from(value))
            }
            _ => {
                // Torn write survivor, foreign file, or key collision.
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Persists `key` → `value` atomically (tempfile + rename). `value`
    /// must not contain a newline in its first position-significant sense:
    /// everything after the entry's first newline is the value, so values
    /// themselves round-trip byte-exactly even if they contain newlines.
    pub fn put(&self, key: &str, value: &str) -> io::Result<()> {
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let result = (|| {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(key.as_bytes())?;
            f.write_all(b"\n")?;
            f.write_all(value.as_bytes())?;
            f.sync_data()?;
            fs::rename(&tmp, self.entry_path(key))
        })();
        if result.is_err() {
            // Never leave a temp file behind on a failed write.
            let _ = fs::remove_file(&tmp);
        } else {
            self.writes.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// Current counters.
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use nestwx_core::TempDir;

    #[test]
    fn round_trips_byte_exactly() {
        let dir = TempDir::new("nestwx-disk-roundtrip").unwrap();
        let cache = DiskCache::open(dir.path()).unwrap();
        let key = "fmt1|nestwx-scenario-v1:{\"x\":1}";
        let value = "{\"machine\":\"bgl\",\"ranks\":64}";
        assert!(cache.get(key).is_none());
        cache.put(key, value).unwrap();
        assert_eq!(cache.get(key).as_deref(), Some(value));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.writes, s.corrupt), (1, 1, 1, 0));
    }

    #[test]
    fn values_with_newlines_round_trip() {
        let dir = TempDir::new("nestwx-disk-newline").unwrap();
        let cache = DiskCache::open(dir.path()).unwrap();
        cache.put("k", "line1\nline2\n").unwrap();
        assert_eq!(cache.get("k").as_deref(), Some("line1\nline2\n"));
    }

    #[test]
    fn corrupt_entries_miss_cleanly() {
        let dir = TempDir::new("nestwx-disk-corrupt").unwrap();
        let cache = DiskCache::open(dir.path()).unwrap();
        cache.put("key-a", "value-a").unwrap();
        // Truncate the entry below its key line: a torn write survivor.
        let path = cache.entry_path("key-a");
        fs::write(&path, "key-").unwrap();
        assert!(cache.get("key-a").is_none());
        assert_eq!(cache.stats().corrupt, 1);
        // A rewrite heals it.
        cache.put("key-a", "value-a").unwrap();
        assert_eq!(cache.get("key-a").as_deref(), Some("value-a"));
    }

    #[test]
    fn key_mismatch_is_a_miss_not_a_wrong_answer() {
        let dir = TempDir::new("nestwx-disk-mismatch").unwrap();
        let cache = DiskCache::open(dir.path()).unwrap();
        cache.put("key-a", "value-a").unwrap();
        // Simulate a digest collision: drop a file with another key's
        // content where "key-b" would be addressed.
        fs::write(cache.entry_path("key-b"), "key-a\nvalue-a").unwrap();
        assert!(cache.get("key-b").is_none());
        assert_eq!(cache.stats().corrupt, 1);
    }

    #[test]
    fn failed_writes_leave_no_temp_files() {
        let dir = TempDir::new("nestwx-disk-tmp").unwrap();
        let cache = DiskCache::open(dir.path()).unwrap();
        cache.put("k1", "v1").unwrap();
        cache.put("k2", "v2").unwrap();
        let leftovers: Vec<_> = fs::read_dir(dir.path())
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|name| name.starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
    }
}

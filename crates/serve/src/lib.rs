//! `nestwx-serve` — a concurrent planning service.
//!
//! Turns the planner into a long-running daemon: a std-only multi-threaded
//! TCP server speaking a versioned newline-delimited JSON protocol
//! ([`protocol`]), with
//!
//! - a **bounded job queue** and worker pool — overload produces a typed
//!   `overloaded` error immediately instead of unbounded buffering
//!   ([`server`]);
//! - a **sharded LRU plan cache** keyed by the canonical scenario encoding
//!   from `nestwx-core`, serving byte-identical results on hits
//!   ([`cache`]);
//! - **micro-batching** of concurrent `predict` requests that share a
//!   machine, so a burst amortizes one predictor resolution ([`batch`]);
//! - per-endpoint latency histograms (`nestwx-obs` [`nestwx_obs::LogHistogram`])
//!   behind a `stats` endpoint, and graceful drain-then-exit shutdown with
//!   a [`DrainReport`] that proves nothing leaked ([`metrics`], [`server`]).
//!
//! ```no_run
//! use nestwx_serve::{spawn, Client, Request, RequestBody, ServeConfig};
//!
//! let handle = spawn(ServeConfig::default()).unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let resp = client
//!     .call(&Request { id: Some("1".into()), body: RequestBody::Stats })
//!     .unwrap();
//! assert!(resp.ok());
//! handle.shutdown();
//! assert!(handle.wait().clean());
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod client;
pub mod keys;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod sync;

pub use batch::{Outcome, Pending, PredictBatcher};
pub use cache::{CacheStats, PlanCache};
pub use client::{Client, Response};
pub use keys::PLAN_FORMAT_VERSION;
pub use metrics::{EndpointStats, Metrics, QueueStats, StatsSnapshot};
pub use protocol::{
    parse_machine, Endpoint, ErrorKind, Line, LineReader, PredictParams, ProtoError, Request,
    RequestBody, ScenarioParams, MAX_LINE_BYTES, PROTOCOL_VERSION,
};
pub use queue::{BoundedQueue, PushError};
pub use server::{spawn, DrainReport, ServeConfig, ServerHandle};

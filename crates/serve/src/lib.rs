//! `nestwx-serve` — a concurrent planning service.
//!
//! Turns the planner into a long-running daemon: a std-only event-driven
//! TCP server speaking a versioned newline-delimited JSON protocol
//! ([`protocol`]), with
//!
//! - a **nonblocking readiness loop** (`event_loop`) multiplexing
//!   thousands of connections onto a small reader set — no thread per
//!   connection, no external poll crate ([`conn`]);
//! - a **bounded job queue** and worker pool — overload produces a typed
//!   `overloaded` error immediately instead of unbounded buffering
//!   ([`server`]);
//! - a **sharded LRU plan cache** keyed by the canonical scenario encoding
//!   from `nestwx-core`, serving byte-identical results on hits
//!   ([`cache`]), fronted per-reader by a raw-line hot cache that answers
//!   repeated hit lines without parsing JSON;
//! - **per-request deadlines** with exactly-once cancellation and
//!   **per-client token-bucket rate limits** with weighted endpoint costs
//!   ([`limits`]);
//! - **micro-batching** of concurrent `predict` requests that share a
//!   machine, so a burst amortizes one predictor resolution ([`batch`]),
//!   with the resolved predictors held in a bounded LRU map;
//! - per-endpoint latency histograms (`nestwx-obs` [`nestwx_obs::LogHistogram`])
//!   behind a `stats` endpoint, and graceful drain-then-exit shutdown with
//!   a [`DrainReport`] that proves nothing leaked ([`metrics`], [`server`]).
//!
//! ```no_run
//! use nestwx_serve::{spawn, Client, Request, RequestBody, ServeConfig};
//!
//! let handle = spawn(ServeConfig::default()).unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let resp = client
//!     .call(&Request::new(Some("1".into()), RequestBody::Stats))
//!     .unwrap();
//! assert!(resp.ok());
//! handle.shutdown();
//! assert!(handle.wait().clean());
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod client;
pub mod conn;
pub mod disk;
pub(crate) mod event_loop;
pub mod flight;
pub mod keys;
pub mod limits;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod sync;

pub use batch::{BoundedMap, Completion, Outcome, Pending, PredictBatcher, Reply};
pub use cache::{CacheStats, PlanCache};
pub use client::{Client, Response};
pub use conn::{Conn, Gone};
pub use disk::{DiskCache, DiskStats};
pub use flight::{FlightRecorder, FlightStats, RequestSpan, SpanPath, SpanRing, TraceEnvelope};
pub use keys::PLAN_FORMAT_VERSION;
pub use limits::{CancelToken, RateLimiter, MICRO};
pub use metrics::{EndpointStats, LimitGauges, LimitStats, Metrics, QueueStats, StatsSnapshot};
pub use protocol::{
    parse_machine, Endpoint, ErrorKind, Line, LineReader, PredictParams, ProtoError, Request,
    RequestBody, ScenarioParams, MAX_EXECUTE_ITERATIONS, MAX_EXECUTE_WORKERS, MAX_LINE_BYTES,
    PROTOCOL_VERSION,
};
pub use queue::{BoundedQueue, PushError};
pub use server::{render_plan, spawn, DrainReport, ServeConfig, ServerHandle};

//! A small blocking client for the wire protocol — what the load
//! generator, the smoke tests and embedding code use to talk to a server.

use crate::protocol::{Line, LineReader, Request, MAX_LINE_BYTES};
use serde_json::Value;
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One parsed response line.
#[derive(Debug)]
pub struct Response {
    /// The exact line as received (no newline) — byte-identity checks
    /// compare these.
    pub raw: String,
    /// The parsed JSON.
    pub value: Value,
}

impl Response {
    /// The `ok` flag (false for unparseable responses, which do not occur
    /// with a well-behaved server).
    pub fn ok(&self) -> bool {
        self.value
            .get("ok")
            .and_then(Value::as_bool)
            .unwrap_or(false)
    }

    /// `error.kind` when this is an error response.
    pub fn error_kind(&self) -> Option<&str> {
        self.value.get("error")?.get("kind")?.as_str()
    }

    /// The `result` payload when this is a success response.
    pub fn result(&self) -> Option<&Value> {
        self.value.get("result")
    }
}

/// A blocking connection to a `nestwx-serve` instance.
pub struct Client {
    reader: LineReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: LineReader::new(stream, MAX_LINE_BYTES),
            writer,
        })
    }

    /// Sends a typed request and waits for its response line.
    pub fn call(&mut self, req: &Request) -> io::Result<Response> {
        self.send_line(&req.to_json_line())
    }

    /// Sends one raw line (the malformed-input escape hatch for tests) and
    /// waits for the response.
    pub fn send_line(&mut self, line: &str) -> io::Result<Response> {
        let mut payload = String::with_capacity(line.len() + 1);
        payload.push_str(line);
        payload.push('\n');
        self.writer.write_all(payload.as_bytes())?;
        self.read_response()
    }

    /// Sends a whole batch of raw lines in one write, then reads one
    /// response per line. Responses come back in request order (the
    /// server fills pipelined slots in-order), so `raws[i]` answers
    /// `lines[i]` — this is the high-throughput path the benchmark uses.
    pub fn call_pipelined(&mut self, lines: &[String]) -> io::Result<Vec<String>> {
        let total: usize = lines.iter().map(|l| l.len() + 1).sum();
        let mut payload = String::with_capacity(total);
        for line in lines {
            payload.push_str(line);
            payload.push('\n');
        }
        self.writer.write_all(payload.as_bytes())?;
        let mut raws = Vec::with_capacity(lines.len());
        for _ in lines {
            raws.push(self.read_raw_response()?);
        }
        Ok(raws)
    }

    /// Reads the next response line verbatim, skipping JSON parsing — the
    /// byte-identity fast path for [`Client::call_pipelined`].
    pub fn read_raw_response(&mut self) -> io::Result<String> {
        loop {
            match self.reader.next_line()? {
                Line::Data(raw) => return Ok(raw),
                Line::Oversized { .. } => continue,
                Line::Eof => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ))
                }
            }
        }
    }

    /// Reads the next response line without sending anything (for
    /// pipelined requests).
    pub fn read_response(&mut self) -> io::Result<Response> {
        loop {
            match self.reader.next_line()? {
                Line::Data(raw) => {
                    let value = serde_json::from_str(&raw).map_err(|e| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("unparseable response: {e}"),
                        )
                    })?;
                    return Ok(Response { raw, value });
                }
                Line::Oversized { .. } => continue,
                Line::Eof => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ))
                }
            }
        }
    }
}

//! Model-checking suite for the serve crate's concurrency invariants,
//! run under `RUSTFLAGS="--cfg loom" cargo test -p nestwx-serve --test loom`.
//!
//! Under `--cfg loom` the crate's `sync` module resolves to the vendored
//! loom shim, so every `Mutex`/`Condvar`/atomic operation inside the
//! production `BoundedQueue` and `PlanCache` becomes a schedule
//! perturbation point. Three invariants from the server's threading model
//! are checked:
//!
//! 1. **No lost jobs**: every push the queue accepts is eventually popped
//!    by exactly one worker — under concurrent producers and consumers.
//! 2. **Sharded LRU**: concurrent get/insert/evict on one shard never
//!    exceeds capacity, never aliases values, and always serves the exact
//!    bytes that were inserted.
//! 3. **Drain-then-exit**: after `close`, workers drain everything already
//!    accepted before seeing `None` — the "no lost responses" half of the
//!    graceful-shutdown contract.
//! 4. **Exactly-once cancellation**: a [`CancelToken`] racing between the
//!    worker and the deadline sweep is claimed by exactly one side.
//! 5. **Race-free refill**: concurrent charges against one rate-limit
//!    bucket never overgrant tokens (no lost-update on refill).
//! 6. **Bounded predictor map**: racing inserts into a [`BoundedMap`]
//!    never exceed its capacity; the loser is evicted, not leaked.
//! 7. **Race-free span ring**: a reader pushing flight-recorder spans
//!    racing two concurrent `trace` drains — every span is observed at
//!    most once and spans-drained + drops-reported equals pushes, so
//!    drops are never lost or double-counted.

#![cfg(loom)]

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::Arc;
use loom::thread;
use nestwx_serve::{
    BoundedMap, BoundedQueue, CancelToken, PlanCache, PushError, RateLimiter, RequestSpan, SpanRing,
};

#[test]
fn queue_loses_no_jobs_under_concurrent_push_pop() {
    loom::model(|| {
        let q = Arc::new(BoundedQueue::new(2));
        let accepted = Arc::new(AtomicU64::new(0));

        let producers: Vec<_> = (0..2)
            .map(|p| {
                let q = Arc::clone(&q);
                let accepted = Arc::clone(&accepted);
                thread::spawn(move || {
                    for j in 0..2u64 {
                        match q.push(p * 10 + j) {
                            Ok(()) => {
                                accepted.fetch_add(1, Ordering::SeqCst);
                            }
                            Err(PushError::Full) => {}
                            Err(PushError::Closed) => panic!("closed before producers done"),
                        }
                    }
                })
            })
            .collect();

        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut got = 0u64;
                while q.pop().is_some() {
                    got += 1;
                }
                got
            })
        };

        for h in producers {
            h.join().unwrap();
        }
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(
            got,
            accepted.load(Ordering::SeqCst),
            "every accepted job popped exactly once"
        );
        assert_eq!(q.depth(), 0, "nothing left behind");
        let s = q.stats();
        assert_eq!(s.enqueued, s.dequeued, "counters balance after drain");
    });
}

#[test]
fn sharded_lru_serves_exact_bytes_and_respects_capacity() {
    loom::model(|| {
        // Capacity 8 → one entry per shard; digest 7 pins a single shard,
        // so the two writers race on insert-with-eviction.
        let cache = Arc::new(PlanCache::new(8));
        let hs: Vec<_> = (0..2)
            .map(|t| {
                let cache = Arc::clone(&cache);
                thread::spawn(move || {
                    let key = format!("k{t}");
                    let val = format!("v{t}");
                    cache.insert(key.clone(), 7, std::sync::Arc::from(val.as_str()));
                    if let Some(hit) = cache.get(&key, 7) {
                        assert_eq!(&*hit, val.as_str(), "hit returns the inserted bytes");
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        // The contended shard holds one survivor; the other entry was
        // evicted, never both present.
        assert!(cache.len() <= 1, "per-shard capacity never exceeded");
        let s = cache.stats();
        assert_eq!(s.evictions, 1, "exactly one insert evicted the other");
    });
}

#[test]
fn close_drains_accepted_jobs_before_workers_exit() {
    loom::model(|| {
        let q = Arc::new(BoundedQueue::new(8));
        for j in 0..3u64 {
            q.push(j).unwrap();
        }
        let done = Arc::new(AtomicU64::new(0));
        // Close races with the workers' drain: both orders must deliver
        // all three jobs.
        let closer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.close())
        };
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                let done = Arc::clone(&done);
                thread::spawn(move || {
                    while q.pop().is_some() {
                        done.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        closer.join().unwrap();
        for h in workers {
            h.join().unwrap();
        }
        assert_eq!(
            done.load(Ordering::SeqCst),
            3,
            "every accepted job answered before exit"
        );
        assert_eq!(q.push(9), Err(PushError::Closed), "closed stays closed");
        assert_eq!(q.pop(), None, "drained queue reports end-of-work");
    });
}

#[test]
fn cancel_token_claim_is_exactly_once() {
    loom::model(|| {
        // The worker/deadline-sweep race: both sides try to claim the same
        // token; exactly one may answer the request.
        let token = CancelToken::new();
        let wins = Arc::new(AtomicU64::new(0));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let token = token.clone();
                let wins = Arc::clone(&wins);
                thread::spawn(move || {
                    if token.claim() {
                        wins.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(wins.load(Ordering::SeqCst), 1, "exactly one claimant");
        assert!(token.is_claimed(), "claimed token stays claimed");
        assert!(!token.claim(), "late claim after the race always loses");
    });
}

#[test]
fn rate_limiter_refill_is_race_free() {
    loom::model(|| {
        // Two readers charge the same bucket at the same (fixed) clock
        // stamps. Burst 1 token, rate 1 token/s: at most one extra charge
        // can be covered by the 0.5 s refill, never two — a lost-update
        // race on the refill arithmetic would overgrant.
        let rl = Arc::new(RateLimiter::new(1, 1, 4));
        assert!(rl.try_charge("c", 1, 0), "burst covers the first charge");
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let rl = Arc::clone(&rl);
                thread::spawn(move || u64::from(rl.try_charge("c", 1, 500_000)))
            })
            .collect();
        let granted: u64 = hs.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(granted, 0, "half a token never covers a whole charge");
        assert_eq!(rl.shed_total(), 2, "both racing charges counted as shed");
        // A full second of refill serves exactly one of two racers.
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let rl = Arc::clone(&rl);
                thread::spawn(move || u64::from(rl.try_charge("c", 1, 1_500_000)))
            })
            .collect();
        let granted: u64 = hs.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(
            granted, 1,
            "refill grants exactly one token, not one per racer"
        );
    });
}

#[test]
fn bounded_map_respects_capacity_under_concurrent_inserts() {
    loom::model(|| {
        let m = Arc::new(BoundedMap::new(1));
        let hs: Vec<_> = (0..2)
            .map(|t| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    let key = format!("k{t}");
                    let got = m.get_or_insert_with(&key, || t);
                    assert_eq!(got, t, "each inserter reads back its own value");
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(m.len(), 1, "capacity bound holds under racing inserts");
        assert_eq!(m.evictions(), 1, "the loser was evicted, not leaked");
    });
}

#[test]
fn span_ring_drains_race_free_without_double_counted_drops() {
    const PUSHES: u64 = 3;
    loom::model(|| {
        // Capacity below the push count so some schedules are forced to
        // overwrite (drop) — the interesting interleavings.
        let ring = Arc::new(SpanRing::new(2));
        let pusher = {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                for ts in 0..PUSHES {
                    ring.push(RequestSpan::probe(ts));
                }
            })
        };
        let drainers: Vec<_> = (0..2)
            .map(|_| {
                let ring = Arc::clone(&ring);
                thread::spawn(move || ring.drain())
            })
            .collect();
        pusher.join().unwrap();
        let mut results: Vec<(Vec<RequestSpan>, u64)> =
            drainers.into_iter().map(|d| d.join().unwrap()).collect();
        // Final drain collects whatever the racers left behind.
        results.push(ring.drain());

        let mut seen = std::collections::BTreeSet::new();
        let mut drained = 0u64;
        let mut drops = 0u64;
        for (spans, dropped) in &results {
            for s in spans {
                assert!(seen.insert(s.ts_us), "span {} drained twice", s.ts_us);
            }
            drained += spans.len() as u64;
            drops += dropped;
        }
        assert_eq!(
            drained + drops,
            PUSHES,
            "every push is either drained exactly once or counted dropped exactly once"
        );
    });
}

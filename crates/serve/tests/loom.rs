//! Model-checking suite for the serve crate's concurrency invariants,
//! run under `RUSTFLAGS="--cfg loom" cargo test -p nestwx-serve --test loom`.
//!
//! Under `--cfg loom` the crate's `sync` module resolves to the vendored
//! loom shim, so every `Mutex`/`Condvar`/atomic operation inside the
//! production `BoundedQueue` and `PlanCache` becomes a schedule
//! perturbation point. Three invariants from the server's threading model
//! are checked:
//!
//! 1. **No lost jobs**: every push the queue accepts is eventually popped
//!    by exactly one worker — under concurrent producers and consumers.
//! 2. **Sharded LRU**: concurrent get/insert/evict on one shard never
//!    exceeds capacity, never aliases values, and always serves the exact
//!    bytes that were inserted.
//! 3. **Drain-then-exit**: after `close`, workers drain everything already
//!    accepted before seeing `None` — the "no lost responses" half of the
//!    graceful-shutdown contract.

#![cfg(loom)]

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::Arc;
use loom::thread;
use nestwx_serve::{BoundedQueue, PlanCache, PushError};

#[test]
fn queue_loses_no_jobs_under_concurrent_push_pop() {
    loom::model(|| {
        let q = Arc::new(BoundedQueue::new(2));
        let accepted = Arc::new(AtomicU64::new(0));

        let producers: Vec<_> = (0..2)
            .map(|p| {
                let q = Arc::clone(&q);
                let accepted = Arc::clone(&accepted);
                thread::spawn(move || {
                    for j in 0..2u64 {
                        match q.push(p * 10 + j) {
                            Ok(()) => {
                                accepted.fetch_add(1, Ordering::SeqCst);
                            }
                            Err(PushError::Full) => {}
                            Err(PushError::Closed) => panic!("closed before producers done"),
                        }
                    }
                })
            })
            .collect();

        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut got = 0u64;
                while q.pop().is_some() {
                    got += 1;
                }
                got
            })
        };

        for h in producers {
            h.join().unwrap();
        }
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(
            got,
            accepted.load(Ordering::SeqCst),
            "every accepted job popped exactly once"
        );
        assert_eq!(q.depth(), 0, "nothing left behind");
        let s = q.stats();
        assert_eq!(s.enqueued, s.dequeued, "counters balance after drain");
    });
}

#[test]
fn sharded_lru_serves_exact_bytes_and_respects_capacity() {
    loom::model(|| {
        // Capacity 8 → one entry per shard; digest 7 pins a single shard,
        // so the two writers race on insert-with-eviction.
        let cache = Arc::new(PlanCache::new(8));
        let hs: Vec<_> = (0..2)
            .map(|t| {
                let cache = Arc::clone(&cache);
                thread::spawn(move || {
                    let key = format!("k{t}");
                    let val = format!("v{t}");
                    cache.insert(key.clone(), 7, std::sync::Arc::from(val.as_str()));
                    if let Some(hit) = cache.get(&key, 7) {
                        assert_eq!(&*hit, val.as_str(), "hit returns the inserted bytes");
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        // The contended shard holds one survivor; the other entry was
        // evicted, never both present.
        assert!(cache.len() <= 1, "per-shard capacity never exceeded");
        let s = cache.stats();
        assert_eq!(s.evictions, 1, "exactly one insert evicted the other");
    });
}

#[test]
fn close_drains_accepted_jobs_before_workers_exit() {
    loom::model(|| {
        let q = Arc::new(BoundedQueue::new(8));
        for j in 0..3u64 {
            q.push(j).unwrap();
        }
        let done = Arc::new(AtomicU64::new(0));
        // Close races with the workers' drain: both orders must deliver
        // all three jobs.
        let closer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.close())
        };
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                let done = Arc::clone(&done);
                thread::spawn(move || {
                    while q.pop().is_some() {
                        done.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        closer.join().unwrap();
        for h in workers {
            h.join().unwrap();
        }
        assert_eq!(
            done.load(Ordering::SeqCst),
            3,
            "every accepted job answered before exit"
        );
        assert_eq!(q.push(9), Err(PushError::Closed), "closed stays closed");
        assert_eq!(q.pop(), None, "drained queue reports end-of-work");
    });
}

//! Property-based tests of the wire protocol: serialized requests parse
//! back to exactly the same value, and malformed/oversized input is
//! rejected with the right typed error instead of crashing or desyncing
//! the line reader.

#![cfg(not(loom))]

use nestwx_core::{AllocPolicy, MappingKind, Strategy as ExecStrategy};
use nestwx_grid::{Domain, NestSpec};
use nestwx_netsim::IoMode;
use nestwx_serve::{
    ErrorKind, Line, LineReader, PredictParams, Request, RequestBody, ScenarioParams,
    MAX_LINE_BYTES,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Generators (the vendored proptest has no string/enum strategies, so
// everything is an index or tuple mapped into shape).
// ---------------------------------------------------------------------------

/// Identifier characters, deliberately including everything JSON must
/// escape: quotes, backslashes, control characters, and non-ASCII.
const ID_CHARS: &[char] = &[
    'a', 'Z', '0', '9', '_', '-', '.', ' ', '"', '\\', '/', '\n', '\t', '\r', '\u{1}', 'é', '→',
    '🌀',
];

fn arb_id() -> impl Strategy<Value = Option<String>> {
    (
        any::<bool>(),
        prop::collection::vec(0usize..ID_CHARS.len(), 1..12),
    )
        .prop_map(|(present, idx)| present.then(|| idx.into_iter().map(|i| ID_CHARS[i]).collect()))
}

fn arb_machine() -> impl Strategy<Value = String> {
    (any::<bool>(), 4u32..12).prop_map(|(bgp, pow)| {
        let family = if bgp { "bgp" } else { "bgl" };
        format!("{family}:{}", 1u32 << pow)
    })
}

fn arb_nest(max_parent_idx: usize) -> impl Strategy<Value = NestSpec> {
    (
        (1u32..2000, 1u32..2000),
        1u32..8,
        (0u32..500, 0u32..500),
        0usize..=max_parent_idx.max(1),
    )
        .prop_map(move |((nx, ny), r, (ox, oy), pi)| NestSpec {
            nx,
            ny,
            refine_ratio: r,
            offset: (ox, oy),
            // Index 0 doubles as "no parent nest" so first-level and
            // second-level nests both appear.
            parent_nest: (max_parent_idx > 0 && pi > 0).then(|| pi - 1),
        })
}

fn arb_nests() -> impl Strategy<Value = Vec<NestSpec>> {
    prop::collection::vec(arb_nest(2), 1..5)
}

fn arb_scenario_params() -> impl Strategy<Value = ScenarioParams> {
    (
        arb_machine(),
        (1u32..1000, 1u32..1000, 0.1f64..100.0),
        arb_nests(),
        (0usize..2, 0usize..3, 0usize..MappingKind::ALL.len()),
        (0usize..3, 1u32..500),
    )
        .prop_map(
            |(machine, (px, py, dx), nests, (si, ai, mi), (iom, every))| ScenarioParams {
                machine,
                parent: Domain::parent(px, py, dx),
                nests,
                strategy: [ExecStrategy::Sequential, ExecStrategy::Concurrent][si],
                alloc: [
                    AllocPolicy::Equal,
                    AllocPolicy::NaiveProportional,
                    AllocPolicy::HuffmanSplitTree,
                ][ai],
                mapping: MappingKind::ALL[mi],
                io: match iom {
                    0 => None,
                    1 => Some((IoMode::PnetCdf, every)),
                    _ => Some((IoMode::SplitFiles, every)),
                },
            },
        )
}

fn arb_client() -> impl Strategy<Value = Option<String>> {
    (
        any::<bool>(),
        prop::collection::vec(0usize..ID_CHARS.len(), 1..8),
    )
        .prop_map(|(present, idx)| present.then(|| idx.into_iter().map(|i| ID_CHARS[i]).collect()))
}

fn arb_deadline() -> impl Strategy<Value = Option<u64>> {
    (any::<bool>(), 1u64..600_000).prop_map(|(present, ms)| present.then_some(ms))
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        (arb_id(), arb_client(), arb_deadline(), any::<bool>()),
        0usize..7,
        arb_scenario_params(),
        arb_machine(),
        arb_nests(),
        (1u32..50, 1u32..=8),
    )
        .prop_map(
            |(
                (id, client, deadline_ms, explain),
                op,
                params,
                machine,
                nests,
                (iterations, workers),
            )| {
                let mut req = Request::new(
                    id,
                    match op {
                        0 => RequestBody::Predict(PredictParams { machine, nests }),
                        1 => RequestBody::Plan(params),
                        2 => RequestBody::Compare { params, iterations },
                        3 => RequestBody::Execute {
                            params,
                            iterations,
                            workers,
                        },
                        4 => RequestBody::Stats,
                        5 => RequestBody::Trace,
                        _ => RequestBody::Shutdown,
                    },
                );
                req.client = client;
                req.deadline_ms = deadline_ms;
                // `explain` only changes plan/compare responses, but the
                // field itself round-trips on every op.
                req.explain = explain;
                req
            },
        )
}

// ---------------------------------------------------------------------------
// Round-trip and rejection properties
// ---------------------------------------------------------------------------

proptest! {
    /// Every request the client can express round-trips exactly through
    /// the wire encoding — ids with escapes, floats, both nest levels, all
    /// strategy/alloc/mapping/io combinations.
    #[test]
    fn request_round_trips(req in arb_request()) {
        let line = req.to_json_line();
        prop_assert!(!line.contains('\n'), "wire line must be newline-free: {line}");
        prop_assert!(line.len() < MAX_LINE_BYTES, "request unexpectedly oversized");
        let parsed = Request::parse_line(&line);
        prop_assert_eq!(parsed.as_ref().ok(), Some(&req), "line was: {}", line);
    }

    /// Serialization is deterministic: the same request always produces
    /// byte-identical lines (a prerequisite for cache-key stability).
    #[test]
    fn serialization_is_deterministic(req in arb_request()) {
        prop_assert_eq!(req.to_json_line(), req.clone().to_json_line());
    }

    /// Arbitrary non-JSON garbage is rejected as `malformed`, never a
    /// panic. (Lines that happen to *be* valid JSON are filtered out.)
    #[test]
    fn garbage_is_malformed(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let line: String = bytes.iter().map(|&b| (b % 127) as char)
            .filter(|c| *c != '\n').collect();
        prop_assume!(serde_json::from_str(&line).is_err());
        let err = Request::parse_line(&line).unwrap_err();
        prop_assert_eq!(err.kind, ErrorKind::Malformed);
    }

    /// A wrong or missing protocol version is always `unsupported_version`,
    /// regardless of the rest of the request.
    #[test]
    fn wrong_version_rejected(v in 2u64..1000, req in arb_request()) {
        let line = req.to_json_line().replacen("{\"v\":1", &format!("{{\"v\":{v}"), 1);
        let err = Request::parse_line(&line).unwrap_err();
        prop_assert_eq!(err.kind, ErrorKind::UnsupportedVersion);
    }

    /// Unknown ops are `bad_request` (the version was fine, the verb is
    /// not).
    #[test]
    fn unknown_op_rejected(tag in 0u32..1_000_000) {
        let line = format!("{{\"v\":1,\"op\":\"frobnicate{tag}\"}}");
        let err = Request::parse_line(&line).unwrap_err();
        prop_assert_eq!(err.kind, ErrorKind::BadRequest);
    }

    /// The line reader flags any over-long line as oversized without
    /// buffering it, and resynchronizes on the next newline: the following
    /// request parses normally.
    #[test]
    fn oversized_lines_skip_and_resync(extra in 1usize..4096, req in arb_request()) {
        let next = req.to_json_line();
        let mut input = "x".repeat(MAX_LINE_BYTES + extra);
        input.push('\n');
        input.push_str(&next);
        input.push('\n');
        let mut reader = LineReader::new(input.as_bytes(), MAX_LINE_BYTES);
        match reader.next_line().unwrap() {
            Line::Oversized { .. } => {}
            other => prop_assert!(false, "expected Oversized, got {other:?}"),
        }
        match reader.next_line().unwrap() {
            Line::Data(line) => {
                prop_assert_eq!(Request::parse_line(&line).as_ref().ok(), Some(&req));
            }
            other => prop_assert!(false, "expected Data after resync, got {other:?}"),
        }
        prop_assert!(matches!(reader.next_line().unwrap(), Line::Eof));
    }

    /// Unknown fields anywhere in the request are tolerated (forward
    /// compatibility): injecting one changes nothing about the parse.
    #[test]
    fn unknown_fields_tolerated(req in arb_request(), tag in 0u64..1_000_000) {
        let line = req.to_json_line();
        let extended = format!(
            "{{\"future_field\":{tag},{}",
            line.strip_prefix('{').unwrap()
        );
        prop_assert_eq!(Request::parse_line(&extended).as_ref().ok(), Some(&req));
    }
}

// ---------------------------------------------------------------------------
// Deterministic edge cases that deserve exact assertions
// ---------------------------------------------------------------------------

#[test]
fn non_boolean_explain_is_bad_request_on_the_wire() {
    let err = Request::parse_line("{\"v\":1,\"op\":\"plan\",\"explain\":\"yes\"}").unwrap_err();
    assert_eq!(err.kind, ErrorKind::BadRequest);
}

#[test]
fn zero_deadline_is_bad_request() {
    let err = Request::parse_line("{\"v\":1,\"op\":\"stats\",\"deadline_ms\":0}").unwrap_err();
    assert_eq!(err.kind, ErrorKind::BadRequest);
}

#[test]
fn non_string_client_is_bad_request() {
    let err = Request::parse_line("{\"v\":1,\"op\":\"stats\",\"client\":42}").unwrap_err();
    assert_eq!(err.kind, ErrorKind::BadRequest);
}

#[test]
fn null_id_is_bad_request() {
    let err = Request::parse_line("{\"v\":1,\"id\":17,\"op\":\"stats\"}").unwrap_err();
    assert_eq!(err.kind, ErrorKind::BadRequest);
}

#[test]
fn plan_without_params_is_bad_request() {
    let err = Request::parse_line("{\"v\":1,\"op\":\"plan\"}").unwrap_err();
    assert_eq!(err.kind, ErrorKind::BadRequest);
}

#[test]
fn compare_zero_iterations_rejected() {
    let ok = "{\"v\":1,\"op\":\"compare\",\"params\":{\"machine\":\"bgl:64\",\
        \"parent\":{\"nx\":100,\"ny\":100,\"dx_km\":24.0},\
        \"nests\":[{\"nx\":30,\"ny\":30,\"r\":3,\"ox\":5,\"oy\":5}],\
        \"iterations\":0}}";
    let err = Request::parse_line(ok).unwrap_err();
    assert_eq!(err.kind, ErrorKind::BadRequest);
}

#[test]
fn execute_worker_and_iteration_caps_are_bad_request() {
    const PARAMS: &str = "\"machine\":\"bgl:64\",\
        \"parent\":{\"nx\":100,\"ny\":100,\"dx_km\":24.0},\
        \"nests\":[{\"nx\":30,\"ny\":30,\"r\":3,\"ox\":5,\"oy\":5}]";
    for bad in [
        "\"workers\":0",
        "\"workers\":9",
        "\"iterations\":0",
        "\"iterations\":1001",
    ] {
        let line = format!("{{\"v\":1,\"op\":\"execute\",\"params\":{{{PARAMS},{bad}}}}}");
        let err = Request::parse_line(&line).unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadRequest, "accepted {bad}");
    }
}

#[test]
fn execute_defaults_fill_workers_and_iterations() {
    let line = "{\"v\":1,\"op\":\"execute\",\"params\":{\"machine\":\"bgl:64\",\
        \"parent\":{\"nx\":100,\"ny\":100,\"dx_km\":24.0},\
        \"nests\":[{\"nx\":30,\"ny\":30,\"r\":3,\"ox\":5,\"oy\":5}]}}";
    let req = Request::parse_line(line).unwrap();
    let RequestBody::Execute {
        iterations,
        workers,
        ..
    } = req.body
    else {
        panic!("expected execute");
    };
    assert_eq!(iterations, 5);
    assert_eq!(workers, 2);
}

#[test]
fn defaults_fill_missing_knobs() {
    let line = "{\"v\":1,\"op\":\"plan\",\"params\":{\"machine\":\"bgl:64\",\
        \"parent\":{\"nx\":100,\"ny\":100,\"dx_km\":24.0},\
        \"nests\":[{\"nx\":30,\"ny\":30,\"r\":3,\"ox\":5,\"oy\":5}]}}";
    let req = Request::parse_line(line).unwrap();
    let RequestBody::Plan(p) = req.body else {
        panic!("expected plan");
    };
    assert_eq!(p.strategy, ExecStrategy::Concurrent);
    assert_eq!(p.alloc, AllocPolicy::HuffmanSplitTree);
    assert_eq!(p.mapping, MappingKind::Partition);
    assert_eq!(p.io, None);
}

//! End-to-end tests against a live in-process server: cache determinism
//! across every strategy/alloc/mapping combination, micro-batching
//! correctness, overload backpressure, and graceful drain.

#![cfg(not(loom))]

use nestwx_core::{fit_predictor, AllocPolicy, MappingKind, Planner, Strategy};
use nestwx_grid::{Domain, NestSpec};
use nestwx_serve::{
    parse_machine, spawn, Client, PredictParams, Request, RequestBody, ScenarioParams, ServeConfig,
};
use serde_json::Value;

const MACHINE: &str = "bgl:64";

fn parent() -> Domain {
    Domain::parent(286, 307, 24.0)
}

fn nests() -> Vec<NestSpec> {
    vec![
        NestSpec::new(150, 141, 3, (10, 12)),
        NestSpec::new(96, 90, 3, (180, 170)),
    ]
}

fn local_server() -> nestwx_serve::ServerHandle {
    spawn(ServeConfig::new("127.0.0.1:0")).expect("spawn server")
}

fn plan_request(id: &str, strategy: Strategy, alloc: AllocPolicy, mapping: MappingKind) -> Request {
    Request {
        id: Some(id.into()),
        body: RequestBody::Plan(ScenarioParams {
            machine: MACHINE.into(),
            parent: parent(),
            nests: nests(),
            strategy,
            alloc,
            mapping,
            io: None,
        }),
    }
}

fn shutdown_clean(handle: nestwx_serve::ServerHandle, client: &mut Client) {
    let resp = client
        .call(&Request {
            id: Some("bye".into()),
            body: RequestBody::Shutdown,
        })
        .expect("shutdown call");
    assert!(resp.ok(), "shutdown rejected: {}", resp.raw);
    let report = handle.wait();
    assert!(report.clean(), "unclean drain: {report:?}");
}

fn u64s(v: &Value, key: &str) -> u64 {
    v.get(key).and_then(Value::as_u64).unwrap_or(u64::MAX)
}

/// The tentpole guarantee: for every strategy × alloc × mapping
/// combination, the response served from cache is byte-identical to the
/// first (freshly computed) one, and both match an `ExecutionPlan`
/// computed directly with `Planner` — same partitions, same predicted
/// ratios, same grid.
#[test]
fn cached_plan_identical_to_fresh_across_all_combinations() {
    let handle = local_server();
    let mut client = Client::connect(handle.addr()).expect("connect");
    let machine = parse_machine(MACHINE).expect("machine");
    // Pre-fit with the server's documented seed so the direct planner and
    // the service resolve the exact same predictor (and the test does not
    // re-fit per combination).
    let predictor = fit_predictor(&machine, 0xBEEF);

    let strategies = [Strategy::Sequential, Strategy::Concurrent];
    let allocs = [
        AllocPolicy::Equal,
        AllocPolicy::NaiveProportional,
        AllocPolicy::HuffmanSplitTree,
    ];
    for (si, &strategy) in strategies.iter().enumerate() {
        for (ai, &alloc) in allocs.iter().enumerate() {
            for (mi, &mapping) in MappingKind::ALL.iter().enumerate() {
                let id = format!("c{si}{ai}{mi}");
                let req = plan_request(&id, strategy, alloc, mapping);
                let fresh = client.call(&req).expect("fresh plan");
                assert!(fresh.ok(), "plan rejected: {}", fresh.raw);
                let cached = client.call(&req).expect("cached plan");
                assert_eq!(
                    fresh.raw, cached.raw,
                    "cached response not byte-identical ({strategy:?}/{alloc:?}/{mapping:?})"
                );

                let plan = Planner::new(machine.clone())
                    .strategy(strategy)
                    .alloc_policy(alloc)
                    .mapping(mapping)
                    .with_predictor(predictor.clone())
                    .plan(&parent(), &nests())
                    .expect("direct plan");
                let result = cached.result().expect("result payload");
                assert_eq!(u64s(result, "ranks"), u64::from(plan.machine.ranks()));
                let ratios: Vec<f64> = result
                    .get("predicted_ratios")
                    .and_then(Value::as_array)
                    .expect("predicted_ratios")
                    .iter()
                    .map(|v| v.as_f64().unwrap())
                    .collect();
                assert_eq!(ratios, plan.predicted_ratios, "ratios diverged");
                let parts = result
                    .get("partitions")
                    .and_then(Value::as_array)
                    .expect("partitions");
                assert_eq!(parts.len(), plan.partitions.len());
                for (got, want) in parts.iter().zip(&plan.partitions) {
                    assert_eq!(u64s(got, "nest"), want.domain as u64);
                    assert_eq!(u64s(got, "x"), u64::from(want.rect.x0));
                    assert_eq!(u64s(got, "y"), u64::from(want.rect.y0));
                    assert_eq!(u64s(got, "w"), u64::from(want.rect.w));
                    assert_eq!(u64s(got, "h"), u64::from(want.rect.h));
                    assert_eq!(u64s(got, "ranks"), want.rect.area());
                }
            }
        }
    }

    // Every combination was looked up twice: once cold, once hot.
    let stats = client
        .call(&Request {
            id: None,
            body: RequestBody::Stats,
        })
        .expect("stats");
    let cache = stats
        .result()
        .and_then(|r| r.get("cache"))
        .cloned()
        .unwrap();
    let combos = 2 * 3 * MappingKind::ALL.len() as u64;
    assert_eq!(u64s(&cache, "misses"), combos);
    assert_eq!(u64s(&cache, "hits"), combos);
    shutdown_clean(handle, &mut client);
}

/// Concurrent predicts that share a machine are micro-batched, and every
/// client still receives exactly the ratios the predictor computes
/// directly.
#[test]
fn batched_predicts_match_direct_predictor() {
    let handle = local_server();
    let machine = parse_machine(MACHINE).expect("machine");
    let features: Vec<nestwx_grid::DomainFeatures> = nests()
        .iter()
        .map(nestwx_grid::DomainFeatures::from)
        .collect();
    let expected = fit_predictor(&machine, 0xBEEF)
        .relative_times(&features)
        .expect("direct relative times");

    let addr = handle.addr().to_string();
    let clients: Vec<_> = (0..6)
        .map(|t| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).expect("connect");
                let req = Request {
                    id: Some(format!("p{t}")),
                    body: RequestBody::Predict(PredictParams {
                        machine: MACHINE.into(),
                        nests: nests(),
                    }),
                };
                let resp = c.call(&req).expect("predict");
                assert!(resp.ok(), "predict rejected: {}", resp.raw);
                resp.result()
                    .and_then(|r| r.get("relative_times"))
                    .and_then(Value::as_array)
                    .expect("relative_times")
                    .iter()
                    .map(|v| v.as_f64().unwrap())
                    .collect::<Vec<f64>>()
            })
        })
        .collect();
    for c in clients {
        let got = c.join().expect("client thread");
        assert_eq!(
            got, expected,
            "batched predict diverged from direct predictor"
        );
    }

    let mut ctl = Client::connect(handle.addr()).expect("connect");
    let stats = ctl
        .call(&Request {
            id: None,
            body: RequestBody::Stats,
        })
        .expect("stats");
    let batch = stats
        .result()
        .and_then(|r| r.get("batch"))
        .cloned()
        .unwrap();
    assert!(
        u64s(&batch, "batched_requests") >= 6,
        "requests not batched: {batch:?}"
    );
    assert!(u64s(&batch, "batches") >= 1);
    shutdown_clean(handle, &mut ctl);
}

/// With one worker and a one-slot queue, a burst of distinct cold scenarios
/// must produce typed `overloaded` errors — and the server must keep
/// serving normally afterwards (backpressure, not collapse).
#[test]
fn overload_produces_typed_errors_then_recovers() {
    let mut cfg = ServeConfig::new("127.0.0.1:0");
    cfg.workers = 1;
    cfg.queue_depth = 1;
    let handle = spawn(cfg).expect("spawn server");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Distinct cold keys fired from concurrent connections (responses are
    // serialized per connection, so backpressure only shows under
    // cross-connection concurrency). The first job pins the single worker
    // behind a predictor fit, the second fills the one-slot queue, the
    // rest must bounce with a typed `overloaded` error.
    let strategies = [Strategy::Sequential, Strategy::Concurrent];
    let raws: Vec<Request> = (0..8)
        .map(|i| {
            plan_request(
                &format!("b{i}"),
                strategies[i / MappingKind::ALL.len()],
                AllocPolicy::HuffmanSplitTree,
                MappingKind::ALL[i % MappingKind::ALL.len()],
            )
        })
        .collect();
    let addr = handle.addr().to_string();
    let burst: Vec<_> = raws
        .iter()
        .cloned()
        .map(|req| {
            let addr = addr.clone();
            std::thread::spawn(move || -> String {
                let mut c = Client::connect(&addr).expect("burst connect");
                let resp = c.call(&req).expect("burst call");
                if resp.ok() {
                    "ok".into()
                } else {
                    resp.error_kind().unwrap_or("?").to_string()
                }
            })
        })
        .collect();
    let outcomes: Vec<String> = burst
        .into_iter()
        .map(|h| h.join().expect("burst thread"))
        .collect();
    let ok = outcomes.iter().filter(|o| *o == "ok").count();
    let overloaded = outcomes.iter().filter(|o| *o == "overloaded").count();
    assert_eq!(
        ok + overloaded,
        outcomes.len(),
        "unexpected outcome in burst: {outcomes:?}"
    );
    assert!(ok >= 1, "no request survived the burst: {outcomes:?}");
    assert!(
        overloaded >= 1,
        "bounded queue never pushed back: {outcomes:?}"
    );

    // Recovery: the same scenarios succeed once the burst is over.
    for req in &raws {
        let resp = client.call(req).expect("retry");
        assert!(resp.ok(), "server did not recover: {}", resp.raw);
    }
    let stats = client
        .call(&Request {
            id: None,
            body: RequestBody::Stats,
        })
        .expect("stats");
    let queue = stats
        .result()
        .and_then(|r| r.get("queue"))
        .cloned()
        .unwrap();
    assert!(u64s(&queue, "rejected_full") >= overloaded as u64);
    shutdown_clean(handle, &mut client);
}

/// Shutdown drains: in-flight work is answered, the drain report balances
/// requests against responses, and nothing is left in queue or batcher.
#[test]
fn graceful_shutdown_drains_inflight_work() {
    let handle = local_server();
    let mut client = Client::connect(handle.addr()).expect("connect");
    for i in 0..4 {
        let req = plan_request(
            &format!("d{i}"),
            Strategy::Concurrent,
            AllocPolicy::NaiveProportional,
            MappingKind::ALL[i % MappingKind::ALL.len()],
        );
        assert!(client.call(&req).expect("plan").ok());
    }
    let resp = client
        .call(&Request {
            id: Some("bye".into()),
            body: RequestBody::Shutdown,
        })
        .expect("shutdown");
    assert!(resp.ok());
    let addr = handle.addr().to_string();
    let report = handle.wait();
    assert!(report.clean(), "unclean drain: {report:?}");
    assert_eq!(report.requests_total, report.responses_total);
    assert_eq!(report.queue_residual, 0);
    assert_eq!(report.batch_residual, 0);
    assert_eq!(report.live_conns, 0);

    // New connections are refused or immediately closed after drain.
    assert!(Client::connect(addr)
        .and_then(|mut c| c.call(&Request {
            id: None,
            body: RequestBody::Stats
        }))
        .is_err());
}

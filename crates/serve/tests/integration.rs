//! End-to-end tests against a live in-process server: cache determinism
//! across every strategy/alloc/mapping combination, micro-batching
//! correctness, overload backpressure, and graceful drain.

#![cfg(not(loom))]

use nestwx_core::{fit_predictor, AllocPolicy, MappingKind, Planner, Strategy};
use nestwx_grid::{Domain, NestSpec};
use nestwx_serve::{
    parse_machine, spawn, Client, PredictParams, Request, RequestBody, ScenarioParams, ServeConfig,
};
use serde_json::Value;

const MACHINE: &str = "bgl:64";

fn parent() -> Domain {
    Domain::parent(286, 307, 24.0)
}

fn nests() -> Vec<NestSpec> {
    vec![
        NestSpec::new(150, 141, 3, (10, 12)),
        NestSpec::new(96, 90, 3, (180, 170)),
    ]
}

fn local_server() -> nestwx_serve::ServerHandle {
    spawn(ServeConfig::new("127.0.0.1:0")).expect("spawn server")
}

fn plan_request(id: &str, strategy: Strategy, alloc: AllocPolicy, mapping: MappingKind) -> Request {
    Request::new(
        Some(id.into()),
        RequestBody::Plan(ScenarioParams {
            machine: MACHINE.into(),
            parent: parent(),
            nests: nests(),
            strategy,
            alloc,
            mapping,
            io: None,
        }),
    )
}

fn shutdown_clean(handle: nestwx_serve::ServerHandle, client: &mut Client) {
    let resp = client
        .call(&Request::new(Some("bye".into()), RequestBody::Shutdown))
        .expect("shutdown call");
    assert!(resp.ok(), "shutdown rejected: {}", resp.raw);
    let report = handle.wait();
    assert!(report.clean(), "unclean drain: {report:?}");
}

fn u64s(v: &Value, key: &str) -> u64 {
    v.get(key).and_then(Value::as_u64).unwrap_or(u64::MAX)
}

/// The `execute` endpoint end to end: a served fleet run reports the same
/// digests as a fleet driven directly with the same plan, worker counts
/// 1 and 2 agree bitwise, and the fleet obs envelope rides along.
#[test]
fn execute_fleet_matches_direct_run_across_worker_counts() {
    let handle = local_server();
    let mut client = Client::connect(handle.addr()).expect("connect");
    let exec_parent = Domain::parent(48, 42, 24.0);
    let exec_nests = vec![
        NestSpec::new(24, 24, 3, (3, 3)),
        NestSpec::new(16, 16, 2, (26, 22)),
    ];
    let params = ScenarioParams {
        machine: MACHINE.into(),
        parent: exec_parent.clone(),
        nests: exec_nests.clone(),
        strategy: Strategy::Concurrent,
        alloc: AllocPolicy::HuffmanSplitTree,
        mapping: MappingKind::Partition,
        io: None,
    };
    let iterations = 4u32;

    // The direct reference: same planner path the server uses (same
    // predictor seed), fleet driven in this process at one worker.
    let machine = parse_machine(MACHINE).expect("machine");
    let plan = Planner::new(machine.clone())
        .strategy(Strategy::Concurrent)
        .alloc_policy(AllocPolicy::HuffmanSplitTree)
        .mapping(MappingKind::Partition)
        .with_predictor(fit_predictor(&machine, 0xBEEF))
        .plan(&exec_parent, &exec_nests)
        .expect("direct plan");
    let partitions: Vec<(usize, u64)> = plan
        .partitions
        .iter()
        .map(|p| (p.domain, p.rect.area()))
        .collect();
    let reference = nestwx_fleet::execute_in_process(
        &exec_parent,
        &exec_nests,
        iterations as u64,
        plan.machine.ranks() as u64,
        &partitions,
        &nestwx_fleet::FleetConfig {
            workers: 1,
            ..nestwx_fleet::FleetConfig::from_env()
        },
    )
    .expect("direct fleet run");

    let mut digests = Vec::new();
    for workers in [1u32, 2] {
        let req = Request::new(
            Some(format!("x{workers}")),
            RequestBody::Execute {
                params: params.clone(),
                iterations,
                workers,
            },
        );
        let resp = client.call(&req).expect("execute call");
        assert!(resp.ok(), "execute rejected: {}", resp.raw);
        let result = resp.result().expect("result payload");
        assert_eq!(u64s(result, "workers"), u64::from(workers));
        let report = result.get("report").expect("report block");
        assert_eq!(u64s(report, "iterations"), u64::from(iterations));
        assert_eq!(
            report.get("digest").and_then(Value::as_str),
            Some(reference.report.digest.as_str()),
            "served digest diverged from the direct fleet run ({workers} workers)"
        );
        assert_eq!(
            report.get("parent_digest").and_then(Value::as_str),
            Some(reference.report.parent_digest.as_str())
        );
        let fleet = result.get("fleet").expect("fleet obs envelope");
        assert_eq!(
            fleet.get("schema").and_then(Value::as_str),
            Some("nestwx-obs-fleet-summary")
        );
        assert_eq!(u64s(fleet, "workers"), u64::from(workers));
        assert_eq!(
            fleet
                .get("worker_rows")
                .and_then(Value::as_array)
                .map(Vec::len),
            Some(workers as usize)
        );
        digests.push(
            report
                .get("digest")
                .and_then(Value::as_str)
                .unwrap()
                .to_string(),
        );
    }
    assert_eq!(digests[0], digests[1], "worker counts disagreed");

    // The run shows up in the stats table as its own endpoint row.
    let stats = client
        .call(&Request::new(Some("s".into()), RequestBody::Stats))
        .expect("stats call");
    let snapshot = stats.result().expect("stats payload");
    let execute_row = snapshot
        .get("endpoints")
        .and_then(|e| e.get("execute"))
        .expect("execute endpoint row");
    assert_eq!(u64s(execute_row, "requests"), 2);
    assert_eq!(u64s(execute_row, "errors"), 0);
    shutdown_clean(handle, &mut client);
}

/// The tentpole guarantee: for every strategy × alloc × mapping
/// combination, the response served from cache is byte-identical to the
/// first (freshly computed) one, and both match an `ExecutionPlan`
/// computed directly with `Planner` — same partitions, same predicted
/// ratios, same grid.
#[test]
fn cached_plan_identical_to_fresh_across_all_combinations() {
    let handle = local_server();
    let mut client = Client::connect(handle.addr()).expect("connect");
    let machine = parse_machine(MACHINE).expect("machine");
    // Pre-fit with the server's documented seed so the direct planner and
    // the service resolve the exact same predictor (and the test does not
    // re-fit per combination).
    let predictor = fit_predictor(&machine, 0xBEEF);

    let strategies = [Strategy::Sequential, Strategy::Concurrent];
    let allocs = [
        AllocPolicy::Equal,
        AllocPolicy::NaiveProportional,
        AllocPolicy::HuffmanSplitTree,
    ];
    for (si, &strategy) in strategies.iter().enumerate() {
        for (ai, &alloc) in allocs.iter().enumerate() {
            for (mi, &mapping) in MappingKind::ALL.iter().enumerate() {
                let id = format!("c{si}{ai}{mi}");
                let req = plan_request(&id, strategy, alloc, mapping);
                let fresh = client.call(&req).expect("fresh plan");
                assert!(fresh.ok(), "plan rejected: {}", fresh.raw);
                let cached = client.call(&req).expect("cached plan");
                assert_eq!(
                    fresh.raw, cached.raw,
                    "cached response not byte-identical ({strategy:?}/{alloc:?}/{mapping:?})"
                );

                let plan = Planner::new(machine.clone())
                    .strategy(strategy)
                    .alloc_policy(alloc)
                    .mapping(mapping)
                    .with_predictor(predictor.clone())
                    .plan(&parent(), &nests())
                    .expect("direct plan");
                let result = cached.result().expect("result payload");
                assert_eq!(u64s(result, "ranks"), u64::from(plan.machine.ranks()));
                let ratios: Vec<f64> = result
                    .get("predicted_ratios")
                    .and_then(Value::as_array)
                    .expect("predicted_ratios")
                    .iter()
                    .map(|v| v.as_f64().unwrap())
                    .collect();
                assert_eq!(ratios, plan.predicted_ratios, "ratios diverged");
                let parts = result
                    .get("partitions")
                    .and_then(Value::as_array)
                    .expect("partitions");
                assert_eq!(parts.len(), plan.partitions.len());
                for (got, want) in parts.iter().zip(&plan.partitions) {
                    assert_eq!(u64s(got, "nest"), want.domain as u64);
                    assert_eq!(u64s(got, "x"), u64::from(want.rect.x0));
                    assert_eq!(u64s(got, "y"), u64::from(want.rect.y0));
                    assert_eq!(u64s(got, "w"), u64::from(want.rect.w));
                    assert_eq!(u64s(got, "h"), u64::from(want.rect.h));
                    assert_eq!(u64s(got, "ranks"), want.rect.area());
                }
            }
        }
    }

    // Every combination was looked up twice: once cold, once hot.
    let stats = client
        .call(&Request::new(None, RequestBody::Stats))
        .expect("stats");
    let cache = stats
        .result()
        .and_then(|r| r.get("cache"))
        .cloned()
        .unwrap();
    let combos = 2 * 3 * MappingKind::ALL.len() as u64;
    assert_eq!(u64s(&cache, "misses"), combos);
    assert_eq!(u64s(&cache, "hits"), combos);
    shutdown_clean(handle, &mut client);
}

/// Concurrent predicts that share a machine are micro-batched, and every
/// client still receives exactly the ratios the predictor computes
/// directly.
#[test]
fn batched_predicts_match_direct_predictor() {
    let handle = local_server();
    let machine = parse_machine(MACHINE).expect("machine");
    let features: Vec<nestwx_grid::DomainFeatures> = nests()
        .iter()
        .map(nestwx_grid::DomainFeatures::from)
        .collect();
    let expected = fit_predictor(&machine, 0xBEEF)
        .relative_times(&features)
        .expect("direct relative times");

    let addr = handle.addr().to_string();
    let clients: Vec<_> = (0..6)
        .map(|t| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).expect("connect");
                let req = Request::new(
                    Some(format!("p{t}")),
                    RequestBody::Predict(PredictParams {
                        machine: MACHINE.into(),
                        nests: nests(),
                    }),
                );
                let resp = c.call(&req).expect("predict");
                assert!(resp.ok(), "predict rejected: {}", resp.raw);
                resp.result()
                    .and_then(|r| r.get("relative_times"))
                    .and_then(Value::as_array)
                    .expect("relative_times")
                    .iter()
                    .map(|v| v.as_f64().unwrap())
                    .collect::<Vec<f64>>()
            })
        })
        .collect();
    for c in clients {
        let got = c.join().expect("client thread");
        assert_eq!(
            got, expected,
            "batched predict diverged from direct predictor"
        );
    }

    let mut ctl = Client::connect(handle.addr()).expect("connect");
    let stats = ctl
        .call(&Request::new(None, RequestBody::Stats))
        .expect("stats");
    let batch = stats
        .result()
        .and_then(|r| r.get("batch"))
        .cloned()
        .unwrap();
    assert!(
        u64s(&batch, "batched_requests") >= 6,
        "requests not batched: {batch:?}"
    );
    assert!(u64s(&batch, "batches") >= 1);
    shutdown_clean(handle, &mut ctl);
}

/// With one worker and a one-slot queue, a burst of distinct cold scenarios
/// must produce typed `overloaded` errors — and the server must keep
/// serving normally afterwards (backpressure, not collapse).
#[test]
fn overload_produces_typed_errors_then_recovers() {
    let mut cfg = ServeConfig::new("127.0.0.1:0");
    cfg.workers = 1;
    cfg.queue_depth = 1;
    let handle = spawn(cfg).expect("spawn server");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Distinct cold keys fired from concurrent connections (responses are
    // serialized per connection, so backpressure only shows under
    // cross-connection concurrency). The first job pins the single worker
    // behind a predictor fit, the second fills the one-slot queue, the
    // rest must bounce with a typed `overloaded` error.
    let strategies = [Strategy::Sequential, Strategy::Concurrent];
    let raws: Vec<Request> = (0..8)
        .map(|i| {
            plan_request(
                &format!("b{i}"),
                strategies[i / MappingKind::ALL.len()],
                AllocPolicy::HuffmanSplitTree,
                MappingKind::ALL[i % MappingKind::ALL.len()],
            )
        })
        .collect();
    let addr = handle.addr().to_string();
    let burst: Vec<_> = raws
        .iter()
        .cloned()
        .map(|req| {
            let addr = addr.clone();
            std::thread::spawn(move || -> String {
                let mut c = Client::connect(&addr).expect("burst connect");
                let resp = c.call(&req).expect("burst call");
                if resp.ok() {
                    "ok".into()
                } else {
                    resp.error_kind().unwrap_or("?").to_string()
                }
            })
        })
        .collect();
    let outcomes: Vec<String> = burst
        .into_iter()
        .map(|h| h.join().expect("burst thread"))
        .collect();
    let ok = outcomes.iter().filter(|o| *o == "ok").count();
    let overloaded = outcomes.iter().filter(|o| *o == "overloaded").count();
    assert_eq!(
        ok + overloaded,
        outcomes.len(),
        "unexpected outcome in burst: {outcomes:?}"
    );
    assert!(ok >= 1, "no request survived the burst: {outcomes:?}");
    assert!(
        overloaded >= 1,
        "bounded queue never pushed back: {outcomes:?}"
    );

    // Recovery: the same scenarios succeed once the burst is over.
    for req in &raws {
        let resp = client.call(req).expect("retry");
        assert!(resp.ok(), "server did not recover: {}", resp.raw);
    }
    let stats = client
        .call(&Request::new(None, RequestBody::Stats))
        .expect("stats");
    let queue = stats
        .result()
        .and_then(|r| r.get("queue"))
        .cloned()
        .unwrap();
    assert!(u64s(&queue, "rejected_full") >= overloaded as u64);
    shutdown_clean(handle, &mut client);
}

/// Shutdown drains: in-flight work is answered, the drain report balances
/// requests against responses, and nothing is left in queue or batcher.
#[test]
fn graceful_shutdown_drains_inflight_work() {
    let handle = local_server();
    let mut client = Client::connect(handle.addr()).expect("connect");
    for i in 0..4 {
        let req = plan_request(
            &format!("d{i}"),
            Strategy::Concurrent,
            AllocPolicy::NaiveProportional,
            MappingKind::ALL[i % MappingKind::ALL.len()],
        );
        assert!(client.call(&req).expect("plan").ok());
    }
    let resp = client
        .call(&Request::new(Some("bye".into()), RequestBody::Shutdown))
        .expect("shutdown");
    assert!(resp.ok());
    let addr = handle.addr().to_string();
    let report = handle.wait();
    assert!(report.clean(), "unclean drain: {report:?}");
    assert_eq!(report.requests_total, report.responses_total);
    assert_eq!(report.queue_residual, 0);
    assert_eq!(report.batch_residual, 0);
    assert_eq!(report.live_conns, 0);

    // New connections are refused or immediately closed after drain.
    assert!(Client::connect(addr)
        .and_then(|mut c| c.call(&Request::new(None, RequestBody::Stats)))
        .is_err());
}

/// Pipelined requests on one connection are answered in request order —
/// the in-order response slots guarantee `raws[i]` answers `lines[i]` even
/// when some are cache hits and some need a worker.
#[test]
fn pipelined_responses_arrive_in_request_order() {
    let handle = local_server();
    let mut client = Client::connect(handle.addr()).expect("connect");
    // Warm two scenarios so the pipeline mixes hot hits with cold misses.
    for (i, mapping) in MappingKind::ALL.iter().take(2).enumerate() {
        let req = plan_request(
            &format!("warm{i}"),
            Strategy::Concurrent,
            AllocPolicy::HuffmanSplitTree,
            *mapping,
        );
        assert!(client.call(&req).expect("warm").ok());
    }
    let lines: Vec<String> = (0..12)
        .map(|i| {
            plan_request(
                &format!("p{i}"),
                Strategy::Concurrent,
                AllocPolicy::HuffmanSplitTree,
                MappingKind::ALL[i % 2],
            )
            .to_json_line()
        })
        .collect();
    let raws = client.call_pipelined(&lines).expect("pipelined batch");
    assert_eq!(raws.len(), lines.len());
    for (i, raw) in raws.iter().enumerate() {
        let v: Value = serde_json::from_str(raw).expect("response json");
        assert_eq!(
            v.get("id").and_then(Value::as_str),
            Some(format!("p{i}").as_str()),
            "response {i} out of order: {raw}"
        );
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    }
    shutdown_clean(handle, &mut client);
}

/// A request whose deadline passes while it is queued behind a busy worker
/// is answered with a typed `deadline_exceeded` by the sweep — and the
/// drain still balances because the sweep's answer counts as the response.
#[test]
fn queued_request_past_deadline_gets_typed_error() {
    let mut cfg = ServeConfig::new("127.0.0.1:0");
    cfg.workers = 1;
    let handle = spawn(cfg).expect("spawn server");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // First line pins the single worker behind a full strategy comparison
    // (two simulated runs — reliably longer than 1 ms, where a bare
    // predictor fit is not on a fast machine); the second (1 ms deadline)
    // expires in the queue before the worker reaches it.
    let pin = Request::new(
        Some("pin".into()),
        RequestBody::Compare {
            params: ScenarioParams {
                machine: MACHINE.into(),
                parent: parent(),
                nests: nests(),
                strategy: Strategy::Concurrent,
                alloc: AllocPolicy::HuffmanSplitTree,
                mapping: MappingKind::Partition,
                io: None,
            },
            iterations: 5,
        },
    );
    let mut doomed = plan_request(
        "doomed",
        Strategy::Sequential,
        AllocPolicy::Equal,
        MappingKind::ALL[1],
    );
    doomed.deadline_ms = Some(1);
    let raws = client
        .call_pipelined(&[pin.to_json_line(), doomed.to_json_line()])
        .expect("pipelined pair");
    let pinned: Value = serde_json::from_str(&raws[0]).expect("pin json");
    assert_eq!(pinned.get("ok").and_then(Value::as_bool), Some(true));
    let expired: Value = serde_json::from_str(&raws[1]).expect("doomed json");
    assert_eq!(
        expired
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Value::as_str),
        Some("deadline_exceeded"),
        "expected deadline_exceeded: {}",
        raws[1]
    );

    let stats = client
        .call(&Request::new(None, RequestBody::Stats))
        .expect("stats");
    let limits = stats
        .result()
        .and_then(|r| r.get("limits"))
        .cloned()
        .unwrap();
    assert!(u64s(&limits, "deadline_expired") >= 1, "{limits:?}");

    let resp = client
        .call(&Request::new(Some("bye".into()), RequestBody::Shutdown))
        .expect("shutdown");
    assert!(resp.ok());
    let report = handle.wait();
    assert!(report.clean(), "unclean drain: {report:?}");
    assert!(report.deadline_expired >= 1, "{report:?}");
}

/// The per-client token bucket sheds requests beyond the burst with a
/// typed `rate_limited` error; requests carrying no client identity are
/// exempt, and control requests cost nothing.
#[test]
fn rate_limited_clients_shed_while_anonymous_pass() {
    let mut cfg = ServeConfig::new("127.0.0.1:0");
    cfg.rate = 1; // 1 token/s — no meaningful refill within the test
    cfg.burst = 4; // covers exactly two plan calls (cost 2 each)
    let handle = spawn(cfg).expect("spawn server");
    let mut client = Client::connect(handle.addr()).expect("connect");

    let charged = |i: usize| {
        let mut req = plan_request(
            &format!("r{i}"),
            Strategy::Concurrent,
            AllocPolicy::HuffmanSplitTree,
            MappingKind::Partition,
        );
        req.client = Some("tenant-a".into());
        req
    };
    let first = client.call(&charged(0)).expect("first plan");
    assert!(first.ok(), "burst must cover the first call: {}", first.raw);
    let second = client.call(&charged(1)).expect("second plan");
    assert!(second.ok(), "burst must cover a cached hit too");
    let third = client.call(&charged(2)).expect("third plan");
    assert_eq!(
        third.error_kind(),
        Some("rate_limited"),
        "empty bucket must shed: {}",
        third.raw
    );

    // No client field → exempt from rate limiting entirely.
    let anon = client
        .call(&plan_request(
            "anon",
            Strategy::Concurrent,
            AllocPolicy::HuffmanSplitTree,
            MappingKind::Partition,
        ))
        .expect("anonymous plan");
    assert!(anon.ok(), "anonymous requests are exempt: {}", anon.raw);

    // Stats is a zero-cost control endpoint even for the shed client.
    let mut stats_req = Request::new(None, RequestBody::Stats);
    stats_req.client = Some("tenant-a".into());
    let stats = client.call(&stats_req).expect("stats");
    assert!(stats.ok(), "control endpoints cost nothing: {}", stats.raw);
    let limits = stats
        .result()
        .and_then(|r| r.get("limits"))
        .cloned()
        .unwrap();
    assert!(u64s(&limits, "rate_shed") >= 1, "{limits:?}");
    assert!(u64s(&limits, "clients_tracked") >= 1, "{limits:?}");

    let resp = client
        .call(&Request::new(Some("bye".into()), RequestBody::Shutdown))
        .expect("shutdown");
    assert!(resp.ok());
    let report = handle.wait();
    assert!(report.clean(), "unclean drain: {report:?}");
    assert!(report.rate_shed >= 1, "shed must appear in the report");
}

/// An idle connection past the keep-alive cap is reaped by the reader —
/// and the reap still leaves the drain clean.
#[test]
fn idle_connections_are_reaped() {
    let mut cfg = ServeConfig::new("127.0.0.1:0");
    cfg.idle_ms = 50;
    let handle = spawn(cfg).expect("spawn server");
    let mut idler = Client::connect(handle.addr()).expect("connect");
    let resp = idler
        .call(&Request::new(Some("hi".into()), RequestBody::Stats))
        .expect("stats before idling");
    assert!(resp.ok());

    std::thread::sleep(std::time::Duration::from_millis(400));
    // The server closed the idle connection; the next round-trip fails
    // (EOF on read, or a send error once the kernel notices).
    let outcome = idler.call(&Request::new(Some("late".into()), RequestBody::Stats));
    assert!(outcome.is_err(), "idle connection survived the reaper");

    let mut ctl = Client::connect(handle.addr()).expect("fresh connect");
    shutdown_clean(handle, &mut ctl);
}

/// The predictor map is LRU-bounded: fitting more machines than the cap
/// evicts the stalest predictor instead of growing without bound.
#[test]
fn predictor_map_is_bounded_and_evicts() {
    let mut cfg = ServeConfig::new("127.0.0.1:0");
    cfg.predictors = 1;
    let handle = spawn(cfg).expect("spawn server");
    let mut client = Client::connect(handle.addr()).expect("connect");

    for (i, machine) in ["bgl:64", "bgl:128"].iter().enumerate() {
        let req = Request::new(
            Some(format!("m{i}")),
            RequestBody::Predict(PredictParams {
                machine: (*machine).into(),
                nests: nests(),
            }),
        );
        let resp = client.call(&req).expect("predict");
        assert!(resp.ok(), "predict rejected: {}", resp.raw);
    }
    let stats = client
        .call(&Request::new(None, RequestBody::Stats))
        .expect("stats");
    let limits = stats
        .result()
        .and_then(|r| r.get("limits"))
        .cloned()
        .unwrap();
    assert_eq!(u64s(&limits, "predictors_cached"), 1, "{limits:?}");
    assert!(u64s(&limits, "predictor_evictions") >= 1, "{limits:?}");
    shutdown_clean(handle, &mut client);
}

/// The flight recorder's core contract: with recording on and off, the
/// same request sequence produces byte-identical response lines on every
/// endpoint — spans ride the completion channel and the per-connection
/// span queue, never the wire.
#[test]
fn responses_byte_identical_recording_on_and_off() {
    let mut on_cfg = ServeConfig::new("127.0.0.1:0");
    on_cfg.trace = true;
    on_cfg.trace_slow_us = 1; // everything is "slow" — stress the slow log too
    let mut off_cfg = ServeConfig::new("127.0.0.1:0");
    off_cfg.trace = false;
    let on = spawn(on_cfg).expect("spawn recording server");
    let off = spawn(off_cfg).expect("spawn silent server");
    let mut c_on = Client::connect(on.addr()).expect("connect on");
    let mut c_off = Client::connect(off.addr()).expect("connect off");

    let mut script: Vec<Request> = Vec::new();
    // Plan: cold, cached, then hot (third identical raw line).
    for i in 0..3 {
        script.push(plan_request(
            &format!("p{i}"),
            Strategy::Concurrent,
            AllocPolicy::HuffmanSplitTree,
            MappingKind::Partition,
        ));
    }
    script.push(Request::new(
        Some("cmp".into()),
        RequestBody::Compare {
            params: ScenarioParams {
                machine: MACHINE.into(),
                parent: parent(),
                nests: nests(),
                strategy: Strategy::Concurrent,
                alloc: AllocPolicy::HuffmanSplitTree,
                mapping: MappingKind::Partition,
                io: None,
            },
            iterations: 2,
        },
    ));
    script.push(Request::new(
        Some("pr".into()),
        RequestBody::Predict(PredictParams {
            machine: MACHINE.into(),
            nests: nests(),
        }),
    ));
    // A protocol error must render identically too.
    for req in &script {
        let a = c_on.call(req).expect("recording server");
        let b = c_off.call(req).expect("silent server");
        assert_eq!(a.raw, b.raw, "response diverged for {:?}", req.id);
    }

    // The recording server actually recorded something.
    let trace = c_on
        .call(&Request::new(Some("t".into()), RequestBody::Trace))
        .expect("trace");
    assert!(trace.ok(), "trace rejected: {}", trace.raw);
    let result = trace.result().expect("trace result").clone();
    let summary = result.get("summary").expect("summary");
    assert!(
        u64s(summary, "drained") >= script.len() as u64,
        "{summary:?}"
    );
    shutdown_clean(on, &mut c_on);
    shutdown_clean(off, &mut c_off);
}

/// The `trace` endpoint drains a versioned envelope whose spans cover the
/// hot/inline/worker paths, and a second drain starts empty (clean drain,
/// no double counting).
#[test]
fn trace_endpoint_drains_versioned_envelope_once() {
    let mut cfg = ServeConfig::new("127.0.0.1:0");
    cfg.trace = true;
    let handle = spawn(cfg).expect("spawn server");
    let mut client = Client::connect(handle.addr()).expect("connect");

    let req = plan_request(
        "e0",
        Strategy::Sequential,
        AllocPolicy::Equal,
        MappingKind::Oblivious,
    );
    for _ in 0..3 {
        assert!(client.call(&req).expect("plan").ok());
    }
    let trace = client
        .call(&Request::new(Some("t1".into()), RequestBody::Trace))
        .expect("trace");
    let v = trace.result().expect("result").clone();
    assert_eq!(
        v.get("schema").and_then(Value::as_str),
        Some("nestwx-obs-serve-summary")
    );
    assert_eq!(v.get("version").and_then(Value::as_u64), Some(1));
    let summary = v.get("summary").expect("summary");
    assert_eq!(u64s(summary, "dropped"), 0);
    assert!(u64s(summary, "drained") >= 3);
    let by_path = summary.get("by_path").expect("by_path");
    // Cold plan → worker; repeats → reader cache / raw-line hot cache.
    assert!(u64s(by_path, "worker") >= 1, "{by_path:?}");
    assert!(
        u64s(by_path, "inline") + u64s(by_path, "hot") >= 2,
        "{by_path:?}"
    );
    let spans = v.get("spans").and_then(Value::as_array).expect("spans");
    // Every drained span is accounted for: serialized in the array, or
    // counted as truncated (the envelope caps the array to keep the
    // response under the protocol line limit).
    assert_eq!(
        spans.len() as u64 + u64s(summary, "spans_truncated"),
        u64s(summary, "drained")
    );
    // Spans come out in arrival order.
    let ts: Vec<u64> = spans.iter().map(|s| u64s(s, "ts_us")).collect();
    let mut sorted = ts.clone();
    sorted.sort_unstable();
    assert_eq!(ts, sorted, "spans not time-ordered");

    // Second drain: only the spans recorded since (the trace request
    // itself, at most a couple) — the plans do not reappear.
    let again = client
        .call(&Request::new(Some("t2".into()), RequestBody::Trace))
        .expect("second trace");
    let v2 = again.result().expect("result").clone();
    let plan_spans = v2
        .get("spans")
        .and_then(Value::as_array)
        .expect("spans")
        .iter()
        .filter(|s| s.get("op").and_then(Value::as_str) == Some("plan"))
        .count();
    assert_eq!(plan_spans, 0, "drained plan spans reappeared");
    shutdown_clean(handle, &mut client);
}

/// `explain: true` appends the explain block (per-nest shares, predicted
/// s/iter, hop histogram) while the explain-off response — and the cached
/// bytes behind it — stay untouched.
#[test]
fn explain_adds_block_without_disturbing_cached_bytes() {
    let handle = local_server();
    let mut client = Client::connect(handle.addr()).expect("connect");

    let plain = plan_request(
        "x0",
        Strategy::Concurrent,
        AllocPolicy::HuffmanSplitTree,
        MappingKind::Partition,
    );
    let mut explained = plain.clone();
    explained.explain = true;

    let before = client.call(&plain).expect("plain plan");
    assert!(before.ok());
    assert!(
        before.result().unwrap().get("explain").is_none(),
        "explain leaked into a plain response"
    );

    let with = client.call(&explained).expect("explained plan");
    assert!(with.ok(), "explain plan rejected: {}", with.raw);
    let result = with.result().expect("result").clone();
    let explain = result.get("explain").expect("explain block");
    assert!(
        explain
            .get("predicted_s_per_iter")
            .and_then(Value::as_f64)
            .expect("predicted_s_per_iter")
            > 0.0
    );
    let nests_out = explain
        .get("nests")
        .and_then(Value::as_array)
        .expect("nests");
    // One explain row per plan partition (the same granularity the
    // response's own `partitions` array reports).
    let n_partitions = result
        .get("partitions")
        .and_then(Value::as_array)
        .expect("partitions")
        .len();
    assert_eq!(
        nests_out.len(),
        n_partitions,
        "one explain row per partition"
    );
    assert!(
        nests_out.len() >= nests().len(),
        "explain must cover every nest"
    );
    let share: f64 = nests_out
        .iter()
        .map(|n| n.get("alloc_share").and_then(Value::as_f64).unwrap())
        .sum();
    assert!(
        (share - 1.0).abs() < 1e-9,
        "alloc shares must sum to 1, got {share}"
    );
    let hops = explain.get("hops").expect("hops histogram");
    let counts = hops
        .get("counts")
        .and_then(Value::as_array)
        .expect("counts");
    let edges: u64 = counts.iter().map(|c| c.as_u64().unwrap()).sum();
    assert_eq!(
        edges,
        u64s(hops, "edges"),
        "histogram counts must sum to edges"
    );
    // Everything outside the explain block matches the plain response.
    let plain_result = before.result().unwrap();
    for key in ["ranks", "strategy", "predicted_ratios", "partitions"] {
        assert_eq!(
            plain_result.get(key),
            result.get(key),
            "'{key}' diverged under explain"
        );
    }

    // The cached plan bytes are untouched: the plain request still
    // returns the exact same line as before the explain call.
    let after = client.call(&plain).expect("plain plan again");
    assert_eq!(before.raw, after.raw, "explain disturbed the cached bytes");

    // Compare carries the same block.
    let mut cmp = Request::new(
        Some("xc".into()),
        RequestBody::Compare {
            params: ScenarioParams {
                machine: MACHINE.into(),
                parent: parent(),
                nests: nests(),
                strategy: Strategy::Concurrent,
                alloc: AllocPolicy::HuffmanSplitTree,
                mapping: MappingKind::Partition,
                io: None,
            },
            iterations: 2,
        },
    );
    cmp.explain = true;
    let cmp_resp = client.call(&cmp).expect("explained compare");
    assert!(cmp_resp.ok(), "explain compare rejected: {}", cmp_resp.raw);
    assert!(
        cmp_resp.result().unwrap().get("explain").is_some(),
        "compare lost its explain block"
    );
    shutdown_clean(handle, &mut client);
}

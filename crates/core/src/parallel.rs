//! Work-stealing parallel map shared by the experiment harness and the
//! sweep engine.
//!
//! Each unit of work (an experiment point, a swept scenario) is an
//! independent computation whose run time varies widely with rank count
//! and nest geometry, so static chunking would straggle. The driver
//! instead hands out indices through an atomic counter — classic
//! work-stealing without queues — and collects `(index, result)` pairs
//! over an mpsc channel so the output vector preserves input order no
//! matter which worker finished first. Determinism contract: for a pure
//! `f`, the returned vector is identical for every job count, including 1.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use crate::env::env_usize;

/// Worker count for [`run_parallel`]: the `NESTWX_JOBS` environment
/// variable when set to a positive integer, else the machine's available
/// parallelism (1 if that cannot be determined).
pub fn parallel_jobs() -> usize {
    let fallback = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    env_usize("NESTWX_JOBS", fallback)
}

/// Maps `f` over `items` on [`parallel_jobs`] scoped threads, preserving
/// input order in the returned vector. See [`run_parallel_with`].
pub fn run_parallel<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    run_parallel_with(parallel_jobs(), items, f)
}

/// Maps `f` over `items` on at most `jobs` scoped threads, preserving
/// input order in the returned vector.
///
/// Work-stealing via an atomic index: each worker claims the next unclaimed
/// item until none remain. Falls back to a plain serial map when only one
/// job is requested or there is at most one item.
pub fn run_parallel_with<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len());
    if jobs <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let (next, f) = (&next, &f);
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                if tx.send((i, r)).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut out: Vec<Option<R>> = items.iter().map(|_| None).collect();
    for (i, r) in rx {
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|slot| slot.expect("worker filled every claimed slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_parallel_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = run_parallel(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
        // Degenerate inputs.
        assert_eq!(run_parallel(&[] as &[u64], |&x| x), Vec::<u64>::new());
        assert_eq!(run_parallel(&[7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn explicit_job_counts_agree() {
        let items: Vec<u64> = (0..257).collect();
        let serial = run_parallel_with(1, &items, |&x| x.wrapping_mul(2654435761));
        for jobs in [2, 3, 8, 64, 1024] {
            let par = run_parallel_with(jobs, &items, |&x| x.wrapping_mul(2654435761));
            assert_eq!(par, serial, "jobs={jobs} diverged from serial order");
        }
    }

    #[test]
    fn zero_jobs_is_clamped_to_serial() {
        let items: Vec<u32> = (0..5).collect();
        assert_eq!(
            run_parallel_with(0, &items, |&x| x + 1),
            vec![1, 2, 3, 4, 5]
        );
    }
}

//! Convenience comparison of the default and divide-and-conquer strategies.

use crate::planner::{PlanError, Planner};
use crate::strategy::{MappingKind, Strategy};
use nestwx_grid::{Domain, NestSpec};
use nestwx_netsim::{AnalysisReport, ObsConfig, ObsSummary, Recorder, SimReport};
use serde::{Deserialize, Serialize};

/// Side-by-side result of the default sequential strategy and a
/// divide-and-conquer plan on the same configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyComparison {
    /// Default: sequential nests, topology-oblivious mapping.
    pub default_run: SimReport,
    /// The planner's configured strategy.
    pub planned_run: SimReport,
}

impl StrategyComparison {
    /// Percentage improvement in per-iteration time (positive = planned
    /// faster), the headline metric of §4.3.
    pub fn improvement_pct(&self) -> f64 {
        self.planned_run.improvement_over(&self.default_run)
    }

    /// Percentage improvement in total MPI_Wait (Table 1).
    pub fn mpi_wait_improvement_pct(&self) -> f64 {
        (1.0 - self.planned_run.mpi_wait_total / self.default_run.mpi_wait_total) * 100.0
    }

    /// Percentage improvement in I/O time (Fig. 8's included-I/O delta).
    pub fn io_improvement_pct(&self) -> f64 {
        if self.default_run.io_time == 0.0 {
            0.0
        } else {
            (1.0 - self.planned_run.io_time / self.default_run.io_time) * 100.0
        }
    }

    /// Reduction in average hops per message (Fig. 12b).
    pub fn hops_reduction_pct(&self) -> f64 {
        (1.0 - self.planned_run.avg_hops / self.default_run.avg_hops) * 100.0
    }
}

/// [`StrategyComparison`] plus each run's full recorder (totals, per-rank
/// timelines, histograms, link detail), so the paper's MPI_Wait, imbalance
/// and hop tables can be rebuilt from step-level metrics instead of the
/// simulator's internal accumulators.
#[derive(Debug, Clone)]
pub struct ObservedComparison {
    /// The plain side-by-side reports.
    pub comparison: StrategyComparison,
    /// Recorded totals of the default (sequential, oblivious) run.
    pub default_obs: ObsSummary,
    /// Recorded totals of the planned run.
    pub planned_obs: ObsSummary,
    /// Full recorder of the default run (timelines, histograms, links).
    pub default_rec: Recorder,
    /// Full recorder of the planned run.
    pub planned_rec: Recorder,
}

impl ObservedComparison {
    /// MPI_Wait improvement computed from the recorded step metrics
    /// (Table 1, via `nestwx-obs` instead of `SimReport`).
    pub fn mpi_wait_improvement_pct(&self) -> f64 {
        (1.0 - self.planned_obs.halo_wait / self.default_obs.halo_wait) * 100.0
    }

    /// Average-hops reduction computed from the recorded step metrics
    /// (Fig. 12b, via `nestwx-obs`).
    pub fn hops_reduction_pct(&self) -> f64 {
        (1.0 - self.planned_obs.avg_hops() / self.default_obs.avg_hops()) * 100.0
    }

    /// Imbalance / link-utilization analysis of the default run.
    pub fn default_analysis(&self) -> AnalysisReport {
        self.default_rec.analysis()
    }

    /// Imbalance / link-utilization analysis of the planned run.
    pub fn planned_analysis(&self) -> AnalysisReport {
        self.planned_rec.analysis()
    }
}

/// Runs `planner`'s configuration and the paper's default baseline
/// (sequential + oblivious mapping, same machine/output settings) on the
/// given domains for `iterations` parent iterations.
pub fn compare_strategies(
    planner: &Planner,
    parent: &Domain,
    nests: &[NestSpec],
    iterations: u32,
) -> Result<StrategyComparison, PlanError> {
    let baseline = planner
        .clone()
        .strategy(Strategy::Sequential)
        .mapping(MappingKind::Oblivious)
        .plan(parent, nests)?;
    let planned = planner.plan(parent, nests)?;
    Ok(StrategyComparison {
        default_run: baseline.simulate(iterations)?,
        planned_run: planned.simulate(iterations)?,
    })
}

/// [`compare_strategies`] with step-metrics recorders attached to both
/// runs. The embedded [`StrategyComparison`] is bitwise identical to the
/// unobserved one (observation is passive).
pub fn compare_strategies_observed(
    planner: &Planner,
    parent: &Domain,
    nests: &[NestSpec],
    iterations: u32,
) -> Result<ObservedComparison, PlanError> {
    let baseline = planner
        .clone()
        .strategy(Strategy::Sequential)
        .mapping(MappingKind::Oblivious)
        .plan(parent, nests)?;
    let planned = planner.plan(parent, nests)?;
    let (default_run, default_rec) =
        baseline.simulate_observed(iterations, ObsConfig::detailed())?;
    let (planned_run, planned_rec) =
        planned.simulate_observed(iterations, ObsConfig::detailed())?;
    Ok(ObservedComparison {
        comparison: StrategyComparison {
            default_run,
            planned_run,
        },
        default_obs: default_rec.summary().clone(),
        planned_obs: planned_rec.summary().clone(),
        default_rec,
        planned_rec,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nestwx_netsim::Machine;

    #[test]
    fn comparison_shows_improvement_for_saturating_nests() {
        // Two medium nests on a BG/L partition they saturate.
        let parent = Domain::parent(286, 307, 24.0);
        let nests = vec![
            NestSpec::new(259, 229, 3, (10, 12)),
            NestSpec::new(259, 229, 3, (150, 40)),
        ];
        let planner = Planner::new(Machine::bgl(512));
        let cmp = compare_strategies(&planner, &parent, &nests, 3).unwrap();
        let imp = cmp.improvement_pct();
        assert!(imp > 5.0, "improvement only {imp:.1}%");
        assert!(imp < 60.0, "improvement implausibly high: {imp:.1}%");
        assert!(
            cmp.mpi_wait_improvement_pct() > 0.0,
            "halo MPI_Wait should drop: {:.1}%",
            cmp.mpi_wait_improvement_pct()
        );
    }

    #[test]
    fn observed_comparison_is_passive_and_consistent() {
        let parent = Domain::parent(286, 307, 24.0);
        let nests = vec![
            NestSpec::new(259, 229, 3, (10, 12)),
            NestSpec::new(259, 229, 3, (150, 40)),
        ];
        let planner = Planner::new(Machine::bgl(64));
        let plain = compare_strategies(&planner, &parent, &nests, 2).unwrap();
        let obs = compare_strategies_observed(&planner, &parent, &nests, 2).unwrap();
        // Observation must not perturb the simulation.
        assert_eq!(obs.comparison, plain);
        // Recorded totals rebuild the report's aggregates (float summation
        // order differs, so compare with a tight relative tolerance).
        let rel = (obs.default_obs.halo_wait - plain.default_run.mpi_wait_total).abs()
            / plain.default_run.mpi_wait_total;
        assert!(rel < 1e-9, "halo_wait off by rel {rel}");
        assert_eq!(obs.default_obs.messages, plain.default_run.messages);
        assert_eq!(obs.default_obs.bytes, plain.default_run.bytes);
        assert!(
            (obs.default_obs.avg_hops() - plain.default_run.avg_hops).abs() < 1e-12,
            "avg hops mismatch"
        );
        assert!(obs.mpi_wait_improvement_pct() > 0.0);
        // The recorders carry the detailed tier: timelines and analyses.
        assert!(obs.default_rec.timeline().is_some());
        assert!(obs.planned_rec.timeline().is_some());
        let analysis = obs.default_analysis();
        assert!(analysis.overall_imbalance >= 1.0);
        assert_eq!(analysis.per_nest.len(), 2);
        let ratio_sum: f64 = analysis.per_nest.iter().map(|n| n.time_ratio).sum();
        assert!((ratio_sum - 1.0).abs() < 1e-12);
        assert!(obs.planned_analysis().links.is_some());
    }

    #[test]
    fn comparison_fields_consistent() {
        let parent = Domain::parent(286, 307, 24.0);
        let nests = vec![NestSpec::new(200, 200, 3, (10, 12))];
        let planner = Planner::new(Machine::bgl(64));
        let cmp = compare_strategies(&planner, &parent, &nests, 2).unwrap();
        assert_eq!(cmp.default_run.iterations, 2);
        assert_eq!(cmp.planned_run.iterations, 2);
        // One nest: concurrent == "whole grid", improvement ≈ 0.
        assert!(cmp.improvement_pct().abs() < 5.0);
    }
}

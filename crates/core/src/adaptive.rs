//! Adaptive re-partitioning — the paper's future-work item "we also plan to
//! simultaneously steer these multiple nested simulations" (§6).
//!
//! The static plan allocates processors from *predicted* execution times.
//! When the prediction is off (or the weather changes the nests' relative
//! costs), the siblings finish their `r` steps at different times and
//! processors idle at the synchronisation point. The adaptive runner
//! measures each sibling's actual solve time during a chunk of iterations,
//! re-derives the time ratios from `measured time × allocated processors`
//! (≈ work), re-partitions, and charges a redistribution cost for the data
//! movement before continuing.

use crate::planner::{ExecutionPlan, PlanError, Planner};
use nestwx_grid::DomainFeatures;
use nestwx_grid::{Domain, NestSpec};
use nestwx_netsim::SimReport;
use nestwx_predict::ExecTimePredictor;
use serde::{Deserialize, Serialize};

/// Result of an adaptive run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveReport {
    /// Per-chunk simulation reports (in order).
    pub chunks: Vec<SimReport>,
    /// Seconds charged for state redistribution at re-plan boundaries.
    pub redistribution_time: f64,
    /// Ratios used for the final chunk's allocation.
    pub final_ratios: Vec<f64>,
}

impl AdaptiveReport {
    /// Total wall-clock including redistribution.
    pub fn total_time(&self) -> f64 {
        self.chunks.iter().map(|c| c.total_time).sum::<f64>() + self.redistribution_time
    }

    /// Iterations simulated.
    pub fn iterations(&self) -> u32 {
        self.chunks.iter().map(|c| c.iterations).sum()
    }

    /// Seconds per iteration including redistribution.
    pub fn per_iteration(&self) -> f64 {
        self.total_time() / self.iterations() as f64
    }
}

/// Runs `iterations` in chunks of `replan_every`, re-partitioning between
/// chunks from measured sibling times. The initial allocation comes from
/// `planner`'s configured policy (possibly a poor one — that is the point).
pub fn run_adaptive(
    planner: &Planner,
    parent: &Domain,
    nests: &[NestSpec],
    iterations: u32,
    replan_every: u32,
) -> Result<AdaptiveReport, PlanError> {
    assert!(replan_every >= 1 && iterations >= 1);
    let mut remaining = iterations;
    let mut chunks = Vec::new();
    let mut redistribution = 0.0;
    let mut plan: ExecutionPlan = planner.plan(parent, nests)?;
    let mut ratios: Vec<f64> = plan.predicted_ratios.clone();

    while remaining > 0 {
        let n = remaining.min(replan_every);
        let report = plan.simulate(n)?;
        remaining -= n;

        if remaining > 0 {
            // Measured work share per nest: solve time × processors.
            let work: Vec<f64> = (0..nests.len())
                .map(|i| {
                    let t = report.sibling_per_iter(i).max(1e-9);
                    t * plan.procs_for_nest(i) as f64
                })
                .collect();
            let total: f64 = work.iter().sum();
            let measured: Vec<f64> = work.iter().map(|w| w / total).collect();
            // Re-plan with measured ratios via a synthetic predictor:
            // reuse the planner but override through a fitted pass-through.
            let new_plan = plan_with_ratios(planner, parent, nests, &measured)?;
            // Redistribution: the nests whose partitions changed move their
            // state (patch arrays) across the network once.
            redistribution += redistribution_cost(&plan, &new_plan);
            ratios = measured;
            plan = new_plan;
        }
        chunks.push(report);
    }
    Ok(AdaptiveReport {
        chunks,
        redistribution_time: redistribution,
        final_ratios: ratios,
    })
}

/// Builds a plan whose allocation follows the given ratios exactly, keeping
/// the planner's other knobs. Implemented by fitting a tiny pass-through
/// predictor whose "measurements" are the ratios at each nest's feature
/// point (plus anchor points to keep the triangulation valid).
fn plan_with_ratios(
    planner: &Planner,
    parent: &Domain,
    nests: &[NestSpec],
    ratios: &[f64],
) -> Result<ExecutionPlan, PlanError> {
    // The paper's allocation only needs relative times; we synthesise a
    // predictor that returns them. Use a wide triangulated basis carrying a
    // constant surface, then override per-nest values via nearest anchors.
    // Simpler and exact: piecewise data isn't needed — we bypass the
    // predictor entirely by re-scaling through AllocPolicy::HuffmanSplitTree
    // with a surrogate ExecTimePredictor fitted on the nest features
    // augmented with far-away anchor points.
    let mut basis: Vec<(DomainFeatures, f64)> = Vec::new();
    for (n, &r) in nests.iter().zip(ratios) {
        basis.push((DomainFeatures::from(n), r.max(1e-9)));
    }
    // Anchor triangle comfortably containing all nest feature points, with
    // values interpolated flat (mean ratio) so queries at nest points are
    // dominated by the nearby exact measurements.
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let max_pts = basis.iter().map(|(f, _)| f.points).fold(0.0, f64::max);
    basis.push((
        DomainFeatures {
            aspect_ratio: 0.05,
            points: 1.0,
        },
        mean,
    ));
    basis.push((
        DomainFeatures {
            aspect_ratio: 20.0,
            points: 1.0,
        },
        mean,
    ));
    basis.push((
        DomainFeatures {
            aspect_ratio: 1.0,
            points: max_pts * 40.0,
        },
        mean,
    ));
    let surrogate = ExecTimePredictor::fit(&basis).map_err(PlanError::Predict)?;
    // Whatever the initial policy was (possibly Equal or NaiveProportional),
    // the measured-ratio re-plan always uses the split-tree allocator —
    // measurement replaces prediction.
    planner
        .clone()
        .alloc_policy(crate::strategy::AllocPolicy::HuffmanSplitTree)
        .with_predictor(surrogate)
        .plan(parent, nests)
}

/// Seconds to move the nests' state between the old and new partitions:
/// every nest whose rectangle changed ships its full prognostic state once
/// across the bisection.
fn redistribution_cost(old: &ExecutionPlan, new: &ExecutionPlan) -> f64 {
    let halo = &old.machine.halo;
    let mut bytes = 0.0;
    for (po, pn) in old.partitions.iter().zip(&new.partitions) {
        if po.rect != pn.rect {
            let n = &old.config.nests[po.domain];
            bytes += n.points() as f64
                * halo.fields as f64
                * halo.levels as f64
                * halo.bytes_per_value as f64;
        }
    }
    // Aggregate bisection-ish bandwidth: half the links of the torus.
    let links = old.machine.shape.torus.num_links() as f64 / 2.0;
    let agg_bw = links * old.machine.net.link_bw;
    5e-3 + bytes / agg_bw.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::AllocPolicy;
    use nestwx_netsim::Machine;

    fn skewed_config() -> (Domain, Vec<NestSpec>) {
        // Very different nest sizes: equal allocation is clearly wrong.
        (
            Domain::parent(286, 307, 24.0),
            vec![
                NestSpec::new(394, 418, 3, (10, 10)),
                NestSpec::new(180, 170, 3, (160, 20)),
                NestSpec::new(200, 190, 3, (30, 170)),
            ],
        )
    }

    #[test]
    fn adaptive_recovers_from_equal_split() {
        let (parent, nests) = skewed_config();
        // Start from the worst static policy: equal split.
        let planner = Planner::new(Machine::bgl(256)).alloc_policy(AllocPolicy::Equal);
        let static_run = planner.plan(&parent, &nests).unwrap().simulate(9).unwrap();
        let adaptive = run_adaptive(&planner, &parent, &nests, 9, 3).unwrap();
        assert_eq!(adaptive.iterations(), 9);
        assert!(adaptive.chunks.len() == 3);
        assert!(
            adaptive.per_iteration() < static_run.per_iteration(),
            "adaptive {:.3} !< static-equal {:.3}",
            adaptive.per_iteration(),
            static_run.per_iteration()
        );
        // The big nest's final ratio exceeds the small ones'.
        assert!(adaptive.final_ratios[0] > adaptive.final_ratios[1]);
    }

    #[test]
    fn adaptive_close_to_predicted_plan() {
        // Starting from the paper's predictor, adaptive refinement should
        // not significantly hurt (prediction is already good).
        let (parent, nests) = skewed_config();
        let planner = Planner::new(Machine::bgl(256));
        let static_run = planner.plan(&parent, &nests).unwrap().simulate(8).unwrap();
        let adaptive = run_adaptive(&planner, &parent, &nests, 8, 4).unwrap();
        let ratio = adaptive.per_iteration() / static_run.per_iteration();
        assert!(ratio < 1.1, "adaptive overhead too high: ×{ratio:.2}");
    }

    #[test]
    fn no_replanning_for_single_chunk() {
        let (parent, nests) = skewed_config();
        let planner = Planner::new(Machine::bgl(64));
        let a = run_adaptive(&planner, &parent, &nests, 3, 3).unwrap();
        assert_eq!(a.chunks.len(), 1);
        assert_eq!(a.redistribution_time, 0.0);
    }

    #[test]
    fn redistribution_cost_charged_when_partitions_move() {
        let (parent, nests) = skewed_config();
        let planner = Planner::new(Machine::bgl(256)).alloc_policy(AllocPolicy::Equal);
        let a = run_adaptive(&planner, &parent, &nests, 6, 2).unwrap();
        // Equal → measured surely moves the boundaries at least once.
        assert!(a.redistribution_time > 0.0);
    }
}

//! Thread allocation for the real mini-app (§5's generality claim).
//!
//! The same proportional-to-predicted-time allocation that Algorithm 1
//! performs on a 2-D processor grid, specialised to a 1-D pool of worker
//! threads for [`nestwx_miniwrf::runtime`].

use nestwx_grid::DomainFeatures;
use nestwx_predict::ExecTimePredictor;

/// Splits `total_threads` among nests proportionally to predicted relative
/// execution times; every nest gets at least one thread. Uses largest
/// remainders for the leftover threads.
pub fn thread_allocation(ratios: &[f64], total_threads: usize) -> Vec<usize> {
    assert!(!ratios.is_empty());
    assert!(
        total_threads >= ratios.len(),
        "at least one thread per nest"
    );
    let total: f64 = ratios.iter().sum();
    let ideal: Vec<f64> = ratios
        .iter()
        .map(|r| r / total * total_threads as f64)
        .collect();
    let mut alloc: Vec<usize> = ideal.iter().map(|t| (t.floor() as usize).max(1)).collect();
    let mut assigned: usize = alloc.iter().sum();
    let mut order: Vec<usize> = (0..ratios.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = ideal[a] - ideal[a].floor();
        let fb = ideal[b] - ideal[b].floor();
        fb.partial_cmp(&fa).unwrap()
    });
    let mut i = 0;
    while assigned < total_threads {
        alloc[order[i % order.len()]] += 1;
        assigned += 1;
        i += 1;
    }
    while assigned > total_threads {
        let widest = (0..alloc.len()).max_by_key(|&j| alloc[j]).unwrap();
        assert!(alloc[widest] > 1, "cannot satisfy one-thread minimum");
        alloc[widest] -= 1;
        assigned -= 1;
    }
    alloc
}

/// Predicts ratios for nest dimension pairs and allocates threads.
pub fn thread_allocation_for(
    predictor: &ExecTimePredictor,
    nests: &[(u32, u32)],
    total_threads: usize,
) -> Vec<usize> {
    let features: Vec<DomainFeatures> = nests
        .iter()
        .map(|&(nx, ny)| DomainFeatures::from_dims(nx, ny))
        .collect();
    let ratios = predictor
        .relative_times(&features)
        .expect("predictor covers nests");
    thread_allocation(&ratios, total_threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_ratios_equal_threads() {
        assert_eq!(thread_allocation(&[1.0, 1.0], 8), vec![4, 4]);
        assert_eq!(
            thread_allocation(&[1.0, 1.0, 1.0, 1.0], 8),
            vec![2, 2, 2, 2]
        );
    }

    #[test]
    fn proportional_split() {
        assert_eq!(thread_allocation(&[3.0, 1.0], 8), vec![6, 2]);
        assert_eq!(thread_allocation(&[0.5, 0.25, 0.25], 8), vec![4, 2, 2]);
    }

    #[test]
    fn minimum_one_thread() {
        let a = thread_allocation(&[0.97, 0.01, 0.01, 0.01], 6);
        assert!(a.iter().all(|&t| t >= 1));
        assert_eq!(a.iter().sum::<usize>(), 6);
    }

    #[test]
    fn sums_to_total() {
        for total in [3, 5, 9, 17] {
            let a = thread_allocation(&[0.2, 0.5, 0.3], total);
            assert_eq!(a.iter().sum::<usize>(), total);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_too_few_threads() {
        thread_allocation(&[1.0, 1.0, 1.0], 2);
    }
}

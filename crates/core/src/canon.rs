//! Canonical scenario encoding for plan caching.
//!
//! A [`Scenario`] is the complete input of [`Planner::plan`]: machine
//! config, parent domain, nest specs and the strategy/allocation/mapping
//! knobs. Planning is deterministic in these inputs (the on-demand
//! predictor fit uses a fixed seed), so a scenario's canonical encoding is
//! a sound cache key: two scenarios with equal canonical strings produce
//! byte-identical serialized plans.
//!
//! The canonical string is the versioned compact JSON encoding of the
//! scenario. JSON field order follows struct declaration order and float
//! formatting is shortest-round-trip, so equal values always encode to
//! equal bytes (the only caveats are the usual float identities: `-0.0`
//! encodes as `-0.0` ≠ `0.0`, and non-finite values encode as `null`).
//! [`Scenario::digest`] hashes the canonical bytes with FNV-1a 64 — used
//! for cache sharding; exact-match lookups should use the full string so
//! hash collisions cannot alias two scenarios.

use crate::planner::Planner;
use crate::strategy::{AllocPolicy, MappingKind, Strategy};
use nestwx_grid::{Domain, NestSpec};
use nestwx_netsim::{IoMode, Machine};
use serde::Serialize;

/// Version tag prefixed to every canonical encoding. Bump when the
/// [`Scenario`] layout (or anything influencing plan determinism) changes,
/// so stale cache entries can never be mistaken for current ones.
pub const SCENARIO_ENCODING_VERSION: &str = "nestwx-scenario-v1";

/// The complete, cacheable input of one planning request.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Scenario {
    /// Target machine (full config — two machines with the same name but
    /// different calibration are different scenarios).
    pub machine: Machine,
    /// Parent domain.
    pub parent: Domain,
    /// Nest specifications.
    pub nests: Vec<NestSpec>,
    /// Execution strategy.
    pub strategy: Strategy,
    /// Allocation policy.
    pub alloc: AllocPolicy,
    /// Mapping kind.
    pub mapping: MappingKind,
    /// History-output mode.
    pub io_mode: IoMode,
    /// Output interval in parent iterations (`None` when `io_mode` is
    /// [`IoMode::None`]).
    pub output_interval: Option<u32>,
}

impl Scenario {
    /// A scenario with the planner's default knobs (concurrent, Huffman,
    /// partition mapping, no output).
    pub fn new(machine: Machine, parent: Domain, nests: Vec<NestSpec>) -> Scenario {
        Scenario {
            machine,
            parent,
            nests,
            strategy: Strategy::Concurrent,
            alloc: AllocPolicy::HuffmanSplitTree,
            mapping: MappingKind::Partition,
            io_mode: IoMode::None,
            output_interval: None,
        }
    }

    /// The [`Planner`] configured exactly as this scenario describes.
    pub fn planner(&self) -> Planner {
        let mut p = Planner::new(self.machine.clone())
            .strategy(self.strategy)
            .alloc_policy(self.alloc)
            .mapping(self.mapping);
        if let Some(every) = self.output_interval {
            p = p.output(self.io_mode, every);
        }
        p
    }

    /// The versioned canonical encoding: `nestwx-scenario-v1:` followed by
    /// the compact JSON of the scenario. Equal scenarios encode to equal
    /// bytes; any field difference (including machine calibration) changes
    /// the encoding.
    pub fn canonical_string(&self) -> String {
        let json = serde_json::to_string(self).expect("scenario serializes");
        format!("{SCENARIO_ENCODING_VERSION}:{json}")
    }

    /// FNV-1a 64 digest of [`Scenario::canonical_string`] — cheap and
    /// stable across runs, for cache sharding and batching keys.
    pub fn digest(&self) -> u64 {
        fnv1a64(self.canonical_string().as_bytes())
    }
}

/// FNV-1a 64-bit hash. Deterministic across processes (unlike
/// `DefaultHasher`, which is randomly keyed per process), which keeps
/// digests comparable between a server and its clients or logs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> Scenario {
        Scenario::new(
            Machine::bgl(64),
            Domain::parent(286, 307, 24.0),
            vec![
                NestSpec::new(150, 150, 3, (10, 12)),
                NestSpec::new(150, 150, 3, (120, 120)),
            ],
        )
    }

    #[test]
    fn canonical_string_is_stable_and_versioned() {
        let s = scenario();
        assert_eq!(s.canonical_string(), s.canonical_string());
        assert!(s.canonical_string().starts_with("nestwx-scenario-v1:{"));
        assert_eq!(s.digest(), scenario().digest());
    }

    #[test]
    fn every_knob_changes_the_encoding() {
        let base = scenario();
        let mut mapping = base.clone();
        mapping.mapping = MappingKind::MultiLevel;
        let mut alloc = base.clone();
        alloc.alloc = AllocPolicy::Equal;
        let mut strat = base.clone();
        strat.strategy = Strategy::Sequential;
        let mut io = base.clone();
        io.io_mode = IoMode::PnetCdf;
        io.output_interval = Some(2);
        let mut machine = base.clone();
        machine.machine = Machine::bgl(128);
        let mut nest = base.clone();
        nest.nests[0].nx += 1;
        let all = [base.clone(), mapping, alloc, strat, io, machine, nest];
        for (i, a) in all.iter().enumerate() {
            for (j, b) in all.iter().enumerate() {
                assert_eq!(
                    i == j,
                    a.canonical_string() == b.canonical_string(),
                    "scenarios {i} and {j} must encode {}",
                    if i == j { "equally" } else { "differently" }
                );
            }
        }
    }

    #[test]
    fn planner_reproduces_the_scenario_plan_deterministically() {
        // Planning the same scenario twice — even through two separately
        // constructed planners — yields identical plans (the cache
        // determinism guarantee rests on this).
        let s = scenario();
        let a = s.planner().plan(&s.parent, &s.nests).unwrap();
        let b = s.planner().plan(&s.parent, &s.nests).unwrap();
        assert_eq!(a.predicted_ratios, b.predicted_ratios);
        assert_eq!(a.partitions.len(), b.partitions.len());
        for (pa, pb) in a.partitions.iter().zip(&b.partitions) {
            assert_eq!(pa.rect, pb.rect);
        }
        assert_eq!(a.mapping.len(), b.mapping.len());
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}

//! Profiling runs and predictor fitting.
//!
//! §3.1: "We conducted experiments on a fixed number of processors for a
//! small set (size = 13) of domains with different domain sizes and
//! different aspect ratios." Here the "experiments" are runs of the machine
//! simulator; on a real deployment they would be short WRF runs.

use nestwx_grid::{Domain, DomainFeatures, NestedConfig, ProcGrid};
use nestwx_netsim::{ExecStrategy, IoMode, Machine, Simulation};
use nestwx_predict::{generate_candidates, select_basis_covering, BasisDomain, ExecTimePredictor};
use nestwx_topo::Mapping;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Number of processors the profiling runs use (fixed, per the paper — only
/// *relative* times matter for allocation).
pub const PROFILE_RANKS: u32 = 64;

/// Measures the per-iteration integration time of a single `nx × ny` domain
/// on `ranks` processors of `machine`'s type — the simulator stand-in for a
/// profiling WRF run. The domain is stepped as a stand-alone simulation
/// (no nests, no I/O).
pub fn measure_domain_time(machine: &Machine, nx: u32, ny: u32, ranks: u32) -> f64 {
    let shape = machine.shape;
    assert!(ranks <= shape.slots());
    let grid = ProcGrid::near_square(ranks);
    let cfg = NestedConfig::new(Domain::parent(nx, ny, 8.0), vec![]).expect("valid domain");
    let mapping = Mapping::oblivious(shape, ranks).expect("ranks fit");
    let sim = Simulation::new(
        machine,
        grid,
        &cfg,
        ExecStrategy::Sequential,
        mapping,
        IoMode::None,
        None,
    )
    .expect("valid simulation");
    sim.run(3).per_iteration()
}

/// Runs the 13 basis profiling experiments: candidate generation, basis
/// selection, and one measurement per basis domain.
pub fn profile_basis(machine: &Machine, seed: u64) -> Vec<(DomainFeatures, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Paper's candidate ranges: 94×124 .. 415×445, aspect 0.5–1.5.
    let candidates = generate_candidates(&mut rng, 400, 94 * 124, 415 * 445);
    let basis: Vec<BasisDomain> = select_basis_covering(
        &candidates,
        13,
        (0.5, 1.5),
        ((94 * 124) as f64, (415 * 445) as f64),
    );
    basis
        .iter()
        .map(|b| {
            let t = measure_domain_time(machine, b.nx, b.ny, PROFILE_RANKS.min(machine.ranks()));
            (b.features(), t)
        })
        .collect()
}

/// Profiles and fits the execution-time predictor in one call.
pub fn fit_predictor(machine: &Machine, seed: u64) -> ExecTimePredictor {
    ExecTimePredictor::fit(&profile_basis(machine, seed)).expect("basis triangulates")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_monotone_in_domain_size() {
        let m = Machine::bgl(64);
        let small = measure_domain_time(&m, 100, 120, 64);
        let large = measure_domain_time(&m, 400, 420, 64);
        assert!(large > small);
    }

    #[test]
    fn predictor_fits_and_predicts_within_paper_bound() {
        // End-to-end §3.1 check: fit on 13 simulated profiling runs, then
        // predict held-out domains with < 6 % error against fresh
        // simulator measurements.
        let m = Machine::bgl(64);
        let p = fit_predictor(&m, 42);
        let tests = [(215u32, 260u32), (230, 243), (310, 215), (260, 360)];
        for (nx, ny) in tests {
            let truth = measure_domain_time(&m, nx, ny, 64);
            let pred = p.predict(&DomainFeatures::from_dims(nx, ny)).unwrap();
            let err = (pred - truth).abs() / truth;
            assert!(err < 0.06, "{nx}×{ny}: error {:.2}% ≥ 6%", err * 100.0);
        }
    }

    #[test]
    fn profiling_is_deterministic() {
        let m = Machine::bgl(64);
        let a = profile_basis(&m, 7);
        let b = profile_basis(&m, 7);
        assert_eq!(a.len(), 13);
        for ((fa, ta), (fb, tb)) in a.iter().zip(&b) {
            assert_eq!(fa.points, fb.points);
            assert_eq!(ta, tb);
        }
    }
}

//! A scoped temporary directory for tests and benches.
//!
//! `cargo test -q` must stay clean on re-runs (no stray state in the
//! system temp dir), so anything that needs an on-disk scratch area —
//! disk-cache tests, sweep benches — routes it through this guard: the
//! directory is freshly created (never reused, so stale cache entries
//! from a dead run cannot leak into a "cold" measurement) and removed on
//! drop, including the unwind path when a test fails.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A uniquely named directory under the system temp dir, removed
/// (recursively) when the guard drops.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates a fresh `<tmp>/<prefix>-<pid>-<seq>` directory. The create
    /// is exclusive — a leftover directory from a crashed run is skipped,
    /// never adopted.
    pub fn new(prefix: &str) -> io::Result<TempDir> {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let base = std::env::temp_dir();
        let pid = std::process::id();
        for _ in 0..4096 {
            let seq = SEQ.fetch_add(1, Ordering::Relaxed);
            let path = base.join(format!("{prefix}-{pid}-{seq}"));
            match std::fs::create_dir(&path) {
                Ok(()) => return Ok(TempDir { path }),
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(e),
            }
        }
        Err(io::Error::new(
            io::ErrorKind::AlreadyExists,
            "could not find an unused temp directory name",
        ))
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        // Best-effort: a failed removal must not turn a passing test into
        // a panic-in-drop abort.
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_removes() {
        let kept;
        {
            let dir = TempDir::new("nestwx-tempdir-test").unwrap();
            kept = dir.path().to_path_buf();
            assert!(kept.is_dir());
            std::fs::write(kept.join("f"), b"x").unwrap();
        }
        assert!(!kept.exists(), "dropped guard removes the tree");
    }

    #[test]
    fn names_are_unique() {
        let a = TempDir::new("nestwx-tempdir-test").unwrap();
        let b = TempDir::new("nestwx-tempdir-test").unwrap();
        assert_ne!(a.path(), b.path());
    }
}

//! The divide-and-conquer planner: the paper's primary contribution as a
//! library.
//!
//! [`Planner`] combines the three techniques of §3 into an execution plan
//! for a multi-nest weather simulation:
//!
//! 1. **performance prediction** (§3.1) — relative nest execution times via
//!    Delaunay/barycentric interpolation over profiling runs
//!    ([`profile::fit_predictor`]);
//! 2. **processor allocation** (§3.2) — Huffman-tree + balanced split-tree
//!    partitioning of the virtual processor grid (Algorithm 1);
//! 3. **topology-aware mapping** (§3.3) — embedding the partitions onto the
//!    machine's 3-D torus (oblivious / TXYZ / partition / multi-level).
//!
//! A plan is executed on the [`nestwx-netsim`](../nestwx_netsim/index.html)
//! machine simulator ([`ExecutionPlan::simulate`]); the same allocation
//! logic drives the real threaded mini-app through
//! [`threads::thread_allocation`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod canon;
pub mod compare;
pub mod env;
pub mod parallel;
pub mod planner;
pub mod profile;
pub mod strategy;
pub mod tempdir;
pub mod threads;

pub use adaptive::{run_adaptive, AdaptiveReport};
pub use canon::{fnv1a64, Scenario};
pub use compare::{
    compare_strategies, compare_strategies_observed, ObservedComparison, StrategyComparison,
};
pub use env::{env_f64, env_u32, env_usize};
pub use parallel::{parallel_jobs, run_parallel, run_parallel_with};
pub use planner::{ExecutionPlan, PlanError, Planner};
pub use profile::{fit_predictor, measure_domain_time, profile_basis};
pub use strategy::{AllocPolicy, MappingKind, Strategy};
pub use tempdir::TempDir;

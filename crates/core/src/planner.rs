//! The planner: predict → allocate → map → (simulate).

use crate::strategy::{AllocPolicy, MappingKind, Strategy};
use nestwx_alloc::{naive, partition_grid, AllocError, Partition};
use nestwx_grid::{Domain, DomainError, DomainFeatures, NestSpec, NestedConfig, ProcGrid, Rect};
use nestwx_netsim::{sim::SimError, ExecStrategy, IoMode, Machine, SimReport, Simulation};
use nestwx_predict::{ExecTimePredictor, NaivePointsModel, PredictError};
use nestwx_topo::{Mapping, MappingError};
use std::fmt;

/// Errors producing or executing a plan.
#[derive(Debug)]
pub enum PlanError {
    /// Invalid domain configuration.
    Domain(DomainError),
    /// Predictor failure.
    Predict(PredictError),
    /// Allocation failure.
    Alloc(AllocError),
    /// Mapping failure.
    Mapping(MappingError),
    /// Simulation construction failure.
    Sim(SimError),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Domain(e) => write!(f, "domain: {e}"),
            PlanError::Predict(e) => write!(f, "prediction: {e}"),
            PlanError::Alloc(e) => write!(f, "allocation: {e}"),
            PlanError::Mapping(e) => write!(f, "mapping: {e}"),
            PlanError::Sim(e) => write!(f, "simulation: {e}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<DomainError> for PlanError {
    fn from(e: DomainError) -> Self {
        PlanError::Domain(e)
    }
}
impl From<PredictError> for PlanError {
    fn from(e: PredictError) -> Self {
        PlanError::Predict(e)
    }
}
impl From<AllocError> for PlanError {
    fn from(e: AllocError) -> Self {
        PlanError::Alloc(e)
    }
}
impl From<MappingError> for PlanError {
    fn from(e: MappingError) -> Self {
        PlanError::Mapping(e)
    }
}
impl From<SimError> for PlanError {
    fn from(e: SimError) -> Self {
        PlanError::Sim(e)
    }
}

/// Configures how plans are produced. Builder-style.
#[derive(Debug, Clone)]
pub struct Planner {
    machine: Machine,
    strategy: Strategy,
    alloc: AllocPolicy,
    mapping: MappingKind,
    io_mode: IoMode,
    output_interval: Option<u32>,
    predictor: Option<ExecTimePredictor>,
}

impl Planner {
    /// A planner with the paper's recommended settings: concurrent
    /// execution, Huffman/split-tree allocation, partition mapping, no
    /// output.
    pub fn new(machine: Machine) -> Planner {
        Planner {
            machine,
            strategy: Strategy::Concurrent,
            alloc: AllocPolicy::HuffmanSplitTree,
            mapping: MappingKind::Partition,
            io_mode: IoMode::None,
            output_interval: None,
            predictor: None,
        }
    }

    /// Sets the execution strategy.
    pub fn strategy(mut self, s: Strategy) -> Self {
        self.strategy = s;
        self
    }

    /// Sets the allocation policy.
    pub fn alloc_policy(mut self, a: AllocPolicy) -> Self {
        self.alloc = a;
        self
    }

    /// Sets the mapping kind.
    pub fn mapping(mut self, m: MappingKind) -> Self {
        self.mapping = m;
        self
    }

    /// Enables history output in the given mode every `interval` parent
    /// iterations.
    pub fn output(mut self, mode: IoMode, interval: u32) -> Self {
        self.io_mode = mode;
        self.output_interval = Some(interval);
        self
    }

    /// Supplies a fitted predictor (otherwise one is fitted on demand from
    /// simulator profiling runs with a fixed seed).
    pub fn with_predictor(mut self, p: ExecTimePredictor) -> Self {
        self.predictor = Some(p);
        self
    }

    /// The machine this planner targets.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Produces an execution plan for `parent` with `nests`.
    pub fn plan(&self, parent: &Domain, nests: &[NestSpec]) -> Result<ExecutionPlan, PlanError> {
        let config = NestedConfig::new(parent.clone(), nests.to_vec())?;
        let nranks = self.machine.ranks();
        let grid = ProcGrid::near_square(nranks);
        let features: Vec<DomainFeatures> = nests.iter().map(DomainFeatures::from).collect();

        // 1. Predicted relative execution times.
        let ratios: Vec<f64> = if nests.is_empty() {
            Vec::new()
        } else {
            match self.alloc {
                AllocPolicy::Equal => vec![1.0; nests.len()],
                AllocPolicy::NaiveProportional => {
                    NaivePointsModel { coeff: 1.0 }.relative_times(&features)
                }
                AllocPolicy::HuffmanSplitTree => {
                    let fitted;
                    let predictor = match &self.predictor {
                        Some(p) => p,
                        None => {
                            fitted = crate::profile::fit_predictor(&self.machine, 0xBEEF);
                            &fitted
                        }
                    };
                    predictor.relative_times(&features)?
                }
            }
        };

        // 2. Processor allocation. Level-1 nests partition the whole grid;
        // their weights aggregate the work of their second-level children
        // (which step r₁·r₂ times per parent step). Children then
        // sub-partition their parent's rectangle among themselves.
        let level1 = config.level1();
        let partitions: Vec<Partition> = if nests.is_empty() {
            Vec::new()
        } else {
            match (self.strategy, self.alloc) {
                (Strategy::Sequential, _) => Vec::new(),
                _ => {
                    // Aggregate weights per level-1 nest.
                    let weight = |i: usize| -> f64 {
                        let own = ratios[i] * nests[i].refine_ratio as f64;
                        let kids: f64 = config
                            .children_of(i)
                            .iter()
                            .map(|&c| {
                                ratios[c]
                                    * nests[i].refine_ratio as f64
                                    * nests[c].refine_ratio as f64
                            })
                            .sum();
                        own + kids
                    };
                    let l1_weights: Vec<f64> = level1.iter().map(|&i| weight(i)).collect();
                    let l1_parts: Vec<Partition> = match self.alloc {
                        AllocPolicy::NaiveProportional => {
                            naive::proportional_strips(&grid, &l1_weights)?
                        }
                        AllocPolicy::Equal => naive::equal_split(&grid, level1.len())?,
                        AllocPolicy::HuffmanSplitTree => partition_grid(&grid, &l1_weights)?,
                    };
                    // Assemble the full per-nest partition list.
                    let mut rect_of: Vec<Option<Rect>> = vec![None; nests.len()];
                    for (slot, &i) in level1.iter().enumerate() {
                        rect_of[i] = Some(l1_parts[slot].rect);
                    }
                    for &i in &level1 {
                        let kids = config.children_of(i);
                        if kids.is_empty() {
                            continue;
                        }
                        let host = rect_of[i].expect("level-1 rect assigned");
                        let kid_ratios: Vec<f64> = kids.iter().map(|&c| ratios[c]).collect();
                        // Children sub-divide their parent nest's
                        // processors with the same split-tree algorithm
                        // (local grid anchored at the host rectangle).
                        let sub_grid = ProcGrid::new(host.w, host.h);
                        let sub = partition_grid(&sub_grid, &kid_ratios)?;
                        for (q, &c) in sub.iter().zip(&kids) {
                            rect_of[c] = Some(Rect::new(
                                host.x0 + q.rect.x0,
                                host.y0 + q.rect.y0,
                                q.rect.w,
                                q.rect.h,
                            ));
                        }
                    }
                    rect_of
                        .into_iter()
                        .enumerate()
                        .map(|(i, r)| Partition {
                            domain: i,
                            rect: r.expect("every nest assigned"),
                        })
                        .collect()
                }
            }
        };
        let rects: Vec<Rect> = partitions.iter().map(|p| p.rect).collect();
        // Mapping operates on the level-1 rectangles only (children occupy
        // subsets of their parent's processors). Sequential plans have no
        // partitions at all.
        let l1_rects: Vec<Rect> = if rects.is_empty() {
            Vec::new()
        } else {
            level1.iter().map(|&i| rects[i]).collect()
        };

        // 3. Mapping.
        let mapping = match self.mapping {
            MappingKind::Oblivious => Mapping::oblivious(self.machine.shape, nranks)?,
            MappingKind::Txyz => Mapping::txyz(self.machine.shape, nranks)?,
            MappingKind::Partition => {
                if l1_rects.is_empty() {
                    Mapping::oblivious(self.machine.shape, nranks)?
                } else {
                    Mapping::partition(self.machine.shape, &grid, &l1_rects)?
                }
            }
            MappingKind::MultiLevel => {
                if l1_rects.is_empty() {
                    Mapping::oblivious(self.machine.shape, nranks)?
                } else {
                    Mapping::multilevel(self.machine.shape, &grid, &l1_rects)?
                }
            }
        };

        let strategy = match self.strategy {
            Strategy::Sequential => ExecStrategy::Sequential,
            Strategy::Concurrent => ExecStrategy::Concurrent { partitions: rects },
        };

        Ok(ExecutionPlan {
            machine: self.machine.clone(),
            config,
            grid,
            strategy,
            partitions,
            predicted_ratios: ratios,
            mapping,
            io_mode: self.io_mode,
            output_interval: self.output_interval,
        })
    }
}

/// A fully-resolved plan: who runs where, under which mapping.
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    /// Target machine.
    pub machine: Machine,
    /// Parent-with-nests configuration.
    pub config: NestedConfig,
    /// Virtual processor grid.
    pub grid: ProcGrid,
    /// Execution strategy handed to the simulator.
    pub strategy: ExecStrategy,
    /// Per-nest processor rectangles (empty for sequential plans).
    pub partitions: Vec<Partition>,
    /// Predicted relative execution times (sum 1) used for allocation.
    pub predicted_ratios: Vec<f64>,
    /// The rank → slot mapping.
    pub mapping: Mapping,
    /// Output mode.
    pub io_mode: IoMode,
    /// Output interval (parent iterations).
    pub output_interval: Option<u32>,
}

impl ExecutionPlan {
    /// Executes the plan on the machine simulator for `iterations` parent
    /// iterations.
    pub fn simulate(&self, iterations: u32) -> Result<SimReport, PlanError> {
        Ok(self.simulate_traced(iterations)?.0)
    }

    /// Like [`ExecutionPlan::simulate`], additionally returning the
    /// per-iteration timeline.
    pub fn simulate_traced(
        &self,
        iterations: u32,
    ) -> Result<(SimReport, Vec<nestwx_netsim::IterationTrace>), PlanError> {
        let sim = Simulation::new(
            &self.machine,
            self.grid,
            &self.config,
            self.strategy.clone(),
            self.mapping.clone(),
            self.io_mode,
            self.output_interval,
        )?;
        Ok(sim.run_traced(iterations))
    }

    /// Like [`ExecutionPlan::simulate`] with a step-metrics recorder
    /// attached, returning the report plus the detached recorder (whole-run
    /// [`nestwx_netsim::ObsSummary`] totals, recent-steps ring, spans). The
    /// report is bitwise identical to an unobserved run.
    pub fn simulate_observed(
        &self,
        iterations: u32,
        obs: nestwx_netsim::ObsConfig,
    ) -> Result<(SimReport, nestwx_netsim::Recorder), PlanError> {
        let mut sim = self.compile()?.with_obs(obs);
        let report = sim.run_mut(iterations);
        let rec = sim.take_obs().expect("recorder attached above");
        Ok((report, rec))
    }

    /// Builds the simulation once (compiling its halo-step schedules) so it
    /// can be run repeatedly via [`Simulation::run_mut`] — the
    /// compile-once, simulate-many entry point for sweeps and benchmarks.
    pub fn compile(&self) -> Result<Simulation<'_>, PlanError> {
        Ok(Simulation::new(
            &self.machine,
            self.grid,
            &self.config,
            self.strategy.clone(),
            self.mapping.clone(),
            self.io_mode,
            self.output_interval,
        )?)
    }

    /// Processors allocated to nest `i` (the whole grid for sequential
    /// plans).
    pub fn procs_for_nest(&self, i: usize) -> u32 {
        match &self.strategy {
            ExecStrategy::Sequential => self.grid.len(),
            ExecStrategy::Concurrent { partitions } => partitions[i].area() as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pacific() -> (Domain, Vec<NestSpec>) {
        (
            Domain::parent(286, 307, 24.0),
            vec![
                NestSpec::new(259, 229, 3, (10, 12)),
                NestSpec::new(259, 229, 3, (150, 40)),
            ],
        )
    }

    #[test]
    fn plan_concurrent_partitions_cover_grid() {
        let (p, n) = pacific();
        let plan = Planner::new(Machine::bgl(64)).plan(&p, &n).unwrap();
        let total: u64 = plan.partitions.iter().map(|q| q.rect.area()).sum();
        assert_eq!(total, 64);
        assert_eq!(plan.predicted_ratios.len(), 2);
        // Equal nests → near-equal ratios.
        assert!((plan.predicted_ratios[0] - 0.5).abs() < 0.05);
    }

    #[test]
    fn plan_sequential_has_no_partitions() {
        let (p, n) = pacific();
        let plan = Planner::new(Machine::bgl(64))
            .strategy(Strategy::Sequential)
            .plan(&p, &n)
            .unwrap();
        assert!(plan.partitions.is_empty());
        assert_eq!(plan.strategy, ExecStrategy::Sequential);
        assert_eq!(plan.procs_for_nest(0), 64);
    }

    #[test]
    fn plan_simulates() {
        let (p, n) = pacific();
        let plan = Planner::new(Machine::bgl(64)).plan(&p, &n).unwrap();
        let rep = plan.simulate(2).unwrap();
        assert!(rep.total_time > 0.0);
        assert_eq!(rep.iterations, 2);
    }

    #[test]
    fn naive_policy_uses_point_shares() {
        let p = Domain::parent(286, 307, 24.0);
        let n = vec![
            NestSpec::new(100, 100, 3, (0, 0)),
            NestSpec::new(200, 150, 3, (50, 50)),
        ];
        let plan = Planner::new(Machine::bgl(64))
            .alloc_policy(AllocPolicy::NaiveProportional)
            .plan(&p, &n)
            .unwrap();
        let shares: Vec<f64> = plan.predicted_ratios.clone();
        assert!((shares[0] - 10000.0 / 40000.0).abs() < 1e-12);
        // Strips: full height.
        assert!(plan.partitions.iter().all(|q| q.rect.h == plan.grid.py));
    }

    #[test]
    fn equal_policy_splits_evenly() {
        let (p, n) = pacific();
        let plan = Planner::new(Machine::bgl(64))
            .alloc_policy(AllocPolicy::Equal)
            .plan(&p, &n)
            .unwrap();
        assert_eq!(
            plan.partitions[0].rect.area(),
            plan.partitions[1].rect.area()
        );
    }

    #[test]
    fn mapping_kinds_all_plan() {
        let (p, n) = pacific();
        for kind in MappingKind::ALL {
            let plan = Planner::new(Machine::bgl(64))
                .mapping(kind)
                .plan(&p, &n)
                .unwrap();
            assert_eq!(plan.mapping.len(), 64);
        }
    }

    #[test]
    fn plan_rejects_invalid_nest() {
        let p = Domain::parent(100, 100, 24.0);
        let n = vec![NestSpec::new(400, 400, 3, (50, 50))];
        let err = Planner::new(Machine::bgl(64)).plan(&p, &n).err().unwrap();
        assert!(matches!(err, PlanError::Domain(_)));
    }
}

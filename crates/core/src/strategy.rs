//! Strategy knobs of the planner.

use serde::{Deserialize, Serialize};

/// Whether sibling nests execute sequentially (WRF default) or concurrently
/// on disjoint processor partitions (the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Default: each nest on all processors, one after another.
    Sequential,
    /// Divide-and-conquer: each nest on its own partition, simultaneously.
    Concurrent,
}

/// How processors are divided among siblings (only used by
/// [`Strategy::Concurrent`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocPolicy {
    /// Equal split regardless of nest size (§3.2's strawman).
    Equal,
    /// Consecutive strips proportional to nest point counts (§4.6's naïve
    /// baseline).
    NaiveProportional,
    /// Huffman tree + balanced split-tree over predicted execution times
    /// (Algorithm 1).
    HuffmanSplitTree,
}

/// Which 2-D → 3-D process mapping to use (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MappingKind {
    /// Sequential XYZT order (Fig. 5b) — topology-oblivious.
    Oblivious,
    /// Blue Gene's TXYZ mapfile order.
    Txyz,
    /// Each partition on a contiguous torus region (Fig. 6a).
    Partition,
    /// Folded partitions optimising parent edges too (Fig. 6b).
    MultiLevel,
}

impl MappingKind {
    /// All mapping kinds, in the order the paper's tables list them.
    pub const ALL: [MappingKind; 4] = [
        MappingKind::Oblivious,
        MappingKind::Txyz,
        MappingKind::Partition,
        MappingKind::MultiLevel,
    ];

    /// `true` for the topology-aware schemes.
    pub fn is_topology_aware(&self) -> bool {
        matches!(self, MappingKind::Partition | MappingKind::MultiLevel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_awareness_classification() {
        assert!(!MappingKind::Oblivious.is_topology_aware());
        assert!(!MappingKind::Txyz.is_topology_aware());
        assert!(MappingKind::Partition.is_topology_aware());
        assert!(MappingKind::MultiLevel.is_topology_aware());
    }

    #[test]
    fn all_lists_every_kind() {
        assert_eq!(MappingKind::ALL.len(), 4);
    }
}

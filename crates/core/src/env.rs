//! Environment-variable knobs shared across the workspace binaries.
//!
//! The experiment harness (`NESTWX_JOBS`, `NESTWX_CONFIGS`, ...), the serve
//! daemon (`NESTWX_SERVE_WORKERS`, queue depth, cache capacity) and the CLI
//! all read tuning knobs the same way: a typed parse with a validity check,
//! a warning on stderr for an invalid value, and a silent fall-back to the
//! built-in default when the variable is unset.

fn env_parsed<T: std::str::FromStr>(name: &str, default: T, valid: impl Fn(&T) -> bool) -> T {
    match std::env::var(name) {
        Ok(v) => match v.trim().parse::<T>() {
            Ok(n) if valid(&n) => n,
            _ => {
                eprintln!("warning: ignoring invalid {name}={v:?}");
                default
            }
        },
        Err(_) => default,
    }
}

/// Environment variable `name` as a positive `usize`, else `default`
/// (warns on an invalid value). Shared by every binary so the knobs
/// (`NESTWX_JOBS`, `NESTWX_SERVE_WORKERS`, ...) parse identically.
pub fn env_usize(name: &str, default: usize) -> usize {
    env_parsed(name, default, |&n| n >= 1)
}

/// Environment variable `name` as a positive `u32`, else `default`.
pub fn env_u32(name: &str, default: u32) -> u32 {
    env_parsed(name, default, |&n| n >= 1)
}

/// Environment variable `name` as a finite non-negative `f64`, else
/// `default`.
pub fn env_f64(name: &str, default: f64) -> f64 {
    env_parsed(name, default, |&x: &f64| x.is_finite() && x >= 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Process-global environment: each test uses its own variable name so
    // parallel test threads cannot interfere.

    #[test]
    fn unset_returns_default() {
        assert_eq!(env_usize("NESTWX_TEST_ENV_UNSET", 7), 7);
        assert_eq!(env_f64("NESTWX_TEST_ENV_UNSET_F", 1.5), 1.5);
    }

    #[test]
    fn set_value_parses() {
        std::env::set_var("NESTWX_TEST_ENV_SET", "42");
        assert_eq!(env_usize("NESTWX_TEST_ENV_SET", 7), 42);
        assert_eq!(env_u32("NESTWX_TEST_ENV_SET", 7), 42);
    }

    #[test]
    fn invalid_value_falls_back() {
        std::env::set_var("NESTWX_TEST_ENV_BAD", "zero");
        assert_eq!(env_usize("NESTWX_TEST_ENV_BAD", 7), 7);
        std::env::set_var("NESTWX_TEST_ENV_ZERO", "0");
        assert_eq!(env_u32("NESTWX_TEST_ENV_ZERO", 9), 9);
        std::env::set_var("NESTWX_TEST_ENV_NEG", "-1.0");
        assert_eq!(env_f64("NESTWX_TEST_ENV_NEG", 2.0), 2.0);
    }
}

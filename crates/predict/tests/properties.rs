//! Property-based tests of the geometric predicates, the Delaunay
//! triangulation and the interpolator.

use nestwx_grid::DomainFeatures;
use nestwx_predict::geometry::{convex_hull, orient2d, point_in_hull};
use nestwx_predict::{Delaunay, ExecTimePredictor, Point};
use proptest::prelude::*;

fn arb_points(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        (0.0f64..10.0, 0.0f64..10.0).prop_map(|(x, y)| Point::new(x, y)),
        n,
    )
}

proptest! {
    /// orient2d is antisymmetric under swapping two vertices.
    #[test]
    fn orientation_antisymmetric(ax in -5.0f64..5.0, ay in -5.0..5.0,
                                 bx in -5.0f64..5.0, by in -5.0..5.0,
                                 cx in -5.0f64..5.0, cy in -5.0..5.0) {
        let (a, b, c) = (Point::new(ax, ay), Point::new(bx, by), Point::new(cx, cy));
        prop_assert!((orient2d(a, b, c) + orient2d(a, c, b)).abs() < 1e-9);
        // Cyclic invariance.
        prop_assert!((orient2d(a, b, c) - orient2d(b, c, a)).abs() < 1e-9);
    }

    /// The convex hull contains every input point.
    #[test]
    fn hull_contains_inputs(pts in arb_points(3..40)) {
        let hull = convex_hull(&pts);
        prop_assume!(hull.len() >= 3);
        for p in &pts {
            prop_assert!(point_in_hull(&hull, *p, 1e-9), "input point outside its hull");
        }
    }

    /// Hull vertices are in strictly counter-clockwise order.
    #[test]
    fn hull_is_convex_ccw(pts in arb_points(3..40)) {
        let hull = convex_hull(&pts);
        prop_assume!(hull.len() >= 3);
        let n = hull.len();
        for i in 0..n {
            prop_assert!(orient2d(hull[i], hull[(i + 1) % n], hull[(i + 2) % n]) > 0.0);
        }
    }

    /// Bowyer–Watson output satisfies the empty-circumcircle invariant and
    /// covers the hull area, for random well-separated point sets.
    #[test]
    fn delaunay_invariants(raw in arb_points(4..20)) {
        // Separate points to avoid duplicates (builder rejects them).
        let mut pts: Vec<Point> = Vec::new();
        for p in raw {
            if pts.iter().all(|q| q.dist(&p) > 1e-3) {
                pts.push(p);
            }
        }
        prop_assume!(pts.len() >= 4);
        let hull = convex_hull(&pts);
        prop_assume!(hull.len() >= 3);
        if let Some(d) = Delaunay::new(&pts) {
            prop_assert!(d.is_delaunay(), "empty-circumcircle violated");
            let hull_area: f64 = (1..hull.len() - 1)
                .map(|i| orient2d(hull[0], hull[i], hull[i + 1]) / 2.0)
                .sum();
            prop_assert!((d.area() - hull_area).abs() < 1e-6 * hull_area.max(1.0));
            // Euler relation for triangulations of point sets.
            let interior_ok = d.triangles().len() <= 2 * pts.len();
            prop_assert!(interior_ok);
        }
    }

    /// Interpolating a globally linear time surface is exact everywhere
    /// inside the hull (piecewise-linear reproduces linear functions).
    #[test]
    fn interpolator_reproduces_linear_surfaces(
        c0 in 0.1f64..5.0, cx in -0.5f64..0.5, cy in 1e-6f64..1e-4,
        qx in 120u32..380, qy in 130u32..390,
    ) {
        let f = |a: f64, p: f64| c0 + cx * a + cy * p;
        let dims: [(u32, u32); 9] = [
            (100, 200), (300, 150), (415, 445), (94, 124), (250, 250),
            (150, 300), (375, 250), (200, 120), (300, 380),
        ];
        let basis: Vec<(DomainFeatures, f64)> = dims
            .iter()
            .map(|&(nx, ny)| {
                let feat = DomainFeatures::from_dims(nx, ny);
                (feat, f(feat.aspect_ratio, feat.points))
            })
            .collect();
        let model = ExecTimePredictor::fit(&basis).unwrap();
        let q = DomainFeatures::from_dims(qx, qy);
        // Piecewise-linear interpolation is only exact *inside* the basis
        // hull; keep the query within the basis aspect range (the
        // out-of-hull fallback is a first-order heuristic tested
        // separately).
        prop_assume!(q.aspect_ratio > 0.6 && q.aspect_ratio < 1.4);
        let truth = f(q.aspect_ratio, q.points);
        prop_assume!(truth > 1e-9);
        let pred = model.predict(&q).unwrap();
        let err = (pred - truth).abs() / truth;
        prop_assert!(err < 0.15, "error {:.3} at {qx}x{qy}", err);
    }

    /// Relative times are a probability vector and order-preserving in
    /// domain size for fixed aspect ratio.
    #[test]
    fn relative_times_normalised(k in 2usize..6, base in 100u32..200) {
        let dims: [(u32, u32); 9] = [
            (100, 200), (300, 150), (415, 445), (94, 124), (250, 250),
            (150, 300), (375, 250), (200, 120), (300, 380),
        ];
        let basis: Vec<(DomainFeatures, f64)> = dims
            .iter()
            .map(|&(nx, ny)| (DomainFeatures::from_dims(nx, ny), 1e-6 * (nx as f64) * (ny as f64) + 0.01))
            .collect();
        let model = ExecTimePredictor::fit(&basis).unwrap();
        let features: Vec<DomainFeatures> =
            (0..k).map(|i| DomainFeatures::from_dims(base + 40 * i as u32, base + 40 * i as u32)).collect();
        let r = model.relative_times(&features).unwrap();
        prop_assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(r.iter().all(|&x| x > 0.0));
        for w in r.windows(2) {
            prop_assert!(w[1] > w[0], "bigger equal-aspect domain must cost more");
        }
    }
}

//! The naïve baseline: execution time proportional to point count.
//!
//! §3.1: "A naïve approach is to assume that execution times are
//! proportional to the number of points in the domain. However … a simple
//! univariate linear model based on this feature results in more than 19 %
//! prediction errors", because equal-area domains with different aspect
//! ratios have different x/y communication volumes.

use nestwx_grid::DomainFeatures;
use serde::{Deserialize, Serialize};

/// `time = coeff × points`, least-squares fitted through the origin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NaivePointsModel {
    /// Seconds per grid point.
    pub coeff: f64,
}

impl NaivePointsModel {
    /// Fits the proportionality coefficient from measurements.
    pub fn fit(basis: &[(DomainFeatures, f64)]) -> NaivePointsModel {
        let num: f64 = basis.iter().map(|(f, t)| f.points * t).sum();
        let den: f64 = basis.iter().map(|(f, _)| f.points * f.points).sum();
        NaivePointsModel {
            coeff: if den > 0.0 { num / den } else { 0.0 },
        }
    }

    /// Predicted time.
    pub fn predict(&self, f: &DomainFeatures) -> f64 {
        self.coeff * f.points
    }

    /// Relative times normalised to sum to 1 — under this model simply the
    /// point-count shares, which is exactly the naïve allocation of §4.6.
    pub fn relative_times(&self, domains: &[DomainFeatures]) -> Vec<f64> {
        let total: f64 = domains.iter().map(|f| f.points).sum();
        domains.iter().map(|f| f.points / total).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_exact_proportionality() {
        let basis: Vec<(DomainFeatures, f64)> = [(100u32, 100u32), (200, 150), (300, 310)]
            .iter()
            .map(|&(nx, ny)| (DomainFeatures::from_dims(nx, ny), 2e-6 * (nx * ny) as f64))
            .collect();
        let m = NaivePointsModel::fit(&basis);
        assert!((m.coeff - 2e-6).abs() < 1e-15);
    }

    #[test]
    fn cannot_distinguish_aspect_ratios() {
        // The model's fundamental blindness (paper's motivation for the
        // second feature): equal-area domains predict identically.
        let m = NaivePointsModel { coeff: 1e-6 };
        let a = DomainFeatures::from_dims(200, 300);
        let b = DomainFeatures::from_dims(300, 200);
        assert_eq!(m.predict(&a), m.predict(&b));
    }

    #[test]
    fn relative_times_are_point_shares() {
        let m = NaivePointsModel { coeff: 1e-6 };
        let ds = [
            DomainFeatures::from_dims(100, 100),
            DomainFeatures::from_dims(100, 300),
        ];
        let r = m.relative_times(&ds);
        assert!((r[0] - 0.25).abs() < 1e-12);
        assert!((r[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn naive_errs_on_aspect_dependent_cost() {
        // With a true cost containing a perimeter term, the naïve model's
        // error exceeds the interpolator's (>19 % vs <6 % in the paper —
        // here we just check it is materially worse on a skewed domain).
        let true_time = |nx: f64, ny: f64| 1e-6 * nx * ny + 4e-4 * (nx + ny);
        let basis: Vec<(DomainFeatures, f64)> = [
            (94u32, 124u32),
            (415, 445),
            (250, 250),
            (160, 140),
            (360, 390),
        ]
        .iter()
        .map(|&(nx, ny)| {
            (
                DomainFeatures::from_dims(nx, ny),
                true_time(nx as f64, ny as f64),
            )
        })
        .collect();
        let m = NaivePointsModel::fit(&basis);
        // Small skewed domain: perimeter share is large → underprediction.
        let f = DomainFeatures::from_dims(120, 240);
        let t_true = true_time(120.0, 240.0);
        let err = (m.predict(&f) - t_true).abs() / t_true;
        assert!(
            err > 0.06,
            "naïve error unexpectedly small: {:.1}%",
            err * 100.0
        );
    }
}

//! Cross-validation of the execution-time predictor.
//!
//! The paper validates its model against held-out test domains (§3.1). This
//! module provides leave-one-out and k-fold cross-validation over a
//! measured basis, so a deployment can estimate the model's error — and
//! detect an inadequate basis — *without extra profiling runs*.

use crate::interpolator::ExecTimePredictor;
use crate::naive::NaivePointsModel;
use nestwx_grid::DomainFeatures;
use serde::{Deserialize, Serialize};

/// Summary of a cross-validation sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CvReport {
    /// Relative error of each evaluated held-out point (absolute value).
    pub errors: Vec<f64>,
    /// Held-out points that could not be predicted (outside the reduced
    /// hull, degenerate fold, …).
    pub skipped: usize,
}

impl CvReport {
    /// Mean relative error.
    pub fn mean_error(&self) -> f64 {
        if self.errors.is_empty() {
            return 0.0;
        }
        self.errors.iter().sum::<f64>() / self.errors.len() as f64
    }

    /// Maximum relative error.
    pub fn max_error(&self) -> f64 {
        self.errors.iter().copied().fold(0.0, f64::max)
    }
}

/// Leave-one-out cross-validation: refit on `n − 1` basis points, predict
/// the held-out one. Hull-corner points (whose removal shrinks the hull so
/// the query falls outside) are predicted through the out-of-hull fallback,
/// like any production query.
pub fn leave_one_out(basis: &[(DomainFeatures, f64)]) -> CvReport {
    k_fold(basis, basis.len())
}

/// k-fold cross-validation (deterministic round-robin fold assignment).
pub fn k_fold(basis: &[(DomainFeatures, f64)], k: usize) -> CvReport {
    assert!(k >= 2 && k <= basis.len(), "need 2 ≤ k ≤ n folds");
    let mut errors = Vec::new();
    let mut skipped = 0;
    for fold in 0..k {
        let train: Vec<(DomainFeatures, f64)> = basis
            .iter()
            .enumerate()
            .filter(|(i, _)| i % k != fold)
            .map(|(_, b)| *b)
            .collect();
        let Ok(model) = ExecTimePredictor::fit(&train) else {
            skipped += basis.len().div_ceil(k);
            continue;
        };
        for (i, (f, truth)) in basis.iter().enumerate() {
            if i % k != fold {
                continue;
            }
            match model.predict(f) {
                Ok(pred) if *truth > 0.0 => errors.push((pred - truth).abs() / truth),
                _ => skipped += 1,
            }
        }
    }
    CvReport { errors, skipped }
}

/// Cross-validated comparison of the interpolation model against the naïve
/// points-proportional baseline on the same folds: returns
/// `(interpolation, naive)` reports.
pub fn compare_models(basis: &[(DomainFeatures, f64)], k: usize) -> (CvReport, CvReport) {
    let interp = k_fold(basis, k);
    let mut errors = Vec::new();
    for fold in 0..k {
        let train: Vec<(DomainFeatures, f64)> = basis
            .iter()
            .enumerate()
            .filter(|(i, _)| i % k != fold)
            .map(|(_, b)| *b)
            .collect();
        let model = NaivePointsModel::fit(&train);
        for (i, (f, truth)) in basis.iter().enumerate() {
            if i % k == fold && *truth > 0.0 {
                errors.push((model.predict(f) - truth).abs() / truth);
            }
        }
    }
    (interp, CvReport { errors, skipped: 0 })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic surface with an aspect term (like the simulator's).
    fn basis() -> Vec<(DomainFeatures, f64)> {
        let dims: [(u32, u32); 13] = [
            (94, 124),
            (415, 445),
            (100, 200),
            (300, 200),
            (200, 300),
            (250, 250),
            (150, 300),
            (375, 250),
            (160, 140),
            (360, 390),
            (120, 240),
            (420, 280),
            (240, 160),
        ];
        dims.iter()
            .map(|&(nx, ny)| {
                let f = DomainFeatures::from_dims(nx, ny);
                (f, 1e-6 * f.points + 4e-4 * (nx + ny) as f64)
            })
            .collect()
    }

    #[test]
    fn loo_error_is_small_on_smooth_surface() {
        let r = leave_one_out(&basis());
        assert!(!r.errors.is_empty());
        assert!(
            r.mean_error() < 0.10,
            "LOO mean error {:.3}",
            r.mean_error()
        );
    }

    #[test]
    fn k_fold_runs_and_bounds() {
        let r = k_fold(&basis(), 4);
        assert!(r.errors.len() + r.skipped >= 12);
        assert!(r.max_error() < 0.5);
    }

    #[test]
    fn interpolation_beats_naive_in_cv() {
        let (interp, naive) = compare_models(&basis(), 4);
        assert!(
            interp.mean_error() < naive.mean_error(),
            "interp {:.3} !< naive {:.3}",
            interp.mean_error(),
            naive.mean_error()
        );
    }

    #[test]
    #[should_panic]
    fn rejects_k_of_one() {
        k_fold(&basis(), 1);
    }
}

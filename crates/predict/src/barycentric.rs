//! Barycentric coordinates and linear interpolation inside a triangle —
//! Eqs. (1)–(4) of the paper.
//!
//! Note: the paper's Eq. (3) prints `λ3 = λ1 − λ2`, a typo for the standard
//! identity `λ3 = 1 − λ1 − λ2` (the barycentric coordinates of a point must
//! sum to one); we implement the correct identity.

use crate::geometry::Point;

/// Barycentric coordinates `(λ1, λ2, λ3)` of `p` with respect to triangle
/// `(a, b, c)`. Returns `None` for a degenerate triangle.
pub fn barycentric(a: Point, b: Point, c: Point, p: Point) -> Option<(f64, f64, f64)> {
    let det = (b.y - c.y) * (a.x - c.x) + (c.x - b.x) * (a.y - c.y);
    if det.abs() < 1e-300 {
        return None;
    }
    // Eq. (1) and Eq. (2).
    let l1 = ((b.y - c.y) * (p.x - c.x) + (c.x - b.x) * (p.y - c.y)) / det;
    let l2 = ((c.y - a.y) * (p.x - c.x) + (a.x - c.x) * (p.y - c.y)) / det;
    // Eq. (3), corrected: coordinates sum to 1.
    let l3 = 1.0 - l1 - l2;
    Some((l1, l2, l3))
}

/// Eq. (4): interpolates the value at `p` from the vertex values
/// `(ta, tb, tc)` of triangle `(a, b, c)`.
pub fn interpolate(
    a: Point,
    b: Point,
    c: Point,
    p: Point,
    ta: f64,
    tb: f64,
    tc: f64,
) -> Option<f64> {
    let (l1, l2, l3) = barycentric(a, b, c, p)?;
    Some(l1 * ta + l2 * tb + l3 * tc)
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Point = Point::new(0.0, 0.0);
    const B: Point = Point::new(1.0, 0.0);
    const C: Point = Point::new(0.0, 1.0);

    #[test]
    fn vertices_have_unit_coordinates() {
        assert_eq!(barycentric(A, B, C, A).unwrap(), (1.0, 0.0, 0.0));
        assert_eq!(barycentric(A, B, C, B).unwrap(), (0.0, 1.0, 0.0));
        let (l1, l2, l3) = barycentric(A, B, C, C).unwrap();
        assert!((l1, l2, l3) == (0.0, 0.0, 1.0) || (l3 - 1.0).abs() < 1e-15);
    }

    #[test]
    fn centroid_is_one_third_each() {
        let p = Point::new(1.0 / 3.0, 1.0 / 3.0);
        let (l1, l2, l3) = barycentric(A, B, C, p).unwrap();
        assert!((l1 - 1.0 / 3.0).abs() < 1e-12);
        assert!((l2 - 1.0 / 3.0).abs() < 1e-12);
        assert!((l3 - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn coordinates_sum_to_one_everywhere() {
        for &p in &[
            Point::new(0.2, 0.3),
            Point::new(-1.0, 2.0), // outside: still sums to 1
            Point::new(5.0, -3.0),
        ] {
            let (l1, l2, l3) = barycentric(A, B, C, p).unwrap();
            assert!((l1 + l2 + l3 - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn interpolation_reproduces_linear_functions() {
        // f(x, y) = 3x + 2y + 1 must be reproduced exactly.
        let f = |p: Point| 3.0 * p.x + 2.0 * p.y + 1.0;
        let p = Point::new(0.31, 0.17);
        let t = interpolate(A, B, C, p, f(A), f(B), f(C)).unwrap();
        assert!((t - f(p)).abs() < 1e-12);
    }

    #[test]
    fn degenerate_triangle_rejected() {
        assert!(barycentric(A, B, Point::new(2.0, 0.0), Point::new(0.5, 0.5)).is_none());
    }

    #[test]
    fn outside_point_has_negative_coordinate() {
        let (l1, l2, l3) = barycentric(A, B, C, Point::new(1.0, 1.0)).unwrap();
        assert!(l1 < 0.0 || l2 < 0.0 || l3 < 0.0);
    }
}

//! Bowyer–Watson Delaunay triangulation.
//!
//! The basis set is small (13 points in the paper), so the O(n²)
//! incremental construction with a super-triangle is both adequate and easy
//! to verify. The resulting triangulation satisfies the empty-circumcircle
//! property, which the property tests assert directly.

use crate::geometry::{circumcircle, in_circumcircle, orient2d, Point};
use serde::{Deserialize, Serialize};

/// A triangle as indices into the triangulation's point list, stored in
/// counter-clockwise order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Triangle {
    /// Vertex indices (CCW).
    pub v: [usize; 3],
}

/// A Delaunay triangulation of a planar point set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Delaunay {
    points: Vec<Point>,
    triangles: Vec<Triangle>,
}

impl Delaunay {
    /// Triangulates `points` (at least 3, not all collinear).
    ///
    /// Duplicate points are rejected with `None`, as is a fully collinear
    /// input. Near-degenerate inputs (slivers, cocircular clusters) can
    /// defeat floating-point predicates; when the built triangulation fails
    /// to cover the convex hull, the input is retried with a tiny
    /// deterministic perturbation (well below any meaningful feature
    /// distance), up to three times.
    pub fn new(points: &[Point]) -> Option<Delaunay> {
        let hull = crate::geometry::convex_hull(points);
        if hull.len() < 3 {
            return None;
        }
        let hull_area: f64 = (1..hull.len() - 1)
            .map(|i| orient2d(hull[0], hull[i], hull[i + 1]) / 2.0)
            .sum();
        let scale = points
            .iter()
            .flat_map(|p| [p.x.abs(), p.y.abs()])
            .fold(0.0f64, f64::max)
            .max(1e-12);
        for attempt in 0..5u32 {
            let magnitude = match attempt {
                0 => 0.0,
                1 => 1e-7,
                2 => 1e-6,
                3 => 1e-5,
                _ => 1e-4,
            };
            let jittered: Vec<Point> = if attempt == 0 {
                points.to_vec()
            } else {
                points
                    .iter()
                    .enumerate()
                    .map(|(i, p)| {
                        let j = |k: u64| {
                            let mut z = (i as u64 + 1)
                                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                                .wrapping_add(k)
                                .wrapping_mul(attempt as u64 + 1);
                            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                            (z >> 11) as f64 / (1u64 << 53) as f64 - 0.5
                        };
                        Point::new(
                            p.x + scale * magnitude * j(1),
                            p.y + scale * magnitude * j(2),
                        )
                    })
                    .collect()
            };
            if let Some(d) = Delaunay::build_once(&jittered) {
                // Recompute against the *jittered* hull (jitter can shift
                // the hull area slightly).
                let jhull = crate::geometry::convex_hull(&jittered);
                let jarea: f64 = (1..jhull.len().saturating_sub(1))
                    .map(|i| orient2d(jhull[0], jhull[i], jhull[i + 1]) / 2.0)
                    .sum();
                let target = if attempt == 0 { hull_area } else { jarea };
                if (d.area() - target).abs() <= 1e-6 * target.max(1e-12) {
                    return Some(d);
                }
            }
        }
        // A triangulation that does not cover the hull would silently
        // mis-interpolate; report the input as degenerate instead.
        None
    }

    /// One Bowyer–Watson construction attempt.
    fn build_once(points: &[Point]) -> Option<Delaunay> {
        if points.len() < 3 {
            return None;
        }
        for (i, a) in points.iter().enumerate() {
            for b in &points[i + 1..] {
                if a.dist(b) < 1e-12 {
                    return None; // duplicate
                }
            }
        }

        // Super-triangle comfortably containing all points.
        let (mut min_x, mut min_y, mut max_x, mut max_y) = (
            f64::INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NEG_INFINITY,
        );
        for p in points {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        // The super-triangle must be far enough away that its vertices'
        // circumcircles through input edges approximate half-planes;
        // otherwise points near a hull edge can eat that edge and leave a
        // notch after the super vertices are dropped.
        let d = (max_x - min_x).max(max_y - min_y).max(1.0) * 4096.0;
        let mid = Point::new((min_x + max_x) / 2.0, (min_y + max_y) / 2.0);
        let s0 = Point::new(mid.x - d, mid.y - d * 0.7);
        let s1 = Point::new(mid.x + d, mid.y - d * 0.7);
        let s2 = Point::new(mid.x, mid.y + d);

        let mut pts: Vec<Point> = points.to_vec();
        let n = pts.len();
        pts.push(s0);
        pts.push(s1);
        pts.push(s2);
        let mut tris: Vec<Triangle> = vec![Triangle {
            v: ccw(&pts, [n, n + 1, n + 2]),
        }];

        for (i, &p) in points.iter().enumerate() {
            // Find all triangles whose circumcircle contains p.
            // Strict in-circle only: a looser boundary band here can make
            // the cavity non-star-shaped around slivers and produce
            // overlapping triangles. Cocircular ambiguities are repaired by
            // the Lawson flip pass below instead.
            let (bad, good): (Vec<Triangle>, Vec<Triangle>) = tris
                .iter()
                .partition(|t| in_circumcircle(pts[t.v[0]], pts[t.v[1]], pts[t.v[2]], p));
            if bad.is_empty() {
                // Numerically stuck (shouldn't happen inside the super
                // triangle) — treat as failure.
                return None;
            }
            tris = good;
            // Boundary of the cavity: edges appearing exactly once.
            let mut edges: Vec<(usize, usize)> = Vec::new();
            for t in &bad {
                for k in 0..3 {
                    let e = (t.v[k], t.v[(k + 1) % 3]);
                    // An edge shared with another bad triangle appears
                    // reversed there.
                    if let Some(pos) = edges.iter().position(|&(a, b)| (a, b) == (e.1, e.0)) {
                        edges.remove(pos);
                    } else {
                        edges.push(e);
                    }
                }
            }
            for (a, b) in edges {
                // Scale-relative degeneracy guard: skip triangles whose
                // area is vanishing relative to the edge length.
                let len2 = pts[a].dist(&pts[b]).powi(2);
                if orient2d(pts[a], pts[b], p).abs() > 1e-12 * len2.max(f64::MIN_POSITIVE) {
                    tris.push(Triangle {
                        v: ccw(&pts, [a, b, i]),
                    });
                }
            }
        }

        // Drop triangles touching the super-triangle.
        tris.retain(|t| t.v.iter().all(|&v| v < n));
        pts.truncate(n);
        if tris.is_empty() {
            return None; // all input collinear
        }
        // Lawson flip post-pass: repair any locally non-Delaunay edges the
        // incremental cavities missed on near-degenerate input.
        lawson_flips(&pts, &mut tris);
        Some(Delaunay {
            points: pts,
            triangles: tris,
        })
    }

    /// The triangulated points.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The triangles.
    pub fn triangles(&self) -> &[Triangle] {
        &self.triangles
    }

    /// Finds a triangle containing `p` (boundary inclusive), returning its
    /// index. Linear scan — the basis set is tiny.
    pub fn locate(&self, p: Point) -> Option<usize> {
        let eps = 1e-9;
        self.triangles.iter().position(|t| {
            let [a, b, c] = [
                self.points[t.v[0]],
                self.points[t.v[1]],
                self.points[t.v[2]],
            ];
            orient2d(a, b, p) >= -eps && orient2d(b, c, p) >= -eps && orient2d(c, a, p) >= -eps
        })
    }

    /// Verifies the empty-circumcircle property over all triangles — the
    /// defining Delaunay invariant (used by tests). Points within the
    /// construction's epsilon band of a circumcircle boundary are treated
    /// as on the boundary (floating-point input admits only
    /// Delaunay-up-to-epsilon).
    pub fn is_delaunay(&self) -> bool {
        for t in &self.triangles {
            let [a, b, c] = [
                self.points[t.v[0]],
                self.points[t.v[1]],
                self.points[t.v[2]],
            ];
            for (i, &p) in self.points.iter().enumerate() {
                if t.v.contains(&i) {
                    continue;
                }
                if in_circumcircle(a, b, c, p) && !on_triangle_boundary_circ(&self.points, t, p) {
                    return false;
                }
            }
        }
        true
    }

    /// Total area of the triangulation (should equal the convex hull area).
    pub fn area(&self) -> f64 {
        self.triangles
            .iter()
            .map(|t| {
                orient2d(
                    self.points[t.v[0]],
                    self.points[t.v[1]],
                    self.points[t.v[2]],
                ) / 2.0
            })
            .sum()
    }
}

/// Lawson edge-flipping until every interior edge is locally Delaunay.
/// O(T²) per pass — fine for the small basis sets this crate triangulates.
fn lawson_flips(pts: &[Point], tris: &mut [Triangle]) {
    let max_passes = 4 * tris.len() * tris.len() + 16;
    for _ in 0..max_passes {
        let mut flipped = false;
        'outer: for i in 0..tris.len() {
            for j in (i + 1)..tris.len() {
                if let Some((a, b, c, d)) = shared_edge(&tris[i], &tris[j]) {
                    // t_i = (a, b, c) CCW, t_j contains edge (b, a) with
                    // opposite vertex d. Flip if d is strictly inside the
                    // circumcircle of (a, b, c) and the quad a-d-b-c is
                    // convex.
                    let (pa, pb, pc, pd) = (pts[a], pts[b], pts[c], pts[d]);
                    // Convex quad ⇔ a and b lie strictly on opposite sides
                    // of the prospective new edge c–d.
                    let sa = orient2d(pc, pd, pa);
                    let sb = orient2d(pc, pd, pb);
                    if in_circumcircle(pa, pb, pc, pd) && sa * sb < 0.0 {
                        tris[i] = Triangle {
                            v: ccw(pts, [a, d, c]),
                        };
                        tris[j] = Triangle {
                            v: ccw(pts, [d, b, c]),
                        };
                        flipped = true;
                        break 'outer;
                    }
                }
            }
        }
        if !flipped {
            break;
        }
    }
}

/// If `t1` and `t2` share exactly one edge, returns `(a, b, c, d)` where
/// `(a, b)` is the shared edge oriented so that `t1 = (a, b, c)` is CCW and
/// `d` is `t2`'s opposite vertex.
fn shared_edge(t1: &Triangle, t2: &Triangle) -> Option<(usize, usize, usize, usize)> {
    for k in 0..3 {
        let a = t1.v[k];
        let b = t1.v[(k + 1) % 3];
        let c = t1.v[(k + 2) % 3];
        if t2.v.contains(&a) && t2.v.contains(&b) {
            let d = *t2.v.iter().find(|v| **v != a && **v != b)?;
            return Some((a, b, c, d));
        }
    }
    None
}

/// Ensures CCW ordering of a vertex triple.
fn ccw(pts: &[Point], v: [usize; 3]) -> [usize; 3] {
    if orient2d(pts[v[0]], pts[v[1]], pts[v[2]]) < 0.0 {
        [v[0], v[2], v[1]]
    } else {
        v
    }
}

/// Conservative companion to the strict in-circle test: `true` when `p` is
/// within epsilon of triangle `t`'s circumcircle boundary, so cavity
/// formation does not leave slivers for cocircular inputs.
fn on_triangle_boundary_circ(pts: &[Point], t: &Triangle, p: Point) -> bool {
    match circumcircle(pts[t.v[0]], pts[t.v[1]], pts[t.v[2]]) {
        Some((c, r2)) => {
            let d2 = c.dist(&p).powi(2);
            (d2 - r2).abs() < 1e-9 * r2.max(1.0)
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::convex_hull;

    fn square() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ]
    }

    #[test]
    fn triangulates_square_into_two() {
        let d = Delaunay::new(&square()).unwrap();
        assert_eq!(d.triangles().len(), 2);
        assert!(d.is_delaunay());
        assert!((d.area() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(Delaunay::new(&[Point::new(0.0, 0.0), Point::new(1.0, 1.0)]).is_none());
        assert!(Delaunay::new(&[
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0)
        ])
        .is_none());
        assert!(Delaunay::new(&[
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0)
        ])
        .is_none());
    }

    #[test]
    fn locate_inside_and_outside() {
        let d = Delaunay::new(&square()).unwrap();
        assert!(d.locate(Point::new(0.25, 0.25)).is_some());
        assert!(d.locate(Point::new(0.5, 0.5)).is_some()); // on diagonal
        assert!(d.locate(Point::new(2.0, 2.0)).is_none());
    }

    #[test]
    fn thirteen_point_basis_like_paper() {
        // A 13-point spread like the paper's basis (Fig. 3a): corners plus
        // interior points of the (aspect, points) rectangle, normalised.
        let pts = vec![
            Point::new(0.5, 0.0),
            Point::new(1.5, 0.0),
            Point::new(1.5, 1.0),
            Point::new(0.5, 1.0),
            Point::new(1.0, 0.5),
            Point::new(0.75, 0.25),
            Point::new(1.25, 0.25),
            Point::new(0.75, 0.75),
            Point::new(1.25, 0.75),
            Point::new(1.0, 0.1),
            Point::new(1.0, 0.9),
            Point::new(0.6, 0.5),
            Point::new(1.4, 0.5),
        ];
        let d = Delaunay::new(&pts).unwrap();
        assert!(d.is_delaunay());
        // Every interior point of the hull must be locatable.
        assert!(d.locate(Point::new(1.0, 0.4)).is_some());
        assert!(d.locate(Point::new(0.55, 0.05)).is_some());
        // Triangulation area == hull area.
        let hull = convex_hull(&pts);
        let hull_area: f64 = (1..hull.len() - 1)
            .map(|i| crate::geometry::orient2d(hull[0], hull[i], hull[i + 1]) / 2.0)
            .sum();
        assert!((d.area() - hull_area).abs() < 1e-9);
    }

    #[test]
    fn cocircular_points_handled() {
        // 4 cocircular points (unit circle) + center.
        let pts = vec![
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(-1.0, 0.0),
            Point::new(0.0, -1.0),
            Point::new(0.0, 0.0),
        ];
        let d = Delaunay::new(&pts).unwrap();
        assert!(d.is_delaunay());
        assert!((d.area() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn euler_relation_holds() {
        // For a triangulation of a point set with h hull vertices and n
        // total: triangles = 2n - h - 2.
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 3.0),
            Point::new(0.0, 3.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
            Point::new(3.0, 1.2),
        ];
        let d = Delaunay::new(&pts).unwrap();
        let h = convex_hull(&pts).len();
        assert_eq!(d.triangles().len(), 2 * pts.len() - h - 2);
    }
}

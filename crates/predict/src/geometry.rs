//! Planar geometric primitives: points, orientation and in-circumcircle
//! predicates, convex hull.
//!
//! The feature plane mixes very different scales (aspect ratio ∈ [0.5, 1.5],
//! points ∈ [10⁴, 10⁶]); the interpolator normalises coordinates before
//! triangulating, so the predicates here can use plain `f64` arithmetic with
//! a relative epsilon rather than exact arithmetic.

use serde::{Deserialize, Serialize};

/// A point in the (normalised) feature plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate (aspect ratio).
    pub x: f64,
    /// Vertical coordinate (total points).
    pub y: f64,
}

impl Point {
    /// Convenience constructor.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance.
    pub fn dist(&self, other: &Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// Twice the signed area of triangle `abc`: positive when counter-clockwise.
pub fn orient2d(a: Point, b: Point, c: Point) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// `true` when `d` lies strictly inside the circumcircle of the
/// counter-clockwise triangle `abc` — the Delaunay empty-circle predicate.
pub fn in_circumcircle(a: Point, b: Point, c: Point, d: Point) -> bool {
    debug_assert!(
        orient2d(a, b, c) > 0.0,
        "in_circumcircle requires CCW triangle"
    );
    let (adx, ady) = (a.x - d.x, a.y - d.y);
    let (bdx, bdy) = (b.x - d.x, b.y - d.y);
    let (cdx, cdy) = (c.x - d.x, c.y - d.y);
    let ad = adx * adx + ady * ady;
    let bd = bdx * bdx + bdy * bdy;
    let cd = cdx * cdx + cdy * cdy;
    let (m1, m2) = (bdy * cd, bd * cdy);
    let (m3, m4) = (bdx * cd, bd * cdx);
    let (m5, m6) = (bdx * cdy, bdy * cdx);
    let det = adx * (m1 - m2) - ady * (m3 - m4) + ad * (m5 - m6);
    // Static floating-point filter: the rounding error of the expansion is
    // bounded by a small multiple of machine epsilon times the permanent
    // (the same expression with all terms taken positively).
    let perm = adx.abs() * (m1.abs() + m2.abs())
        + ady.abs() * (m3.abs() + m4.abs())
        + ad * (m5.abs() + m6.abs());
    det > 1e-13 * perm.max(f64::MIN_POSITIVE)
}

/// Circumcenter and squared circumradius of triangle `abc`.
/// Returns `None` for (near-)degenerate triangles.
pub fn circumcircle(a: Point, b: Point, c: Point) -> Option<(Point, f64)> {
    let d = 2.0 * (a.x * (b.y - c.y) + b.x * (c.y - a.y) + c.x * (a.y - b.y));
    if d.abs() < 1e-12 {
        return None;
    }
    let a2 = a.x * a.x + a.y * a.y;
    let b2 = b.x * b.x + b.y * b.y;
    let c2 = c.x * c.x + c.y * c.y;
    let ux = (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d;
    let uy = (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d;
    let center = Point::new(ux, uy);
    let r2 = center.dist(&a).powi(2);
    Some((center, r2))
}

/// Andrew's monotone-chain convex hull. Returns hull vertices in
/// counter-clockwise order, without repeating the first point. Collinear
/// boundary points are dropped.
pub fn convex_hull(points: &[Point]) -> Vec<Point> {
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
    pts.dedup_by(|a, b| a.x == b.x && a.y == b.y);
    let n = pts.len();
    if n < 3 {
        return pts;
    }
    let mut hull: Vec<Point> = Vec::with_capacity(2 * n);
    // Lower hull.
    for &p in &pts {
        while hull.len() >= 2 && orient2d(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0 {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len
            && orient2d(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop(); // last point == first point
    hull
}

/// `true` if `p` is inside or on the boundary of the counter-clockwise
/// polygon `hull`.
pub fn point_in_hull(hull: &[Point], p: Point, eps: f64) -> bool {
    if hull.len() < 3 {
        return false;
    }
    for i in 0..hull.len() {
        let a = hull[i];
        let b = hull[(i + 1) % hull.len()];
        if orient2d(a, b, p) < -eps {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orientation_signs() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        let c = Point::new(0.0, 1.0);
        assert!(orient2d(a, b, c) > 0.0); // CCW
        assert!(orient2d(a, c, b) < 0.0); // CW
        assert_eq!(orient2d(a, b, Point::new(2.0, 0.0)), 0.0); // collinear
    }

    #[test]
    fn circumcircle_of_right_triangle() {
        // Right triangle: circumcenter at hypotenuse midpoint.
        let (c, r2) = circumcircle(
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(0.0, 2.0),
        )
        .unwrap();
        assert!((c.x - 1.0).abs() < 1e-12 && (c.y - 1.0).abs() < 1e-12);
        assert!((r2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn circumcircle_degenerate() {
        assert!(circumcircle(
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0)
        )
        .is_none());
    }

    #[test]
    fn in_circle_unit_square_corners() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        let c = Point::new(0.0, 1.0);
        assert!(in_circumcircle(a, b, c, Point::new(0.5, 0.5)));
        assert!(!in_circumcircle(a, b, c, Point::new(2.0, 2.0)));
        // (1,1) lies exactly on the circumcircle: not strictly inside.
        assert!(!in_circumcircle(a, b, c, Point::new(1.0, 1.0)));
    }

    #[test]
    fn hull_of_square_with_interior() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
            Point::new(0.5, 0.5),
            Point::new(0.25, 0.75),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        // CCW orientation.
        for i in 0..4 {
            assert!(orient2d(hull[i], hull[(i + 1) % 4], hull[(i + 2) % 4]) > 0.0);
        }
    }

    #[test]
    fn hull_drops_collinear() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(0.5, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.5, 1.0),
        ];
        assert_eq!(convex_hull(&pts).len(), 3);
    }

    #[test]
    fn point_in_hull_checks() {
        let hull = convex_hull(&[
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ]);
        assert!(point_in_hull(&hull, Point::new(1.0, 1.0), 1e-12));
        assert!(point_in_hull(&hull, Point::new(0.0, 0.0), 1e-12)); // vertex
        assert!(point_in_hull(&hull, Point::new(1.0, 0.0), 1e-12)); // edge
        assert!(!point_in_hull(&hull, Point::new(3.0, 1.0), 1e-12));
        assert!(!point_in_hull(&hull, Point::new(-0.1, 1.0), 1e-12));
    }
}

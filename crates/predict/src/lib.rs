//! Performance prediction via Delaunay interpolation (§3.1 of the paper).
//!
//! A domain is a point in the 2-D feature plane *(aspect ratio, total
//! points)*. The execution times of a small basis set (13 domains in the
//! paper) are measured once; the convex hull of the basis points is
//! Delaunay-triangulated, and the time of any other domain is interpolated
//! barycentrically inside the triangle containing its feature point
//! (Eqs. (1)–(4)). Queries outside the hull are scaled down into the region
//! of coverage, predicting *relative* times, which is all the processor
//! allocator needs.
//!
//! The naïve baseline — time proportional to point count — is also provided;
//! the paper reports > 19 % error for it versus < 6 % for the interpolator.
//!
//! Everything here is built from scratch: orientation/in-circumcircle
//! predicates, Andrew's monotone-chain convex hull, Bowyer–Watson
//! triangulation and the barycentric solve.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod barycentric;
pub mod basis;
pub mod delaunay;
pub mod geometry;
pub mod interpolator;
pub mod naive;
pub mod validate;

pub use basis::{
    domain_with, generate_candidates, select_basis, select_basis_covering, BasisDomain,
};
pub use delaunay::{Delaunay, Triangle};
pub use geometry::{convex_hull, Point};
pub use interpolator::{ExecTimePredictor, PredictError};
pub use naive::NaivePointsModel;
pub use validate::{compare_models, k_fold, leave_one_out, CvReport};

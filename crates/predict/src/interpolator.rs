//! The execution-time predictor of §3.1.
//!
//! Fitted from a small set of `(domain features, measured time)` pairs. The
//! feature plane is normalised to the unit square (aspect ratios are O(1)
//! while point counts are O(10⁵)), triangulated, and queries answered by
//! barycentric interpolation. Queries outside the convex hull of the basis
//! are scaled down along the ray to the hull centroid and the result scaled
//! back by the point-count ratio — this "captures the relative execution
//! times of those larger domains … and hence suffices as a first order
//! estimate" (paper, §3.1).

use crate::barycentric::interpolate;
use crate::delaunay::Delaunay;
use crate::geometry::{convex_hull, point_in_hull, Point};
use nestwx_grid::DomainFeatures;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors fitting or querying the predictor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredictError {
    /// Fewer than three basis measurements, or a degenerate basis.
    DegenerateBasis,
    /// A query could not be answered (numerical failure).
    QueryFailed,
}

impl fmt::Display for PredictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredictError::DegenerateBasis => {
                write!(f, "basis set is too small or degenerate to triangulate")
            }
            PredictError::QueryFailed => write!(f, "interpolation query failed"),
        }
    }
}

impl std::error::Error for PredictError {}

/// Piecewise-linear execution-time model over the (aspect ratio, points)
/// feature plane.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecTimePredictor {
    basis: Vec<(DomainFeatures, f64)>,
    tri: Delaunay,
    hull: Vec<Point>,
    centroid: Point,
    x_min: f64,
    x_range: f64,
    y_min: f64,
    y_range: f64,
}

impl ExecTimePredictor {
    /// Fits the model from `(features, measured seconds)` pairs — the 13
    /// profiling runs of the paper.
    pub fn fit(basis: &[(DomainFeatures, f64)]) -> Result<Self, PredictError> {
        if basis.len() < 3 {
            return Err(PredictError::DegenerateBasis);
        }
        let xs: Vec<f64> = basis.iter().map(|(f, _)| f.aspect_ratio).collect();
        let ys: Vec<f64> = basis.iter().map(|(f, _)| f.points).collect();
        let (x_min, x_max) = min_max(&xs);
        let (y_min, y_max) = min_max(&ys);
        let x_range = (x_max - x_min).max(1e-9);
        let y_range = (y_max - y_min).max(1e-9);
        let norm: Vec<Point> = basis
            .iter()
            .map(|(f, _)| {
                Point::new(
                    (f.aspect_ratio - x_min) / x_range,
                    (f.points - y_min) / y_range,
                )
            })
            .collect();
        let tri = Delaunay::new(&norm).ok_or(PredictError::DegenerateBasis)?;
        let hull = convex_hull(&norm);
        if hull.len() < 3 {
            return Err(PredictError::DegenerateBasis);
        }
        let centroid = Point::new(
            hull.iter().map(|p| p.x).sum::<f64>() / hull.len() as f64,
            hull.iter().map(|p| p.y).sum::<f64>() / hull.len() as f64,
        );
        Ok(ExecTimePredictor {
            basis: basis.to_vec(),
            tri,
            hull,
            centroid,
            x_min,
            x_range,
            y_min,
            y_range,
        })
    }

    /// The basis measurements the model was fitted from.
    pub fn basis(&self) -> &[(DomainFeatures, f64)] {
        &self.basis
    }

    fn normalize(&self, f: &DomainFeatures) -> Point {
        Point::new(
            (f.aspect_ratio - self.x_min) / self.x_range,
            (f.points - self.y_min) / self.y_range,
        )
    }

    fn denorm_points(&self, p: Point) -> f64 {
        p.y * self.y_range + self.y_min
    }

    /// Interpolated execution time at a point inside the hull.
    fn interp_at(&self, p: Point) -> Result<f64, PredictError> {
        let t = self.tri.locate(p).ok_or(PredictError::QueryFailed)?;
        let tri = self.tri.triangles()[t];
        let pts = self.tri.points();
        interpolate(
            pts[tri.v[0]],
            pts[tri.v[1]],
            pts[tri.v[2]],
            p,
            self.basis[tri.v[0]].1,
            self.basis[tri.v[1]].1,
            self.basis[tri.v[2]].1,
        )
        .ok_or(PredictError::QueryFailed)
    }

    /// Predicts the execution time of a domain with the given features.
    ///
    /// Inside the basis hull this is exact piecewise-linear interpolation;
    /// outside, the query is pulled back along the ray to the hull centroid
    /// and the result scaled by the point-count ratio (first-order
    /// compute ∝ points), preserving relative times for larger domains.
    pub fn predict(&self, f: &DomainFeatures) -> Result<f64, PredictError> {
        let p = self.normalize(f);
        let eps = 1e-9;
        if point_in_hull(&self.hull, p, eps) {
            return self.interp_at(p);
        }
        // Binary search the largest t with centroid + t (p - centroid)
        // inside the hull.
        let (mut lo, mut hi) = (0.0f64, 1.0f64);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            let q = Point::new(
                self.centroid.x + mid * (p.x - self.centroid.x),
                self.centroid.y + mid * (p.y - self.centroid.y),
            );
            if point_in_hull(&self.hull, q, eps) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        // Pull strictly inside; retreat further toward the centroid if the
        // point-location is numerically unlucky at the hull boundary.
        for shrink in [0.999, 0.99, 0.95, 0.9, 0.75, 0.5] {
            let t = lo * shrink;
            let q = Point::new(
                self.centroid.x + t * (p.x - self.centroid.x),
                self.centroid.y + t * (p.y - self.centroid.y),
            );
            if let Ok(base) = self.interp_at(q) {
                let scale = (f.points / self.denorm_points(q).max(1.0)).max(1e-9);
                return Ok(base * scale);
            }
        }
        Err(PredictError::QueryFailed)
    }

    /// Relative execution times of several domains, normalised to sum to 1 —
    /// the ratios `R` handed to the processor allocator (Algorithm 1).
    pub fn relative_times(&self, domains: &[DomainFeatures]) -> Result<Vec<f64>, PredictError> {
        let times: Vec<f64> = domains
            .iter()
            .map(|f| self.predict(f))
            .collect::<Result<_, _>>()?;
        let total: f64 = times.iter().sum();
        if total <= 0.0 {
            return Err(PredictError::QueryFailed);
        }
        Ok(times.iter().map(|t| t / total).collect())
    }
}

fn min_max(v: &[f64]) -> (f64, f64) {
    v.iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &x| {
            (lo.min(x), hi.max(x))
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic "true" cost with an aspect-ratio-dependent communication
    /// term, like the simulator's: T = a·points + b·(nx + ny).
    fn true_time(nx: f64, ny: f64) -> f64 {
        1e-6 * nx * ny + 4e-4 * (nx + ny)
    }

    fn basis_13() -> Vec<(DomainFeatures, f64)> {
        // Sizes spanning the paper's range 94×124 .. 415×445 with aspect
        // ratios 0.5–1.5, picked to triangulate well (cf. §3.1).
        let dims: [(u32, u32); 13] = [
            (94, 124),
            (415, 445),
            (100, 200),
            (300, 200),
            (200, 300),
            (250, 250),
            (150, 300),
            (375, 250),
            (160, 140),
            (360, 390),
            (120, 240),
            (420, 280),
            (240, 160),
        ];
        dims.iter()
            .map(|&(nx, ny)| {
                (
                    DomainFeatures::from_dims(nx, ny),
                    true_time(nx as f64, ny as f64),
                )
            })
            .collect()
    }

    #[test]
    fn exact_at_basis_points() {
        let m = ExecTimePredictor::fit(&basis_13()).unwrap();
        for (f, t) in m.basis().iter() {
            let p = m.predict(f).unwrap();
            assert!(
                (p - t).abs() / t < 1e-6,
                "basis point reproduced: {p} vs {t}"
            );
        }
    }

    #[test]
    fn interpolation_error_below_paper_bound() {
        // Paper: < 6 % error on test domains with 55 900–94 990 points and
        // aspect ratios 0.5–1.5.
        let m = ExecTimePredictor::fit(&basis_13()).unwrap();
        let tests: [(u32, u32); 6] = [
            (215, 260),
            (230, 243),
            (310, 215),
            (205, 410),
            (260, 360),
            (188, 300),
        ];
        for (nx, ny) in tests {
            let f = DomainFeatures::from_dims(nx, ny);
            let t_true = true_time(nx as f64, ny as f64);
            let t_pred = m.predict(&f).unwrap();
            let err = (t_pred - t_true).abs() / t_true;
            assert!(err < 0.06, "{nx}x{ny}: error {:.1}% ≥ 6%", err * 100.0);
        }
    }

    #[test]
    fn out_of_hull_preserves_relative_order() {
        // Larger domains outside the basis hull (paper: "we scale down to
        // the region of coverage"): relative ordering must be preserved.
        let m = ExecTimePredictor::fit(&basis_13()).unwrap();
        let big1 = DomainFeatures::from_dims(586, 643);
        let big2 = DomainFeatures::from_dims(925, 850);
        let (t1, t2) = (m.predict(&big1).unwrap(), m.predict(&big2).unwrap());
        assert!(t2 > t1, "larger domain must predict larger: {t2} vs {t1}");
        // Ratio within 25 % of the true ratio — first-order estimate.
        let true_ratio = true_time(925.0, 850.0) / true_time(586.0, 643.0);
        let pred_ratio = t2 / t1;
        assert!(
            (pred_ratio - true_ratio).abs() / true_ratio < 0.25,
            "ratio {pred_ratio:.2} vs true {true_ratio:.2}"
        );
    }

    #[test]
    fn relative_times_sum_to_one() {
        let m = ExecTimePredictor::fit(&basis_13()).unwrap();
        let ds = [
            DomainFeatures::from_dims(394, 418),
            DomainFeatures::from_dims(232, 202),
            DomainFeatures::from_dims(232, 256),
            DomainFeatures::from_dims(313, 337),
        ];
        let r = m.relative_times(&ds).unwrap();
        assert_eq!(r.len(), 4);
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // The largest nest gets the largest share (Table 2's sibling 1).
        let max_idx = r
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(max_idx, 0);
    }

    #[test]
    fn fit_rejects_tiny_basis() {
        let b: Vec<(DomainFeatures, f64)> = vec![
            (DomainFeatures::from_dims(100, 100), 1.0),
            (DomainFeatures::from_dims(200, 200), 2.0),
        ];
        assert_eq!(
            ExecTimePredictor::fit(&b).unwrap_err(),
            PredictError::DegenerateBasis
        );
    }

    #[test]
    fn fit_rejects_collinear_basis() {
        // All same aspect ratio: feature points are collinear in x.
        let b: Vec<(DomainFeatures, f64)> = (1..=5)
            .map(|k| (DomainFeatures::from_dims(100 * k, 100 * k), k as f64))
            .collect();
        assert_eq!(
            ExecTimePredictor::fit(&b).unwrap_err(),
            PredictError::DegenerateBasis
        );
    }
}

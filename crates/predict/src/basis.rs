//! Basis-set generation and selection.
//!
//! §3.1: "we randomly generated a large number of points with domain size
//! ranging from 94×124 to 415×445 and the aspect ratio ranging from
//! 0.5–1.5. From this large set, we manually selected a subset of 13 points
//! that nicely cover the rectangular region … selected in a way that the
//! region formed by them could be triangulated well." We automate the
//! manual selection with a max–min-dispersion greedy sweep seeded by the
//! corners of the feature rectangle.

use crate::geometry::Point;
use nestwx_grid::DomainFeatures;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A candidate or selected basis domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BasisDomain {
    /// Width in grid points.
    pub nx: u32,
    /// Height in grid points.
    pub ny: u32,
}

impl BasisDomain {
    /// Feature-plane coordinates.
    pub fn features(&self) -> DomainFeatures {
        DomainFeatures::from_dims(self.nx, self.ny)
    }
}

/// Randomly generates `n` candidate domains with point counts spanning
/// `[min_points, max_points]` and aspect ratios in `[0.5, 1.5]`, like the
/// paper's candidate pool.
pub fn generate_candidates<R: Rng>(
    rng: &mut R,
    n: usize,
    min_points: u64,
    max_points: u64,
) -> Vec<BasisDomain> {
    assert!(min_points >= 4 && max_points > min_points);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let points = rng.gen_range(min_points..=max_points) as f64;
        let aspect = rng.gen_range(0.5..=1.5);
        let nx = (points * aspect).sqrt().round().max(2.0) as u32;
        let ny = (points / aspect).sqrt().round().max(2.0) as u32;
        let d = BasisDomain { nx, ny };
        let f = d.features();
        if f.aspect_ratio >= 0.45 && f.aspect_ratio <= 1.55 {
            out.push(d);
        }
    }
    out
}

/// Synthesises a domain with the given aspect ratio and point count.
pub fn domain_with(aspect: f64, points: f64) -> BasisDomain {
    let nx = (points * aspect).sqrt().round().max(2.0) as u32;
    let ny = (points / aspect).sqrt().round().max(2.0) as u32;
    BasisDomain { nx, ny }
}

/// Like [`select_basis`] but first pins the four corners of the feature
/// rectangle `[aspect_lo, aspect_hi] × [points_lo, points_hi]` (slightly
/// widened), guaranteeing that every query in the stated ranges lies inside
/// the basis convex hull — the "nicely cover the rectangular region"
/// property the paper obtained by manual selection.
pub fn select_basis_covering(
    candidates: &[BasisDomain],
    k: usize,
    aspect: (f64, f64),
    points: (f64, f64),
) -> Vec<BasisDomain> {
    assert!(k >= 7, "need room for 4 corners plus interior points");
    let (alo, ahi) = (aspect.0 * 0.94, aspect.1 * 1.06);
    let (plo, phi) = (points.0 * 0.9, points.1 * 1.1);
    let mut out = vec![
        domain_with(alo, plo),
        domain_with(ahi, plo),
        domain_with(ahi, phi),
        domain_with(alo, phi),
        // Edge midpoints widen the hull along its long sides.
        domain_with(alo, 0.5 * (plo + phi)),
        domain_with(ahi, 0.5 * (plo + phi)),
    ];
    let rest = select_basis(candidates, k - out.len());
    out.extend(rest);
    out.truncate(k);
    out
}

/// Selects `k` basis domains from `candidates` that cover the feature
/// rectangle well: the four corner-most candidates first, then greedy
/// max–min dispersion in the normalised feature plane.
pub fn select_basis(candidates: &[BasisDomain], k: usize) -> Vec<BasisDomain> {
    assert!(k >= 3, "need at least 3 basis points to triangulate");
    assert!(candidates.len() >= k, "not enough candidates");
    let feats: Vec<DomainFeatures> = candidates.iter().map(BasisDomain::features).collect();
    let (x_min, x_max) = min_max(feats.iter().map(|f| f.aspect_ratio));
    let (y_min, y_max) = min_max(feats.iter().map(|f| f.points));
    let xr = (x_max - x_min).max(1e-9);
    let yr = (y_max - y_min).max(1e-9);
    let norm: Vec<Point> = feats
        .iter()
        .map(|f| Point::new((f.aspect_ratio - x_min) / xr, (f.points - y_min) / yr))
        .collect();

    let mut selected: Vec<usize> = Vec::with_capacity(k);
    // Seed with the candidates closest to the 4 corners of the unit square,
    // pushing the hull as wide as possible.
    for corner in [
        Point::new(0.0, 0.0),
        Point::new(1.0, 0.0),
        Point::new(1.0, 1.0),
        Point::new(0.0, 1.0),
    ] {
        let best = (0..norm.len())
            .filter(|i| !selected.contains(i))
            .min_by(|&a, &b| norm[a].dist(&corner).total_cmp(&norm[b].dist(&corner)))
            .expect("candidates available");
        selected.push(best);
        if selected.len() == k {
            break;
        }
    }
    // Greedy max–min dispersion for the interior points.
    while selected.len() < k {
        let best = (0..norm.len())
            .filter(|i| !selected.contains(i))
            .max_by(|&a, &b| {
                let da = selected
                    .iter()
                    .map(|&s| norm[a].dist(&norm[s]))
                    .fold(f64::INFINITY, f64::min);
                let db = selected
                    .iter()
                    .map(|&s| norm[b].dist(&norm[s]))
                    .fold(f64::INFINITY, f64::min);
                da.total_cmp(&db)
            })
            .expect("candidates available");
        selected.push(best);
    }
    selected.into_iter().map(|i| candidates[i]).collect()
}

fn min_max(v: impl Iterator<Item = f64>) -> (f64, f64) {
    v.fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), x| {
        (lo.min(x), hi.max(x))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interpolator::ExecTimePredictor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn candidates_respect_ranges() {
        let mut rng = StdRng::seed_from_u64(7);
        let cands = generate_candidates(&mut rng, 200, 94 * 124, 415 * 445);
        assert_eq!(cands.len(), 200);
        for c in &cands {
            let f = c.features();
            assert!(f.aspect_ratio >= 0.45 && f.aspect_ratio <= 1.55);
            assert!(f.points >= 0.8 * (94.0 * 124.0) && f.points <= 1.2 * (415.0 * 445.0));
        }
    }

    #[test]
    fn selection_is_deterministic_and_distinct() {
        let mut rng = StdRng::seed_from_u64(7);
        let cands = generate_candidates(&mut rng, 500, 94 * 124, 415 * 445);
        let a = select_basis(&cands, 13);
        let b = select_basis(&cands, 13);
        assert_eq!(a, b);
        let unique: std::collections::HashSet<_> = a.iter().map(|d| (d.nx, d.ny)).collect();
        assert_eq!(unique.len(), 13);
    }

    #[test]
    fn selected_basis_triangulates() {
        // The automated selection must replicate the paper's "manual"
        // property: the region can be triangulated well.
        let mut rng = StdRng::seed_from_u64(42);
        let cands = generate_candidates(&mut rng, 500, 94 * 124, 415 * 445);
        let basis = select_basis(&cands, 13);
        let measured: Vec<(nestwx_grid::DomainFeatures, f64)> = basis
            .iter()
            .map(|d| (d.features(), 1e-6 * d.nx as f64 * d.ny as f64 + 1.0))
            .collect();
        assert!(ExecTimePredictor::fit(&measured).is_ok());
    }

    #[test]
    fn selection_covers_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        let cands = generate_candidates(&mut rng, 500, 94 * 124, 415 * 445);
        let basis = select_basis(&cands, 13);
        let pts: Vec<f64> = basis.iter().map(|d| d.features().points).collect();
        let all: Vec<f64> = cands.iter().map(|d| d.features().points).collect();
        let (bmin, bmax) = min_max(pts.iter().copied());
        let (amin, amax) = min_max(all.iter().copied());
        // Selected basis spans at least 80 % of the candidate range.
        assert!((bmax - bmin) > 0.8 * (amax - amin));
    }
}

//! Fixture coverage for every lint rule: each known-bad snippet under
//! `tests/fixtures/` must fire its rule at the expected span, and the
//! allowlist must suppress exactly one diagnostic per entry.

use nestwx_analyze::{run_lint, Finding, LintConfig, RULE_IDS};
use std::path::PathBuf;

fn fixtures_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
}

fn fixture_report(allow: &str) -> nestwx_analyze::LintReport {
    run_lint(&LintConfig::fixtures(fixtures_root()), allow).expect("fixture scan")
}

fn has(findings: &[Finding], rule: &str, file: &str, line: u32) -> bool {
    findings
        .iter()
        .any(|f| f.rule == rule && f.file == file && f.line == line)
}

#[test]
fn every_rule_fires_at_the_expected_span() {
    let report = fixture_report("");
    let f = &report.findings;
    // (rule, fixture file, line) — kept in sync with the `// line N` markers
    // inside the fixtures.
    let expected = [
        ("NW-D001", "d001_hashmap.rs", 4),
        ("NW-D002", "d002_instant.rs", 3),
        ("NW-D003", "d003_entropy.rs", 3),
        ("NW-D003", "d003_entropy.rs", 4),
        ("NW-D004", "d004_iteration.rs", 5),
        ("NW-D005", "d005_spawn.rs", 3),
        ("NW-D006", "d006_ambient_path.rs", 3),
        ("NW-D006", "d006_ambient_path.rs", 6),
        ("NW-S001", "s001_unwrap.rs", 3),
        ("NW-S001", "s001_unwrap.rs", 4),
        ("NW-S001", "s001_unwrap.rs", 6),
        ("NW-S002", "s002_lock.rs", 3),
        ("NW-S003", "s003_blocking.rs", 3),
        ("NW-S003", "s003_blocking.rs", 4),
        ("NW-S004", "s004_blocking_socket.rs", 3),
        ("NW-S004", "s004_blocking_socket.rs", 4),
        ("NW-S004", "s004_blocking_socket.rs", 5),
        ("NW-S005", "s005_raw_deadline.rs", 3),
        ("NW-S005", "s005_raw_deadline.rs", 6),
        ("NW-S006", "s006_span_timestamp.rs", 3),
        ("NW-S006", "s006_span_timestamp.rs", 5),
        ("NW-S007", "s007_fleet_socket.rs", 4),
        ("NW-S007", "s007_fleet_socket.rs", 5),
        ("NW-S007", "s007_fleet_socket.rs", 6),
    ];
    for (rule, file, line) in expected {
        assert!(
            has(f, rule, file, line),
            "{rule} did not fire at {file}:{line}; findings: {f:#?}"
        );
    }
    // Every rule in the catalog is exercised by at least one fixture.
    for rule in RULE_IDS {
        assert!(
            f.iter().any(|x| x.rule == rule),
            "no fixture fires {rule}; findings: {f:#?}"
        );
    }
}

#[test]
fn test_modules_inside_fixtures_are_exempt() {
    let report = fixture_report("");
    // s001_unwrap.rs has an unwrap inside #[cfg(test)] mod tests — it must
    // NOT be reported (3 request-path findings only).
    let s001: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.file == "s001_unwrap.rs" && f.rule == "NW-S001")
        .collect();
    assert_eq!(s001.len(), 3, "{s001:#?}");
}

#[test]
fn allowlist_suppresses_exactly_one_diagnostic_per_entry() {
    let baseline = fixture_report("");
    let total = baseline.findings.len();
    let allow = "NW-D002 d002_instant.rs:3 -- fixture waiver exercising the allowlist\n\
                 NW-D005 d005_spawn.rs:3 -- second waiver\n\
                 NW-S006 s006_span_timestamp.rs:3 -- span-rule waiver (leaves the D002 twin)\n";
    let report = fixture_report(allow);
    assert!(report.allow_errors.is_empty(), "{:?}", report.allow_errors);
    assert_eq!(report.suppressed.len(), 3);
    assert_eq!(report.findings.len(), total - 3);
    assert!(!has(&report.findings, "NW-D002", "d002_instant.rs", 3));
    assert!(has(&report.suppressed, "NW-D002", "d002_instant.rs", 3));
    // The S006 waiver suppresses only the span rule: the D002 finding at
    // the same position survives.
    assert!(!has(
        &report.findings,
        "NW-S006",
        "s006_span_timestamp.rs",
        3
    ));
    assert!(has(
        &report.findings,
        "NW-D002",
        "s006_span_timestamp.rs",
        3
    ));
}

#[test]
fn stale_allowlist_entry_fails_the_run() {
    let report = fixture_report("NW-D002 d002_instant.rs:999 -- no longer there\n");
    assert!(!report.ok());
    assert_eq!(report.allow_errors.len(), 1);
    assert!(report.allow_errors[0].contains("stale"));
}

#[test]
fn fixture_run_is_nonzero_and_workspace_scan_sees_files() {
    let report = fixture_report("");
    assert!(!report.ok(), "fixtures must fail the lint");
    assert_eq!(report.files_scanned, 13, "one fixture per rule");
}

fn workspace_graph_report() -> nestwx_analyze::LintReport {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let allow = std::fs::read_to_string(root.join("lint.allow")).unwrap_or_default();
    nestwx_analyze::run_lint_ex(
        &LintConfig::workspace_default(&root),
        Some(&nestwx_analyze::GraphConfig::workspace_default()),
        &allow,
    )
    .expect("workspace scan")
}

/// The committed graph-quality ratchet: the workspace must lint clean
/// under `--graph` (fixed or justified in lint.allow), and resolution
/// coverage must not regress past the committed unresolved budget.
#[test]
fn workspace_graph_quality() {
    let report = workspace_graph_report();
    assert!(
        report.findings.is_empty(),
        "workspace graph findings must be fixed or justified in lint.allow: {:#?}",
        report.findings
    );
    assert!(report.allow_errors.is_empty(), "{:#?}", report.allow_errors);
    assert!(report.graph_errors.is_empty(), "{:#?}", report.graph_errors);
    let g = report.graph.as_ref().expect("graph ran");
    assert!(g.stats.functions > 500, "graph too small: {:?}", g.stats);
    let budget = nestwx_analyze::GraphConfig::workspace_default().max_unresolved;
    assert!(
        g.stats.unresolved <= budget,
        "{} unresolved > committed budget {budget}",
        g.stats.unresolved
    );
    // Resolution coverage itself is ratcheted too: ≥95% of call sites
    // must be classified (resolved or external), not unresolved.
    let classified = g.stats.resolved + g.stats.external;
    assert!(
        classified * 100 >= g.stats.calls * 95,
        "classification regressed: {:?}",
        g.stats
    );
}

/// Two identical runs must serialize byte-identically — the `--json`
/// report (findings order, descriptions, chains, graph stats) is part of
/// the deterministic surface.
#[test]
fn workspace_json_report_is_byte_deterministic() {
    let a = serde_json::to_string_pretty(&workspace_graph_report()).expect("serializes");
    let b = serde_json::to_string_pretty(&workspace_graph_report()).expect("serializes");
    assert_eq!(a, b);
}

/// Every finding record carries its rule description, so downstream
/// consumers of `--json` never need the rule table.
#[test]
fn json_findings_carry_rule_descriptions() {
    let report = fixture_report("");
    assert!(!report.findings.is_empty());
    let json = serde_json::to_string_pretty(&report).expect("serializes");
    let v: serde_json::Value = serde_json::from_str(&json).expect("round-trips");
    let findings = v["findings"].as_array().expect("findings array");
    for f in findings {
        let desc = f["desc"].as_str().expect("desc present");
        assert!(!desc.is_empty());
        assert_eq!(
            desc,
            nestwx_analyze::rule_desc(f["rule"].as_str().expect("rule present"))
        );
    }
}

//! Known-bad graph fixture: AB/BA lock order across two methods —
//! NW-G002 must report the `Pair::a_lock -> Pair::b_lock ->
//! Pair::a_lock` cycle.

pub struct Guard;

pub struct Pair {
    pub a_lock: u32,
    pub b_lock: u32,
}

fn lock_unpoisoned(_lock: &u32) -> Guard {
    Guard
}

impl Pair {
    pub fn ab(&self) -> Guard {
        let _a = lock_unpoisoned(&self.a_lock);
        lock_unpoisoned(&self.b_lock)
    }

    pub fn ba(&self) -> Guard {
        let _b = lock_unpoisoned(&self.b_lock);
        lock_unpoisoned(&self.a_lock)
    }
}

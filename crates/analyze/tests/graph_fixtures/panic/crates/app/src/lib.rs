//! Known-bad graph fixture: an `.unwrap()` hidden behind a helper,
//! reachable from the request-handling entrypoint — NW-G003 with the
//! `handle_request -> decode` chain.

pub fn handle_request(input: &str) -> u32 {
    decode(input)
}

fn decode(input: &str) -> u32 {
    let n = input.find(':').unwrap();
    n as u32
}

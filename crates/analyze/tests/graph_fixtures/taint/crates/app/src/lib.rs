//! Known-bad graph fixture: a `HashMap` two calls below the planning
//! entrypoint. `nestwx lint --fixtures --graph` must flag NW-G001 with
//! the full `plan_entry -> helper -> deep` chain.

pub fn plan_entry() {
    helper();
}

fn helper() {
    deep();
}

fn deep() {
    let mut counts = std::collections::HashMap::new();
    counts.insert(0u32, 1u32);
}

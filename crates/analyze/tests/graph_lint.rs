//! End-to-end tests of the workspace-graph pass over the known-bad
//! fixture trees in `tests/graph_fixtures/` — through `run_lint_ex`, so
//! file walking, crate identity, resolution budgets, and the allowlist
//! namespace are all exercised, not just the rules.

use nestwx_analyze::{run_lint_ex, GraphConfig, LintConfig, LintReport};

fn run_fixture(name: &str) -> LintReport {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/graph_fixtures")
        .join(name);
    let cfg = LintConfig::graph_fixtures(root);
    run_lint_ex(&cfg, Some(&GraphConfig::fixtures()), "").expect("lint runs")
}

fn chain_spans(report: &LintReport, idx: usize) -> Vec<(String, u32, u32)> {
    report.findings[idx]
        .chain
        .iter()
        .map(|s| (s.func.clone(), s.line, s.col))
        .collect()
}

#[test]
fn taint_fixture_reports_the_two_deep_chain() {
    let r = run_fixture("taint");
    assert!(r.graph_errors.is_empty(), "{:?}", r.graph_errors);
    assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
    let f = &r.findings[0];
    assert_eq!(f.rule, "NW-G001");
    assert_eq!(f.file, "crates/app/src/lib.rs");
    assert_eq!((f.line, f.col), (14, 40));
    assert!(f.message.contains("HashMap"), "{}", f.message);
    assert!(f.message.contains("app::plan_entry"), "{}", f.message);
    assert_eq!(
        chain_spans(&r, 0),
        vec![
            ("app::plan_entry".to_string(), 6, 5),
            ("app::helper".to_string(), 10, 5),
            ("app::deep".to_string(), 14, 40),
        ]
    );
}

#[test]
fn lockcycle_fixture_reports_the_ab_ba_cycle() {
    let r = run_fixture("lockcycle");
    assert!(r.graph_errors.is_empty(), "{:?}", r.graph_errors);
    assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
    let f = &r.findings[0];
    assert_eq!(f.rule, "NW-G002");
    assert_eq!(f.file, "crates/app/src/lib.rs");
    assert!(
        f.message
            .contains("Pair::a_lock -> Pair::b_lock -> Pair::a_lock"),
        "{}",
        f.message
    );
    // One chain step per cycle edge, each naming the function that takes
    // the locks in that order.
    assert_eq!(f.chain.len(), 2, "{:?}", f.chain);
    assert!(
        f.chain[0].func.contains("in app::Pair::ab"),
        "{:?}",
        f.chain
    );
    assert!(
        f.chain[1].func.contains("in app::Pair::ba"),
        "{:?}",
        f.chain
    );
}

#[test]
fn panic_fixture_reports_the_unwrap_behind_the_helper() {
    let r = run_fixture("panic");
    assert!(r.graph_errors.is_empty(), "{:?}", r.graph_errors);
    assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
    let f = &r.findings[0];
    assert_eq!(f.rule, "NW-G003");
    assert_eq!(f.file, "crates/app/src/lib.rs");
    assert_eq!((f.line, f.col), (10, 29));
    assert!(f.message.contains(".unwrap()"), "{}", f.message);
    assert!(f.message.contains("app::handle_request"), "{}", f.message);
    assert_eq!(
        chain_spans(&r, 0),
        vec![
            ("app::handle_request".to_string(), 6, 5),
            ("app::decode".to_string(), 10, 29),
        ]
    );
}

#[test]
fn fixture_trees_resolve_every_call() {
    for name in ["taint", "lockcycle", "panic"] {
        let r = run_fixture(name);
        let g = r.graph.as_ref().expect("graph ran");
        assert_eq!(g.stats.unresolved, 0, "{name}: {:?}", g.unresolved_by_file);
        assert!(r.graph_errors.is_empty(), "{name}: {:?}", r.graph_errors);
    }
}

#[test]
fn graph_reports_are_byte_deterministic() {
    // Two full runs over the same tree must serialize identically —
    // chains, stats, and per-file unresolved counts included.
    for name in ["taint", "lockcycle", "panic"] {
        let a = serde_json::to_string_pretty(&run_fixture(name)).unwrap();
        let b = serde_json::to_string_pretty(&run_fixture(name)).unwrap();
        assert_eq!(a, b, "{name}");
    }
}

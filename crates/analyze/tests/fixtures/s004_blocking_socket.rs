// Fixture: NW-S004 — blocking socket I/O outside the readiness loop.
fn pump(listener: &Listener, stream: &mut Stream, buf: &mut [u8]) {
    let _ = listener.accept(); // line 3: fires NW-S004 (accept)
    let _ = stream.read_exact(buf); // line 4: fires NW-S004 (read_exact)
    let _ = stream.write_all(buf); // line 5: fires NW-S004 (write_all)
}

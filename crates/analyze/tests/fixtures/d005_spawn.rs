// Fixture: NW-D005 — spawning threads inside deterministic replay code.
fn replay() {
    std::thread::spawn(|| {}); // line 3: fires NW-D005
}

// Fixture: NW-D001 — unordered collection in a determinism-critical path.
use std::collections::BTreeMap; // fine
fn build() -> u32 {
    let mut m = HashMap::new(); // line 4: fires NW-D001
    m.insert(1u32, 2u32);
    m.len() as u32
}

// Fixture: NW-S001 — panicking calls on the request path.
fn handle(x: Option<u32>) -> u32 {
    let a = x.unwrap(); // line 3: fires NW-S001
    let b = x.expect("server must not die"); // line 4: fires NW-S001
    if a + b == 0 {
        unreachable!("boom"); // line 6: fires NW-S001
    }
    a + b
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1); // suppressed: test module
    }
}

// A test module whose `mod` is separated from #[cfg(test)] by further
// attributes and doc comments must still be exempt.
#[cfg(test)]
#[allow(dead_code)]
/// Doc comment between the cfg gate and the module keyword.
mod attr_separated_tests {
    fn helper() {
        let v: Option<u32> = Some(2);
        let _ = v.unwrap(); // suppressed: test module despite the attrs
    }
}

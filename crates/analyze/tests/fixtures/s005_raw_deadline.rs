// Fixture: NW-S005 — deadline checks bypassing the clock shim.
fn expired(started: Instant, limit: Duration) -> bool {
    started.elapsed() > limit // line 3: fires NW-S005 (elapsed)
}
fn waited(now: Instant, started: Instant) -> Duration {
    now.duration_since(started) // line 6: fires NW-S005 (duration_since)
}

// Fixture: NW-S006 — flight-recorder span timestamps off the clock shim.
fn stamp_span(flight: &FlightRecorder) {
    let started = Instant::now(); // line 3: fires NW-S006 (and NW-D002)
    let mut span = RequestSpan::probe(0);
    span.ts_us = SystemTime::now().elapsed().as_micros() as u64; // line 5: fires NW-S006 (and NW-D003)
    flight.record(0, span);
    let _ = started;
}

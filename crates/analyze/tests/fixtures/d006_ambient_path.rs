// Fixture: NW-D006 — ambient filesystem paths in determinism-critical code.
fn cache_root() -> std::path::PathBuf {
    std::env::temp_dir().join("nestwx-cache") // line 3: fires NW-D006
}
fn spec_dir() -> std::io::Result<std::path::PathBuf> {
    std::env::current_dir() // line 6: fires NW-D006
}

// Fixture: NW-S007 — socket I/O on the fleet data path outside the
// designated transport module.
fn leak(addr: &str, buf: &mut [u8]) {
    let sock = TcpStream::connect(addr); // line 4: fires NW-S007 (TcpStream)
    sock.set_nonblocking(true); // line 5: fires NW-S007 (set_nonblocking)
    sock.read_exact(buf); // line 6: fires NW-S007 (read_exact)
}

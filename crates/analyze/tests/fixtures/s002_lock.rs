// Fixture: NW-S002 — raw .lock() with no poisoning policy.
fn peek(m: &Mutex<u64>) -> u64 {
    *m.lock().unwrap_or_else(|e| e.into_inner()) // line 3: fires NW-S002
}

// Fixture: NW-D003 — wall clock and ambient entropy.
fn stamp() -> u64 {
    let t = SystemTime::now(); // line 3: fires NW-D003
    let mut rng = thread_rng(); // line 4: fires NW-D003
    0
}

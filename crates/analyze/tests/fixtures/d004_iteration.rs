// Fixture: NW-D004 — iterating an unordered collection.
fn sum(m: &HashMap<u32, f64>) -> f64 {
    // line 2 fires NW-D001 (HashMap in a determinism path); the iteration
    // below is the float-accumulation-order hazard D004 exists for.
    m.values().sum() // line 5: fires NW-D004
}

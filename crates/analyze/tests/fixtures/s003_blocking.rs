// Fixture: NW-S003 — blocking syscalls in a lock-holding module.
fn persist(data: &str) {
    std::thread::sleep(Duration::from_millis(5)); // line 3: fires NW-S003 (sleep)
    let f = File::create("/tmp/shard.json"); // line 4: fires NW-S003 (File)
}

// Fixture: NW-D002 — raw Instant::now outside the clock shim.
fn time_it() -> f64 {
    let t0 = Instant::now(); // line 3: fires NW-D002
    t0.elapsed().as_secs_f64()
}

//! A minimal Rust lexer for the lint pass.
//!
//! The build environment vendors no `syn`, so the analyzer works on a token
//! stream instead of a full AST. The lexer understands everything needed to
//! avoid false positives from non-code text: line and (nested) block
//! comments, doc comments, string literals, raw strings with arbitrary `#`
//! fences, byte and char literals, and the lifetime-vs-char ambiguity
//! (`'a` vs `'a'`). Every token carries its line and column so diagnostics
//! point at real source spans.

/// Kind of a lexed token. The rules only need a coarse classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `fn`, `unwrap`, …).
    Ident,
    /// Any punctuation byte sequence (`::`, `.`, `(`, `{`, `!`, …), one
    /// byte per token.
    Punct,
    /// String/char/byte literal (contents not inspected by rules).
    Literal,
    /// Numeric literal.
    Number,
    /// Lifetime (`'a`) — kept distinct so `'a` never looks like a char.
    Lifetime,
}

/// One token with its source position (1-based line, 1-based column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// The exact source text of the token (empty for literals' bodies is
    /// never needed; literals keep their delimiters).
    pub text: String,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// 1-based column (in bytes) of the token's first byte.
    pub col: u32,
}

impl Tok {
    /// True when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this token is the punctuation `s` (single byte).
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens, skipping whitespace and all comment forms.
/// Unterminated strings/comments end the token stream at EOF rather than
/// erroring — lint input is always real compiling code, and graceful
/// degradation beats a hard failure on a fixture typo.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut c = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(b) = c.peek() {
        let (line, col) = (c.line, c.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek2() == Some(b'/') => {
                while let Some(nb) = c.peek() {
                    if nb == b'\n' {
                        break;
                    }
                    c.bump();
                }
            }
            b'/' if c.peek2() == Some(b'*') => {
                c.bump();
                c.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    if c.starts_with("/*") {
                        depth += 1;
                        c.bump();
                        c.bump();
                    } else if c.starts_with("*/") {
                        depth -= 1;
                        c.bump();
                        c.bump();
                    } else if c.bump().is_none() {
                        break;
                    }
                }
            }
            b'r' | b'b' if raw_string_fence(&mut c).is_some() => {
                // raw_string_fence consumed the whole literal.
                out.push(Tok {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line,
                    col,
                });
            }
            _ if is_ident_start(b) => {
                let start = c.pos;
                while let Some(nb) = c.peek() {
                    if !is_ident_continue(nb) {
                        break;
                    }
                    c.bump();
                }
                let text = String::from_utf8_lossy(&c.src[start..c.pos]).into_owned();
                // `b"..."` / `b'x'` prefixes: the ident lexes as `b`, and
                // the literal that follows is handled on the next loop turn.
                out.push(Tok {
                    kind: TokKind::Ident,
                    text,
                    line,
                    col,
                });
            }
            b'0'..=b'9' => {
                while let Some(nb) = c.peek() {
                    if !(nb.is_ascii_alphanumeric() || nb == b'_' || nb == b'.') {
                        break;
                    }
                    // A dot only continues the number when a digit follows:
                    // `1..2` keeps its range dots, and `x.0.lock()` /
                    // `1.0.max(y)` keep `lock`/`max` as real method tokens
                    // instead of swallowing them into the numeric literal
                    // (which would hide them from every rule).
                    if nb == b'.' && !matches!(c.peek2(), Some(b'0'..=b'9')) {
                        break;
                    }
                    c.bump();
                }
                out.push(Tok {
                    kind: TokKind::Number,
                    text: String::new(),
                    line,
                    col,
                });
            }
            b'"' => {
                lex_string(&mut c);
                out.push(Tok {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line,
                    col,
                });
            }
            b'\'' => {
                let tok = lex_quote(&mut c);
                out.push(Tok {
                    kind: tok,
                    text: String::new(),
                    line,
                    col,
                });
            }
            _ => {
                c.bump();
                out.push(Tok {
                    kind: TokKind::Punct,
                    text: (b as char).to_string(),
                    line,
                    col,
                });
            }
        }
    }
    out
}

/// If the cursor sits on a raw (byte) string opener (`r"`, `r#"`, `br##"`,
/// …), consumes the entire literal and returns `Some(())`; otherwise leaves
/// the cursor untouched and returns `None`.
fn raw_string_fence(c: &mut Cursor<'_>) -> Option<()> {
    let rest = &c.src[c.pos..];
    let mut i = 0;
    if rest.first() == Some(&b'b') {
        i += 1;
    }
    if rest.get(i) != Some(&b'r') {
        return None;
    }
    i += 1;
    let mut hashes = 0usize;
    while rest.get(i + hashes) == Some(&b'#') {
        hashes += 1;
    }
    if rest.get(i + hashes) != Some(&b'"') {
        return None;
    }
    // Commit: consume prefix, fence and body up to `"` + hashes `#`s.
    for _ in 0..(i + hashes + 1) {
        c.bump();
    }
    let closer: Vec<u8> = std::iter::once(b'"')
        .chain(std::iter::repeat_n(b'#', hashes))
        .collect();
    loop {
        if c.src[c.pos..].starts_with(&closer) {
            for _ in 0..closer.len() {
                c.bump();
            }
            return Some(());
        }
        c.bump()?;
    }
}

/// Consumes a normal `"…"` string (cursor on the opening quote).
fn lex_string(c: &mut Cursor<'_>) {
    c.bump(); // opening quote
    while let Some(b) = c.bump() {
        match b {
            b'\\' => {
                c.bump();
            }
            b'"' => break,
            _ => {}
        }
    }
}

/// Disambiguates `'a'` / `'\n'` (char literal) from `'a` (lifetime).
/// Cursor sits on the `'`.
fn lex_quote(c: &mut Cursor<'_>) -> TokKind {
    c.bump(); // the quote
    match c.peek() {
        Some(b'\\') => {
            // Escaped char literal.
            c.bump();
            c.bump();
            if c.peek() == Some(b'\'') {
                c.bump();
            } else {
                // Multi-byte escapes like '\u{1F600}'.
                while let Some(b) = c.bump() {
                    if b == b'\'' {
                        break;
                    }
                }
            }
            TokKind::Literal
        }
        Some(b) if is_ident_start(b) => {
            // Could be 'a' (char) or 'a (lifetime) or 'static.
            let start = c.pos;
            while let Some(nb) = c.peek() {
                if !is_ident_continue(nb) {
                    break;
                }
                c.bump();
            }
            if c.peek() == Some(b'\'') && c.pos - start >= 1 {
                c.bump();
                TokKind::Literal
            } else {
                TokKind::Lifetime
            }
        }
        Some(_) => {
            // Punctuation char literal like '(' or ' '.
            c.bump();
            if c.peek() == Some(b'\'') {
                c.bump();
            }
            TokKind::Literal
        }
        None => TokKind::Lifetime,
    }
}

/// Byte ranges (as token index ranges) of `#[cfg(test)] mod … { … }` and
/// `#[cfg(all(test, …))] mod … { … }` blocks, so rules can skip test code.
/// Returns half-open token index ranges.
pub fn test_module_spans(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if let Some(body_open) = match_cfg_test_mod(toks, i) {
            // Find the matching close brace.
            let mut depth = 0usize;
            let mut j = body_open;
            while j < toks.len() {
                if toks[j].is_punct("{") {
                    depth += 1;
                } else if toks[j].is_punct("}") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            spans.push((i, (j + 1).min(toks.len())));
            i = j + 1;
        } else {
            i += 1;
        }
    }
    spans
}

/// If `toks[i..]` begins a `#[cfg(test)]`-ish attribute followed by
/// `mod name {`, returns the token index of the opening `{`.
fn match_cfg_test_mod(toks: &[Tok], i: usize) -> Option<usize> {
    if !(toks.get(i)?.is_punct("#") && toks.get(i + 1)?.is_punct("[")) {
        return None;
    }
    if !toks.get(i + 2)?.is_ident("cfg") {
        return None;
    }
    // Scan the attribute body to its closing `]`, requiring a `test` ident.
    let mut depth = 0usize;
    let mut j = i + 1;
    let mut saw_test = false;
    while j < toks.len() {
        if toks[j].is_punct("[") {
            depth += 1;
        } else if toks[j].is_punct("]") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if toks[j].is_ident("test") {
            saw_test = true;
        }
        j += 1;
    }
    if !saw_test || j >= toks.len() {
        return None;
    }
    // Expect `mod <ident> {` after the attribute. Doc comments between the
    // attribute and the `mod` are already stripped by the lexer, but
    // further attributes (`#[allow(dead_code)]`, `#[rustfmt::skip]`,
    // `#[doc = "…"]`) and a `pub`/`pub(crate)` qualifier are real tokens —
    // skip them so the test module is still recognized.
    let mut m = j + 1;
    while toks.get(m).map(|t| t.is_punct("#")).unwrap_or(false)
        && toks.get(m + 1).map(|t| t.is_punct("[")).unwrap_or(false)
    {
        let mut depth = 0usize;
        let mut k = m + 1;
        while k < toks.len() {
            if toks[k].is_punct("[") {
                depth += 1;
            } else if toks[k].is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k += 1;
        }
        if k >= toks.len() {
            return None;
        }
        m = k + 1;
    }
    if toks.get(m).map(|t| t.is_ident("pub")).unwrap_or(false) {
        m += 1;
        if toks.get(m).map(|t| t.is_punct("(")).unwrap_or(false) {
            let mut depth = 0usize;
            while m < toks.len() {
                if toks[m].is_punct("(") {
                    depth += 1;
                } else if toks[m].is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                m += 1;
            }
            m += 1;
        }
    }
    if toks.get(m)?.is_ident("mod")
        && toks.get(m + 1)?.kind == TokKind::Ident
        && toks.get(m + 2)?.is_punct("{")
    {
        Some(m + 2)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_are_skipped() {
        let src = r##"
            // HashMap in a line comment
            /* HashMap in a block /* nested HashMap */ comment */
            let s = "HashMap in a string";
            let r = r#"HashMap in a raw string"#;
            let b = b"HashMap bytes";
            let real = HashMap::new();
        "##;
        let ids = idents(src);
        assert_eq!(
            ids.iter().filter(|t| t.as_str() == "HashMap").count(),
            1,
            "only the real token counts: {ids:?}"
        );
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { let c = 'x'; x }";
        let ids = idents(src);
        assert!(ids.contains(&"str".to_string()));
        let lifetimes = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 3);
    }

    #[test]
    fn positions_are_one_based_lines() {
        let toks = lex("a\nbb ccc");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 1));
        assert_eq!((toks[2].line, toks[2].col), (2, 4));
    }

    #[test]
    fn cfg_test_mod_spans_cover_unwraps() {
        let src = r#"
            fn good() {}
            #[cfg(test)]
            mod tests {
                fn t() { x.unwrap(); }
            }
            fn after() {}
        "#;
        let toks = lex(src);
        let spans = test_module_spans(&toks);
        assert_eq!(spans.len(), 1);
        let (a, b) = spans[0];
        let inside: Vec<&str> = toks[a..b]
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(inside.contains(&"unwrap"));
        assert!(!inside.contains(&"after"));
    }

    #[test]
    fn cfg_all_test_mod_detected() {
        let src = "#[cfg(all(test, not(loom)))] mod tests { fn f() {} }";
        let toks = lex(src);
        assert_eq!(test_module_spans(&toks).len(), 1);
    }

    #[test]
    fn escaped_char_literals() {
        let toks = lex(r"let nl = '\n'; let q = '\''; done");
        assert!(toks.iter().any(|t| t.is_ident("done")));
    }

    #[test]
    fn nested_block_comments_keep_spans_honest() {
        // The closer of the inner comment must not close the outer one, and
        // the token after the comment must land on the right line/column.
        let src = "/* outer /* inner\n  still /* deeper */ inner */ outer */\nafter";
        let toks = lex(src);
        assert_eq!(toks.len(), 1, "{toks:?}");
        assert_eq!(
            (toks[0].text.as_str(), toks[0].line, toks[0].col),
            ("after", 3, 1)
        );
        // Overlapping opener `/*/` is an opener plus content, as in rustc.
        let toks = lex("/* /*/ x */ */ tail");
        assert_eq!(toks.len(), 1);
        assert!(toks[0].is_ident("tail"));
    }

    #[test]
    fn raw_strings_with_hashes_keep_spans_honest() {
        // `"#`-lookalikes inside an `r##` string must not close it early,
        // and multi-line raw strings must advance the line counter.
        let src = "let a = r##\"body \"# not the end\nsecond \"line\"##;\nnext";
        let toks = lex(src);
        let next = toks
            .iter()
            .find(|t| t.is_ident("next"))
            .expect("next token");
        assert_eq!((next.line, next.col), (3, 1));
        // No tokens were minted from inside the raw string.
        assert!(!toks.iter().any(|t| t.is_ident("not")), "{toks:?}");
        // Raw byte strings with fences behave the same.
        let toks = lex("br#\"HashMap \"quoted\"\"# tail");
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Ident).count(), 1);
    }

    #[test]
    fn char_literal_vs_lifetime_disambiguation() {
        // 'a' is a char literal; <'a> and &'a are lifetimes; '_ and labels
        // are lifetimes; none of them may eat following code.
        let src =
            "fn f<'a>(x: &'a str) { let c = 'a'; let u = '_'; 'outer: loop { break 'outer; } }";
        let toks = lex(src);
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let literals = toks.iter().filter(|t| t.kind == TokKind::Literal).count();
        assert_eq!(
            lifetimes, 4,
            "<'a>, &'a, 'outer: and break 'outer — {toks:?}"
        );
        assert_eq!(literals, 2, "'a' and '_'");
        assert!(toks.iter().any(|t| t.is_ident("break")));
    }

    #[test]
    fn float_method_calls_are_not_swallowed_by_numbers() {
        // Regression: the number lexer used to consume `.lock` / `.max`
        // after a numeric token, hiding method idents from every rule.
        let toks = lex("let a = pair.0.lock(); let b = 1.0.max(2.0); let r = 1..2;");
        assert!(toks.iter().any(|t| t.is_ident("lock")), "{toks:?}");
        assert!(toks.iter().any(|t| t.is_ident("max")), "{toks:?}");
        // Range dots survive as punctuation.
        assert!(toks.iter().filter(|t| t.is_punct(".")).count() >= 4);
    }

    #[test]
    fn cfg_test_mod_with_interleaved_attributes_and_docs() {
        // Regression: attributes or doc comments between #[cfg(test)] and
        // its `mod` used to defeat the test-module scan entirely.
        let src = r#"
            fn real() {}
            #[cfg(test)]
            #[allow(dead_code)]
            /// doc comment between attribute and mod
            #[rustfmt::skip]
            mod tests {
                fn t() { x.unwrap(); }
            }
            fn after() {}
        "#;
        let toks = lex(src);
        let spans = test_module_spans(&toks);
        assert_eq!(spans.len(), 1, "{spans:?}");
        let (a, b) = spans[0];
        let inside: Vec<&str> = toks[a..b]
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(inside.contains(&"unwrap"));
        assert!(!inside.contains(&"after"));
        // pub(crate) test modules are recognized too.
        let toks = lex("#[cfg(test)] pub(crate) mod tests { fn f() {} }");
        assert_eq!(test_module_spans(&toks).len(), 1);
    }
}

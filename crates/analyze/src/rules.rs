//! The repo-specific invariant rules.
//!
//! Every rule is deny-by-default over the paths its scope names; the only
//! escape hatch is an allowlist entry (see [`crate::allowlist`]) carrying a
//! written justification. Rules work on the token stream of
//! [`crate::lexer`], with `#[cfg(test)] mod … { … }` spans removed — test
//! code may unwrap and use wall clocks freely.
//!
//! # Rule catalog
//!
//! | id       | name                          | scope                     |
//! |----------|-------------------------------|---------------------------|
//! | NW-D001  | unordered-collection          | determinism paths         |
//! | NW-D002  | raw-instant-now               | everywhere but clock shim |
//! | NW-D003  | wall-clock-or-entropy         | everywhere                |
//! | NW-D004  | unordered-iteration           | determinism paths         |
//! | NW-D005  | thread-spawn-in-replay        | determinism paths         |
//! | NW-D006  | ambient-filesystem-path       | determinism paths         |
//! | NW-S001  | panic-on-request-path         | serve + netsim            |
//! | NW-S002  | raw-mutex-lock                | everywhere but sync shim  |
//! | NW-S003  | blocking-under-shard-lock     | lock-holding modules      |
//! | NW-S004  | blocking-socket-io            | serve, minus readiness    |
//! | NW-S005  | raw-deadline-arithmetic       | serve deadline scope      |
//! | NW-S006  | raw-span-timestamp            | serve span scope          |
//! | NW-S007  | fleet-socket-confinement      | fleet, minus transport    |
//!
//! Rationale per rule lives in `DESIGN.md` ("Invariant catalog").

use crate::lexer::{lex, test_module_spans, Tok, TokKind};
use crate::LintConfig;
use serde::Serialize;

/// One step of an interprocedural call chain, root first. The last step
/// points at the offending construct itself.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ChainStep {
    /// Fully qualified function name (`crate::module::Type::fn`), or the
    /// offending construct's label for the final step.
    pub func: String,
    /// Path relative to the lint root, `/`-separated.
    pub file: String,
    /// 1-based line of the call site (or offending construct).
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
}

/// One rule violation at a source position.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Finding {
    /// Stable rule id (`NW-D001` …).
    pub rule: &'static str,
    /// The rule's one-line description (same for every finding of a rule).
    pub desc: &'static str,
    /// Path relative to the lint root, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// Interprocedural call chain from a root to the offending site
    /// (graph rules only; empty for per-file token rules).
    #[serde(skip_serializing_if = "Vec::is_empty")]
    pub chain: Vec<ChainStep>,
}

impl Finding {
    /// Builds a chain-less finding, deriving `desc` from the rule id.
    pub fn at(rule: &'static str, file: &str, line: u32, col: u32, message: String) -> Finding {
        Finding {
            rule,
            desc: rule_desc(rule),
            file: file.to_string(),
            line,
            col,
            message,
            chain: Vec::new(),
        }
    }
}

/// All per-file rule ids, in catalog order (fixture tests iterate this).
pub const RULE_IDS: [&str; 13] = [
    "NW-D001", "NW-D002", "NW-D003", "NW-D004", "NW-D005", "NW-D006", "NW-S001", "NW-S002",
    "NW-S003", "NW-S004", "NW-S005", "NW-S006", "NW-S007",
];

/// The interprocedural (workspace call-graph) rule ids, in catalog order.
pub const GRAPH_RULE_IDS: [&str; 3] = ["NW-G001", "NW-G002", "NW-G003"];

/// One-line description of each rule, embedded in `--json` records and
/// SARIF rule metadata.
pub fn rule_desc(rule: &str) -> &'static str {
    match rule {
        "NW-D001" => "unordered collection in a determinism-critical path",
        "NW-D002" => "raw Instant::now outside the clock shim",
        "NW-D003" => "wall-clock or OS-entropy source",
        "NW-D004" => "unordered-collection iteration in a determinism-critical path",
        "NW-D005" => "thread spawn inside deterministic replay code",
        "NW-D006" => "ambient filesystem path in determinism-critical code",
        "NW-S001" => "panicking call on the request-handling path",
        "NW-S002" => "raw .lock() without a poisoning policy",
        "NW-S003" => "blocking syscall in a lock-holding module",
        "NW-S004" => "blocking socket I/O outside the readiness loop",
        "NW-S005" => "deadline arithmetic bypassing the clock shim",
        "NW-S006" => "raw timestamp source on the span-recording path",
        "NW-S007" => "socket I/O outside the fleet transport module",
        "NW-G001" => "determinism-forbidden API reachable from a planning root",
        "NW-G002" => "lock-order cycle across lock_unpoisoned call paths",
        "NW-G003" => "panic site reachable from a serve/fleet availability root",
        _ => "unknown rule",
    }
}

/// True when `path` (relative, `/`-separated) falls under any of the scope
/// entries. An entry ending in `/` is a directory prefix; an empty entry
/// matches everything; anything else must match the path exactly.
pub(crate) fn in_scope(path: &str, scope: &[String]) -> bool {
    scope.iter().any(|s| {
        if s.is_empty() {
            true
        } else if let Some(dir) = s.strip_suffix('/') {
            path.starts_with(dir) && path[dir.len()..].starts_with('/') || path.starts_with(s)
        } else {
            path == s
        }
    })
}

/// Runs every rule over one file's source, returning its findings.
pub fn check_file(path: &str, src: &str, cfg: &LintConfig) -> Vec<Finding> {
    let toks = lex(src);
    let test_spans = test_module_spans(&toks);
    let in_test = |i: usize| test_spans.iter().any(|&(a, b)| i >= a && i < b);

    let deterministic = in_scope(path, &cfg.determinism_paths);
    let request_path = in_scope(path, &cfg.request_paths);
    let clock_shim = in_scope(path, &cfg.clock_files);
    let sync_shim = in_scope(path, &cfg.lock_helper_files);
    let shard_module = in_scope(path, &cfg.shard_modules);
    let lock_scope = in_scope(path, &cfg.lock_scope);
    let socket_scope = in_scope(path, &cfg.socket_scope);
    let readiness = in_scope(path, &cfg.readiness_files);
    let deadline_scope = in_scope(path, &cfg.deadline_scope);
    let span_scope = in_scope(path, &cfg.span_scope);
    let fleet_scope = in_scope(path, &cfg.fleet_scope);
    let transport = in_scope(path, &cfg.transport_files);

    // NW-D004 only applies where an unordered collection is actually in
    // play: a file that has already banished HashMap/HashSet cannot iterate
    // one, and flagging `.values()` on a BTreeMap would be noise.
    let has_unordered = toks.iter().enumerate().any(|(i, t)| {
        !in_test(i) && t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet")
    });

    let mut out = Vec::new();
    let push = |out: &mut Vec<Finding>, rule: &'static str, t: &Tok, message: String| {
        out.push(Finding::at(rule, path, t.line, t.col, message));
    };

    for i in 0..toks.len() {
        if in_test(i) {
            continue;
        }
        let t = &toks[i];

        // NW-D001 — unordered collections in determinism-critical code.
        if deterministic && t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet")
        {
            push(
                &mut out,
                "NW-D001",
                t,
                format!(
                    "{} in a determinism-critical path: iteration order is \
                     randomized per process; use BTreeMap/BTreeSet or a sorted Vec",
                    t.text
                ),
            );
        }

        // NW-D002 — Instant::now outside the clock shim.
        if !clock_shim
            && t.is_ident("Instant")
            && matches!(toks.get(i + 1), Some(p) if p.is_punct(":"))
            && matches!(toks.get(i + 2), Some(p) if p.is_punct(":"))
            && matches!(toks.get(i + 3), Some(n) if n.is_ident("now"))
        {
            push(
                &mut out,
                "NW-D002",
                t,
                "raw Instant::now — route timing through nestwx_obs::clock::now() \
                 so replay/virtual-time hooks see every read"
                    .to_string(),
            );
        }

        // NW-D003 — wall clock / ambient entropy.
        if t.kind == TokKind::Ident {
            let hit = match t.text.as_str() {
                "SystemTime" => matches!(toks.get(i + 3), Some(n) if n.is_ident("now"))
                    .then_some("SystemTime::now"),
                "thread_rng" => Some("thread_rng()"),
                "from_entropy" => Some("from_entropy()"),
                _ => None,
            };
            if let Some(what) = hit {
                push(
                    &mut out,
                    "NW-D003",
                    t,
                    format!(
                        "{what} injects wall-clock/OS entropy; planning and replay \
                         must be seeded and deterministic"
                    ),
                );
            }
        }

        // NW-D004 — iterating an unordered collection.
        if deterministic
            && has_unordered
            && t.is_punct(".")
            && matches!(
                toks.get(i + 1),
                Some(m) if m.kind == TokKind::Ident
                    && matches!(m.text.as_str(), "keys" | "values" | "values_mut" | "drain" | "into_keys" | "into_values")
            )
            && matches!(toks.get(i + 2), Some(p) if p.is_punct("("))
        {
            let m = &toks[i + 1];
            push(
                &mut out,
                "NW-D004",
                m,
                format!(
                    ".{}() in a file using HashMap/HashSet: unordered iteration \
                     makes output order (and float accumulation order) \
                     schedule-dependent",
                    m.text
                ),
            );
        }

        // NW-D005 — spawning threads inside deterministic replay code.
        if deterministic
            && t.is_ident("thread")
            && matches!(toks.get(i + 1), Some(p) if p.is_punct(":"))
            && matches!(toks.get(i + 2), Some(p) if p.is_punct(":"))
            && matches!(toks.get(i + 3), Some(n) if n.is_ident("spawn") || n.is_ident("scope"))
        {
            push(
                &mut out,
                "NW-D005",
                t,
                "thread::spawn/scope in a determinism-critical path: replay \
                 must be single-threaded; parallelism belongs in the driver"
                    .to_string(),
            );
        }

        // NW-D006 — ambient filesystem locations in deterministic code.
        // Disk-cache contents must be a pure function of configuration:
        // a path picked up from the environment (temp dir, cwd, home)
        // makes two "identical" runs read different caches.
        if deterministic
            && t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "temp_dir" | "current_dir" | "home_dir")
            && matches!(toks.get(i + 1), Some(p) if p.is_punct("("))
        {
            push(
                &mut out,
                "NW-D006",
                t,
                format!(
                    "{}() reads an ambient filesystem location; \
                     determinism-critical code must take directories through \
                     explicit configuration (e.g. a cache_dir field), not \
                     the process environment",
                    t.text
                ),
            );
        }

        // NW-S001 — panicking calls on the request-handling path.
        if request_path {
            let method_call = t.is_punct(".")
                && matches!(
                    toks.get(i + 1),
                    Some(m) if m.kind == TokKind::Ident
                        && matches!(m.text.as_str(), "unwrap" | "expect")
                )
                && matches!(toks.get(i + 2), Some(p) if p.is_punct("("));
            if method_call {
                let m = &toks[i + 1];
                push(
                    &mut out,
                    "NW-S001",
                    m,
                    format!(
                        ".{}() on the request path can kill a worker/connection \
                         thread; return a typed error or use a poison-safe helper",
                        m.text
                    ),
                );
            }
            let panic_macro = t.kind == TokKind::Ident
                && matches!(
                    t.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                )
                && matches!(toks.get(i + 1), Some(p) if p.is_punct("!"));
            if panic_macro {
                push(
                    &mut out,
                    "NW-S001",
                    t,
                    format!("{}! on the request path; return a typed error", t.text),
                );
            }
        }

        // NW-S002 — raw `.lock()` outside the sync helper.
        if lock_scope
            && !sync_shim
            && t.is_punct(".")
            && matches!(toks.get(i + 1), Some(m) if m.is_ident("lock"))
            && matches!(toks.get(i + 2), Some(p) if p.is_punct("("))
            && matches!(toks.get(i + 3), Some(p) if p.is_punct(")"))
        {
            let m = &toks[i + 1];
            push(
                &mut out,
                "NW-S002",
                m,
                "raw .lock() has no poisoning policy; call \
                 sync::lock_unpoisoned (serve) or map PoisonError explicitly"
                    .to_string(),
            );
        }

        // NW-S003 — blocking syscalls in modules that hold shard locks.
        if shard_module && t.kind == TokKind::Ident {
            let blocking =
                matches!(
                    t.text.as_str(),
                    "File"
                        | "OpenOptions"
                        | "TcpStream"
                        | "TcpListener"
                        | "UdpSocket"
                        | "sleep"
                        | "read_to_string"
                        | "create_dir_all"
                ) || (matches!(t.text.as_str(), "println" | "eprintln" | "print" | "eprint")
                    && matches!(toks.get(i + 1), Some(p) if p.is_punct("!")));
            if blocking {
                push(
                    &mut out,
                    "NW-S003",
                    t,
                    format!(
                        "{} in a lock-holding module: blocking while a cache \
                         shard or queue lock is held stalls every other thread",
                        t.text
                    ),
                );
            }
        }

        // NW-S004 — blocking socket I/O outside the readiness loop. Every
        // socket the event-driven server owns is nonblocking; a blocking
        // accept/read/write anywhere else reintroduces thread-per-connection
        // stalls behind the reader's back.
        if socket_scope
            && !readiness
            && t.is_punct(".")
            && matches!(
                toks.get(i + 1),
                Some(m) if m.kind == TokKind::Ident
                    && matches!(
                        m.text.as_str(),
                        "accept" | "incoming" | "read_exact" | "write_all" | "read_line"
                            | "read_to_end"
                    )
            )
            && matches!(toks.get(i + 2), Some(p) if p.is_punct("("))
        {
            let m = &toks[i + 1];
            push(
                &mut out,
                "NW-S004",
                m,
                format!(
                    ".{}() is blocking I/O outside the readiness loop: all \
                     socket traffic must flow through the nonblocking reader \
                     (event_loop/conn) so one slow peer cannot stall a thread",
                    m.text
                ),
            );
        }

        // NW-S005 — deadline arithmetic that bypasses the clock shim.
        // Deadline math must use nestwx_obs::clock (now/since/expired) so
        // replay and virtual-time hooks see every deadline check; raw
        // elapsed/duration_since reads the monotonic clock behind them.
        if deadline_scope
            && t.is_punct(".")
            && matches!(
                toks.get(i + 1),
                Some(m) if m.kind == TokKind::Ident
                    && matches!(
                        m.text.as_str(),
                        "elapsed" | "duration_since" | "checked_duration_since"
                    )
            )
            && matches!(toks.get(i + 2), Some(p) if p.is_punct("("))
        {
            let m = &toks[i + 1];
            push(
                &mut out,
                "NW-S005",
                m,
                format!(
                    ".{}() reads the clock behind the shim: route deadline \
                     checks through nestwx_obs::clock (since/expired) so \
                     virtual-time tests and replay control every time read",
                    m.text
                ),
            );
        }

        // NW-S006 — raw timestamp sources on the flight-recorder span
        // path. A span stamped from `Instant::now`/`SystemTime::now`
        // instead of the clock shim silently diverges from every other
        // timestamp in the trace under replay or virtual time.
        if span_scope
            && !clock_shim
            && t.kind == TokKind::Ident
            && (t.text == "Instant" || t.text == "SystemTime")
            && matches!(toks.get(i + 1), Some(p) if p.is_punct(":"))
            && matches!(toks.get(i + 2), Some(p) if p.is_punct(":"))
            && matches!(toks.get(i + 3), Some(n) if n.is_ident("now"))
        {
            push(
                &mut out,
                "NW-S006",
                t,
                format!(
                    "raw {}::now on the span-recording path: flight-recorder \
                     timestamps must come from nestwx_obs::clock \
                     (now/since/micros_since) so recorded traces line up \
                     under virtual time and replay",
                    t.text
                ),
            );
        }

        // NW-S007 — socket I/O on the fleet data path outside the
        // designated transport module. The fleet's no-hang guarantees
        // (nonblocking pumps, per-frame deadlines, EOF-as-state) are
        // enforced by the transport module's FrameConn; a socket touched
        // anywhere else in the crate bypasses that discipline and can
        // wedge a worker or the coordinator on a dead peer.
        if fleet_scope && !transport {
            if t.kind == TokKind::Ident
                && matches!(t.text.as_str(), "TcpStream" | "TcpListener" | "UdpSocket")
            {
                push(
                    &mut out,
                    "NW-S007",
                    t,
                    format!(
                        "{} on the fleet data path: sockets are confined to \
                         the designated transport module, which owns the \
                         nonblocking/deadline discipline",
                        t.text
                    ),
                );
            }
            if t.is_punct(".")
                && matches!(
                    toks.get(i + 1),
                    Some(m) if m.kind == TokKind::Ident
                        && matches!(
                            m.text.as_str(),
                            "accept" | "set_nonblocking" | "peek" | "read_exact" | "write_all"
                                | "read_to_end"
                        )
                )
                && matches!(toks.get(i + 2), Some(p) if p.is_punct("("))
            {
                let m = &toks[i + 1];
                push(
                    &mut out,
                    "NW-S007",
                    m,
                    format!(
                        ".{}() is raw socket I/O on the fleet data path: \
                         route all frame traffic through the transport \
                         module's FrameConn so deadlines and EOF handling \
                         stay in one place",
                        m.text
                    ),
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_all() -> LintConfig {
        LintConfig {
            root: std::path::PathBuf::from("."),
            determinism_paths: vec![String::new()],
            request_paths: vec![String::new()],
            clock_files: vec![],
            lock_helper_files: vec![],
            shard_modules: vec![String::new()],
            lock_scope: vec![String::new()],
            socket_scope: vec![String::new()],
            readiness_files: vec![],
            deadline_scope: vec![String::new()],
            // Kept empty so the exact-match assertions above stay
            // S006/S007-free; those rules' tests opt in explicitly.
            span_scope: vec![],
            fleet_scope: vec![],
            transport_files: vec![],
        }
    }

    fn rules_of(src: &str) -> Vec<&'static str> {
        check_file("x.rs", src, &cfg_all())
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn d001_fires_on_hashmap() {
        assert_eq!(
            rules_of("use std::collections::HashMap;\n"),
            vec!["NW-D001"]
        );
    }

    #[test]
    fn d002_fires_outside_clock_shim_only() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(rules_of(src), vec!["NW-D002"]);
        let mut cfg = cfg_all();
        cfg.clock_files = vec!["x.rs".to_string()];
        assert!(check_file("x.rs", src, &cfg).is_empty());
    }

    #[test]
    fn d004_needs_an_unordered_collection_in_the_file() {
        let with = "let m: HashMap<u32,u32> = make(); for v in m.values() {}";
        let rules = rules_of(with);
        assert!(rules.contains(&"NW-D004"), "{rules:?}");
        let without = "let m: BTreeMap<u32,u32> = make(); for v in m.values() {}";
        assert!(!rules_of(without).contains(&"NW-D004"));
    }

    #[test]
    fn d006_flags_ambient_paths_in_deterministic_scope_only() {
        let src = "fn f() -> PathBuf { std::env::temp_dir() }";
        assert_eq!(rules_of(src), vec!["NW-D006"]);
        assert_eq!(
            rules_of("fn g() { let _ = std::env::current_dir(); }"),
            vec!["NW-D006"]
        );
        let mut cfg = cfg_all();
        cfg.determinism_paths = vec![];
        assert!(check_file("x.rs", src, &cfg).is_empty());
        // A field or variable named temp_dir is not a call.
        assert!(rules_of("fn h(c: &Cfg) -> &Path { &c.temp_dir }").is_empty());
    }

    #[test]
    fn s001_flags_unwrap_expect_and_panics_outside_tests() {
        let src = r#"
            fn f(x: Option<u32>) -> u32 { x.unwrap() }
            fn g(x: Option<u32>) -> u32 { x.expect("boom") }
            fn h() { panic!("no"); }
            #[cfg(test)]
            mod tests {
                fn t(x: Option<u32>) -> u32 { x.unwrap() }
            }
        "#;
        assert_eq!(rules_of(src), vec!["NW-S001", "NW-S001", "NW-S001"]);
    }

    #[test]
    fn s001_does_not_flag_unwrap_or_else() {
        assert!(rules_of("fn f(x: Option<u32>) -> u32 { x.unwrap_or_else(|| 0) }").is_empty());
    }

    #[test]
    fn s002_flags_raw_lock_but_not_helper_file() {
        let src = "fn f(m: &Mutex<u32>) { let _g = m.lock().unwrap(); }";
        let rules = rules_of(src);
        assert!(rules.contains(&"NW-S002"));
        assert!(rules.contains(&"NW-S001"), "the unwrap also fires");
        let mut cfg = cfg_all();
        cfg.lock_helper_files = vec!["x.rs".to_string()];
        assert!(!check_file("x.rs", src, &cfg)
            .iter()
            .any(|f| f.rule == "NW-S002"));
    }

    #[test]
    fn s003_flags_blocking_calls() {
        let src = "fn f() { std::thread::sleep(d); }";
        let rules = rules_of(src);
        assert!(rules.contains(&"NW-S003"), "{rules:?}");
        // thread::sleep also matches D005? No — spawn/scope only.
        assert!(!rules.contains(&"NW-D005"));
    }

    #[test]
    fn d005_flags_spawn_in_deterministic_path() {
        assert!(rules_of("fn f() { std::thread::spawn(|| {}); }").contains(&"NW-D005"));
    }

    #[test]
    fn s004_flags_blocking_socket_io_outside_readiness_files() {
        let src = "fn f(l: &TcpListener) { let _ = l.accept(); }";
        let rules = rules_of(src);
        assert!(rules.contains(&"NW-S004"), "{rules:?}");
        let mut cfg = cfg_all();
        cfg.readiness_files = vec!["x.rs".to_string()];
        assert!(!check_file("x.rs", src, &cfg)
            .iter()
            .any(|f| f.rule == "NW-S004"));
    }

    #[test]
    fn s004_ignores_non_socket_methods() {
        assert!(
            !rules_of("fn f(v: &[u8]) { let _ = v.accepted(); v.write(b); }").contains(&"NW-S004")
        );
    }

    #[test]
    fn s005_flags_raw_deadline_reads() {
        let src = "fn f(t: Instant) -> bool { t.elapsed() > LIMIT }";
        let rules = rules_of(src);
        assert!(rules.contains(&"NW-S005"), "{rules:?}");
        let mut cfg = cfg_all();
        cfg.deadline_scope = vec![];
        assert!(!check_file("x.rs", src, &cfg)
            .iter()
            .any(|f| f.rule == "NW-S005"));
    }

    #[test]
    fn s005_allows_clock_shim_calls() {
        assert!(rules_of("fn f(t: Instant) -> bool { clock::expired(t, limit) }").is_empty());
    }

    #[test]
    fn s006_flags_raw_span_timestamps_in_scope_only() {
        let src = "fn f() { let t = Instant::now(); let w = SystemTime::now(); }";
        let mut cfg = cfg_all();
        cfg.span_scope = vec!["x.rs".to_string()];
        let rules: Vec<_> = check_file("x.rs", src, &cfg)
            .into_iter()
            .map(|f| f.rule)
            .collect();
        assert_eq!(
            rules.iter().filter(|r| **r == "NW-S006").count(),
            2,
            "{rules:?}"
        );
        // The clock shim itself is the one place allowed to read time.
        cfg.clock_files = vec!["x.rs".to_string()];
        assert!(!check_file("x.rs", src, &cfg)
            .iter()
            .any(|f| f.rule == "NW-S006"));
        // Out of scope, only the general D002/D003 rules apply.
        let base: Vec<_> = check_file("x.rs", src, &cfg_all())
            .into_iter()
            .map(|f| f.rule)
            .collect();
        assert!(!base.contains(&"NW-S006"), "{base:?}");
    }

    #[test]
    fn s007_confines_fleet_sockets_to_the_transport_module() {
        let src = "fn f(addr: &str) { let s = TcpStream::connect(addr); s.set_nonblocking(true); }";
        let mut cfg = cfg_all();
        cfg.fleet_scope = vec!["x.rs".to_string()];
        let rules: Vec<_> = check_file("x.rs", src, &cfg)
            .into_iter()
            .map(|f| f.rule)
            .collect();
        assert_eq!(
            rules.iter().filter(|r| **r == "NW-S007").count(),
            2,
            "{rules:?}"
        );
        // The designated transport module is the one place allowed to
        // touch sockets.
        cfg.transport_files = vec!["x.rs".to_string()];
        assert!(!check_file("x.rs", src, &cfg)
            .iter()
            .any(|f| f.rule == "NW-S007"));
        // Out of fleet scope the rule stays silent entirely.
        assert!(!check_file("x.rs", src, &cfg_all())
            .iter()
            .any(|f| f.rule == "NW-S007"));
    }

    #[test]
    fn findings_carry_positions() {
        let f = &check_file("x.rs", "let t =\n  Instant::now();", &cfg_all())[0];
        assert_eq!((f.rule, f.line, f.col), ("NW-D002", 2, 3));
    }
}

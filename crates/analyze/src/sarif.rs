//! SARIF 2.1.0 output for `nestwx lint`, so CI systems and code-review
//! UIs can ingest findings without parsing the human report.
//!
//! Built directly as a [`serde_json::Value`] tree (object keys keep
//! insertion order, and SARIF needs keys like `$schema` that the vendored
//! derive cannot rename). Output is byte-stable for a given report:
//! findings arrive sorted, rule metadata is emitted in catalog order.

use crate::rules::{rule_desc, Finding, GRAPH_RULE_IDS, RULE_IDS};
use crate::LintReport;
use serde_json::Value;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn s(text: &str) -> Value {
    Value::String(text.to_string())
}

fn location(file: &str, line: u32, col: u32) -> Value {
    obj(vec![(
        "physicalLocation",
        obj(vec![
            ("artifactLocation", obj(vec![("uri", s(file))])),
            (
                "region",
                obj(vec![
                    ("startLine", Value::Number(line as f64)),
                    ("startColumn", Value::Number(col as f64)),
                ]),
            ),
        ]),
    )])
}

fn result(f: &Finding) -> Value {
    let mut fields = vec![
        ("ruleId", s(f.rule)),
        ("level", s("error")),
        ("message", obj(vec![("text", s(&f.message))])),
        (
            "locations",
            Value::Array(vec![location(&f.file, f.line, f.col)]),
        ),
    ];
    // Call chains map to a SARIF code flow: one thread flow, root first.
    if !f.chain.is_empty() {
        let steps: Vec<Value> = f
            .chain
            .iter()
            .map(|step| {
                obj(vec![(
                    "location",
                    obj(vec![
                        ("message", obj(vec![("text", s(&step.func))])),
                        (
                            "physicalLocation",
                            obj(vec![
                                ("artifactLocation", obj(vec![("uri", s(&step.file))])),
                                (
                                    "region",
                                    obj(vec![
                                        ("startLine", Value::Number(step.line as f64)),
                                        ("startColumn", Value::Number(step.col as f64)),
                                    ]),
                                ),
                            ]),
                        ),
                    ]),
                )])
            })
            .collect();
        fields.push((
            "codeFlows",
            Value::Array(vec![obj(vec![(
                "threadFlows",
                Value::Array(vec![obj(vec![("locations", Value::Array(steps))])]),
            )])]),
        ));
    }
    obj(fields)
}

/// Serializes a lint report as a SARIF 2.1.0 log (pretty-printed, with a
/// trailing newline).
pub fn to_sarif(report: &LintReport) -> String {
    let rules: Vec<Value> = RULE_IDS
        .iter()
        .chain(GRAPH_RULE_IDS.iter())
        .map(|id| {
            obj(vec![
                ("id", s(id)),
                ("shortDescription", obj(vec![("text", s(rule_desc(id)))])),
            ])
        })
        .collect();
    let results: Vec<Value> = report.findings.iter().map(result).collect();
    let root = obj(vec![
        (
            "$schema",
            s("https://json.schemastore.org/sarif-2.1.0.json"),
        ),
        ("version", s("2.1.0")),
        (
            "runs",
            Value::Array(vec![obj(vec![
                (
                    "tool",
                    obj(vec![(
                        "driver",
                        obj(vec![
                            ("name", s("nestwx-lint")),
                            ("rules", Value::Array(rules)),
                        ]),
                    )]),
                ),
                ("results", Value::Array(results)),
            ])]),
        ),
    ]);
    let mut out = serde_json::to_string_pretty(&root).unwrap_or_else(|_| "{}".to_string());
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::ChainStep;

    fn report_with(findings: Vec<Finding>) -> LintReport {
        LintReport {
            findings,
            suppressed: vec![],
            allow_errors: vec![],
            files_scanned: 1,
            graph: None,
            graph_errors: vec![],
        }
    }

    #[test]
    fn sarif_is_valid_json_with_schema_and_rules() {
        let sarif = to_sarif(&report_with(vec![]));
        let v = serde_json::from_str(&sarif).expect("valid JSON");
        assert_eq!(v["version"].as_str(), Some("2.1.0"));
        assert!(v["$schema"].as_str().unwrap().contains("sarif-2.1.0"));
        let rules = v["runs"][0]["tool"]["driver"]["rules"].as_array().unwrap();
        assert_eq!(rules.len(), RULE_IDS.len() + GRAPH_RULE_IDS.len());
    }

    #[test]
    fn findings_map_to_results_with_locations_and_code_flows() {
        let mut f = Finding::at("NW-G001", "crates/a/src/b.rs", 7, 3, "bad".to_string());
        f.chain = vec![ChainStep {
            func: "app::entry".to_string(),
            file: "crates/a/src/main.rs".to_string(),
            line: 2,
            col: 5,
        }];
        let sarif = to_sarif(&report_with(vec![f]));
        let v = serde_json::from_str(&sarif).unwrap();
        let r = &v["runs"][0]["results"][0];
        assert_eq!(r["ruleId"].as_str(), Some("NW-G001"));
        let region = &r["locations"][0]["physicalLocation"]["region"];
        assert_eq!(region["startLine"].as_u64(), Some(7));
        assert_eq!(region["startColumn"].as_u64(), Some(3));
        let flow = &r["codeFlows"][0]["threadFlows"][0]["locations"][0]["location"];
        assert_eq!(flow["message"]["text"].as_str(), Some("app::entry"));
    }
}

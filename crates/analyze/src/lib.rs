//! `nestwx-analyze` — static enforcement of the workspace's headline
//! invariants.
//!
//! The reproduction's guarantees — bitwise-identical `SimReport`s across
//! engines, obs-on/off equivalence, byte-identical cache hits in
//! `nestwx-serve` — were until now enforced only by runtime tests, which
//! cannot see a nondeterminism bug until an input happens to trigger it.
//! This crate adds the static layer: a token-level pass over the whole
//! workspace (the offline build vendors no `syn`, so the analyzer lexes
//! rather than parses — see [`lexer`]) that denies the constructs those
//! invariants cannot survive:
//!
//! * **determinism rules** (`NW-D…`): unordered collections and their
//!   iteration in planner/canon/replay/cache paths, raw `Instant::now`
//!   outside the `nestwx-obs` clock shim, wall-clock/entropy sources,
//!   thread spawns inside replay code, and ambient filesystem paths
//!   (temp dir/cwd/home) where cache locations must flow through
//!   configuration;
//! * **serve robustness rules** (`NW-S…`): `unwrap`/`expect`/`panic!` on
//!   the request-handling path, raw `.lock()` without a poisoning policy,
//!   blocking syscalls in lock-holding modules, blocking socket I/O
//!   outside the readiness loop, deadline arithmetic that bypasses
//!   the `nestwx_obs::clock` shim, and socket I/O on the fleet data
//!   path outside its designated transport module.
//!
//! Rules are deny-by-default; the only escape is an [`allowlist`] entry
//! with a written justification, and every entry must suppress exactly one
//! diagnostic so the list can never rot. Run it as `nestwx lint`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allowlist;
pub mod lexer;
pub mod rules;

pub use allowlist::AllowEntry;
pub use rules::{Finding, RULE_IDS};

use serde::Serialize;
use std::path::{Path, PathBuf};

/// Where each rule family applies. Paths are relative to [`LintConfig::root`],
/// `/`-separated; entries ending in `/` are directory prefixes, empty
/// entries match everything, anything else matches one file exactly.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Workspace root the scan is anchored at.
    pub root: PathBuf,
    /// Determinism-critical files (NW-D001/D004/D005).
    pub determinism_paths: Vec<String>,
    /// Request-handling crates (NW-S001).
    pub request_paths: Vec<String>,
    /// The clock shim — the only place allowed to call `Instant::now`.
    pub clock_files: Vec<String>,
    /// The sync helper(s) — the only places allowed to call `.lock()`.
    pub lock_helper_files: Vec<String>,
    /// Modules that hold cache-shard/queue locks (NW-S003).
    pub shard_modules: Vec<String>,
    /// Where NW-S002 (raw lock) applies at all.
    pub lock_scope: Vec<String>,
    /// Where NW-S004 (blocking socket I/O) applies.
    pub socket_scope: Vec<String>,
    /// The readiness loop itself — the only files allowed to touch
    /// sockets directly (accept/read/write), exempt from NW-S004.
    pub readiness_files: Vec<String>,
    /// Where NW-S005 (raw deadline arithmetic) applies: deadline checks
    /// must go through the `nestwx_obs::clock` shim.
    pub deadline_scope: Vec<String>,
    /// Where NW-S006 (raw span timestamps) applies: the serve request
    /// path that stamps flight-recorder spans — every timestamp there
    /// must come from `nestwx_obs::clock` so recorded traces replay
    /// under virtual time.
    pub span_scope: Vec<String>,
    /// Where NW-S007 (fleet socket confinement) applies: the fleet crate,
    /// whose no-hang guarantees depend on every socket syscall flowing
    /// through one transport module.
    pub fleet_scope: Vec<String>,
    /// The fleet's designated transport module — the only file in
    /// `fleet_scope` allowed to touch sockets, exempt from NW-S007.
    pub transport_files: Vec<String>,
}

impl LintConfig {
    /// The workspace ruleset: the scopes encoding which paths carry the
    /// determinism and serving guarantees of this repository.
    pub fn workspace_default(root: impl Into<PathBuf>) -> LintConfig {
        let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect();
        LintConfig {
            root: root.into(),
            determinism_paths: s(&[
                // Planner + canonical encoding: plan bytes must be a pure
                // function of the scenario.
                "crates/core/src/planner.rs",
                "crates/core/src/canon.rs",
                "crates/core/src/strategy.rs",
                // Compiled-schedule replay: SimReports are compared bitwise
                // across engines.
                "crates/netsim/src/",
                // Mapping/embedding: plan output order must be stable.
                "crates/topo/src/mapping.rs",
                "crates/topo/src/embed.rs",
                // Serve render/cache path: cache hits must be byte-identical
                // to fresh computations.
                "crates/serve/src/cache.rs",
                "crates/serve/src/server.rs",
                "crates/serve/src/batch.rs",
                "crates/serve/src/queue.rs",
                "crates/serve/src/keys.rs",
                // Disk-persisted plan cache + sweep engine: cache locations
                // and swept plan bytes must be pure functions of config
                // (NW-D006 — no ambient temp dir / cwd).
                "crates/serve/src/disk.rs",
                "crates/sweep/src/",
            ]),
            request_paths: s(&["crates/serve/src/", "crates/netsim/src/"]),
            clock_files: s(&["crates/obs/src/clock.rs"]),
            lock_helper_files: s(&["crates/serve/src/sync.rs"]),
            shard_modules: s(&[
                "crates/serve/src/cache.rs",
                "crates/serve/src/batch.rs",
                "crates/serve/src/queue.rs",
            ]),
            lock_scope: s(&["crates/", "src/"]),
            socket_scope: s(&["crates/serve/src/"]),
            readiness_files: s(&[
                "crates/serve/src/event_loop.rs",
                "crates/serve/src/conn.rs",
                "crates/serve/src/client.rs",
            ]),
            deadline_scope: s(&["crates/serve/src/"]),
            span_scope: s(&[
                "crates/serve/src/flight.rs",
                "crates/serve/src/event_loop.rs",
                "crates/serve/src/conn.rs",
                "crates/serve/src/batch.rs",
                "crates/serve/src/server.rs",
            ]),
            fleet_scope: s(&["crates/fleet/src/"]),
            transport_files: s(&["crates/fleet/src/net.rs"]),
        }
    }

    /// A ruleset for the fixture tree: every rule applies everywhere under
    /// `root`, with no shim exemptions — known-bad snippets must all fire.
    pub fn fixtures(root: impl Into<PathBuf>) -> LintConfig {
        LintConfig {
            root: root.into(),
            determinism_paths: vec![String::new()],
            request_paths: vec![String::new()],
            clock_files: vec![],
            lock_helper_files: vec![],
            shard_modules: vec![String::new()],
            lock_scope: vec![String::new()],
            socket_scope: vec![String::new()],
            readiness_files: vec![],
            deadline_scope: vec![String::new()],
            span_scope: vec![String::new()],
            fleet_scope: vec![String::new()],
            transport_files: vec![],
        }
    }
}

/// The outcome of one lint run.
#[derive(Debug, Clone, Serialize)]
pub struct LintReport {
    /// Violations that survived the allowlist, sorted by (file, line, col).
    pub findings: Vec<Finding>,
    /// Violations suppressed by an allowlist entry (each exactly once).
    pub suppressed: Vec<Finding>,
    /// Allowlist problems: parse errors, stale entries, ambiguous entries.
    pub allow_errors: Vec<String>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// True when the run is clean: no surviving findings and a healthy
    /// allowlist.
    pub fn ok(&self) -> bool {
        self.findings.is_empty() && self.allow_errors.is_empty()
    }

    /// Renders the human-readable report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(
                out,
                "{}:{}:{}: [{}] {}",
                f.file, f.line, f.col, f.rule, f.message
            );
        }
        for e in &self.allow_errors {
            let _ = writeln!(out, "allowlist: {e}");
        }
        let _ = writeln!(
            out,
            "{} file(s) scanned, {} violation(s), {} suppressed, {} allowlist error(s)",
            self.files_scanned,
            self.findings.len(),
            self.suppressed.len(),
            self.allow_errors.len()
        );
        out
    }
}

/// Directories never scanned (third-party code, build output, test code —
/// tests may unwrap and time freely).
const SKIP_DIRS: [&str; 8] = [
    "target", "vendor", "tests", "benches", "examples", "fixtures", ".git", ".github",
];

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs the lint over every non-test `.rs` file under the config's root,
/// applying allowlist `allow_text` (pass `""` for none).
pub fn run_lint(cfg: &LintConfig, allow_text: &str) -> std::io::Result<LintReport> {
    let mut files = Vec::new();
    collect_rs_files(&cfg.root, &mut files)?;
    let mut findings = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(&cfg.root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(path)?;
        findings.extend(rules::check_file(&rel, &src, cfg));
    }
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    let (entries, mut allow_errors) = allowlist::parse(allow_text);
    let (kept, suppressed, apply_errors) = allowlist::apply(findings, &entries);
    allow_errors.extend(apply_errors);
    Ok(LintReport {
        findings: kept,
        suppressed,
        allow_errors,
        files_scanned: files.len(),
    })
}

/// Convenience: [`run_lint`] reading the allowlist from `allow_path` when
/// the file exists (a missing allowlist means "allow nothing").
pub fn run_lint_with_allow_file(
    cfg: &LintConfig,
    allow_path: &Path,
) -> std::io::Result<LintReport> {
    let allow_text = match std::fs::read_to_string(allow_path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    run_lint(cfg, &allow_text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_default_scopes_are_relative_and_slashed() {
        let cfg = LintConfig::workspace_default(".");
        for p in cfg
            .determinism_paths
            .iter()
            .chain(&cfg.request_paths)
            .chain(&cfg.clock_files)
        {
            assert!(!p.starts_with('/'), "absolute scope {p}");
            assert!(!p.contains('\\'), "backslash scope {p}");
        }
    }

    #[test]
    fn report_render_lists_counts() {
        let r = LintReport {
            findings: vec![],
            suppressed: vec![],
            allow_errors: vec![],
            files_scanned: 3,
        };
        assert!(r.ok());
        assert!(r.render().contains("3 file(s) scanned"));
    }
}

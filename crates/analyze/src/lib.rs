//! `nestwx-analyze` — static enforcement of the workspace's headline
//! invariants.
//!
//! The reproduction's guarantees — bitwise-identical `SimReport`s across
//! engines, obs-on/off equivalence, byte-identical cache hits in
//! `nestwx-serve` — were until now enforced only by runtime tests, which
//! cannot see a nondeterminism bug until an input happens to trigger it.
//! This crate adds the static layer: a token-level pass over the whole
//! workspace (the offline build vendors no `syn`, so the analyzer lexes
//! rather than parses — see [`lexer`]) that denies the constructs those
//! invariants cannot survive:
//!
//! * **determinism rules** (`NW-D…`): unordered collections and their
//!   iteration in planner/canon/replay/cache paths, raw `Instant::now`
//!   outside the `nestwx-obs` clock shim, wall-clock/entropy sources,
//!   thread spawns inside replay code, and ambient filesystem paths
//!   (temp dir/cwd/home) where cache locations must flow through
//!   configuration;
//! * **serve robustness rules** (`NW-S…`): `unwrap`/`expect`/`panic!` on
//!   the request-handling path, raw `.lock()` without a poisoning policy,
//!   blocking syscalls in lock-holding modules, blocking socket I/O
//!   outside the readiness loop, deadline arithmetic that bypasses
//!   the `nestwx_obs::clock` shim, and socket I/O on the fleet data
//!   path outside its designated transport module.
//!
//! Rules are deny-by-default; the only escape is an [`allowlist`] entry
//! with a written justification, and every entry must suppress exactly one
//! diagnostic so the list can never rot. Run it as `nestwx lint`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allowlist;
pub mod graph;
pub mod lexer;
pub mod reach;
pub mod resolve;
pub mod rules;
pub mod sarif;

pub use allowlist::AllowEntry;
pub use resolve::GraphStats;
pub use rules::{rule_desc, ChainStep, Finding, GRAPH_RULE_IDS, RULE_IDS};
pub use sarif::to_sarif;

use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Where each rule family applies. Paths are relative to [`LintConfig::root`],
/// `/`-separated; entries ending in `/` are directory prefixes, empty
/// entries match everything, anything else matches one file exactly.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Workspace root the scan is anchored at.
    pub root: PathBuf,
    /// Determinism-critical files (NW-D001/D004/D005).
    pub determinism_paths: Vec<String>,
    /// Request-handling crates (NW-S001).
    pub request_paths: Vec<String>,
    /// The clock shim — the only place allowed to call `Instant::now`.
    pub clock_files: Vec<String>,
    /// The sync helper(s) — the only places allowed to call `.lock()`.
    pub lock_helper_files: Vec<String>,
    /// Modules that hold cache-shard/queue locks (NW-S003).
    pub shard_modules: Vec<String>,
    /// Where NW-S002 (raw lock) applies at all.
    pub lock_scope: Vec<String>,
    /// Where NW-S004 (blocking socket I/O) applies.
    pub socket_scope: Vec<String>,
    /// The readiness loop itself — the only files allowed to touch
    /// sockets directly (accept/read/write), exempt from NW-S004.
    pub readiness_files: Vec<String>,
    /// Where NW-S005 (raw deadline arithmetic) applies: deadline checks
    /// must go through the `nestwx_obs::clock` shim.
    pub deadline_scope: Vec<String>,
    /// Where NW-S006 (raw span timestamps) applies: the serve request
    /// path that stamps flight-recorder spans — every timestamp there
    /// must come from `nestwx_obs::clock` so recorded traces replay
    /// under virtual time.
    pub span_scope: Vec<String>,
    /// Where NW-S007 (fleet socket confinement) applies: the fleet crate,
    /// whose no-hang guarantees depend on every socket syscall flowing
    /// through one transport module.
    pub fleet_scope: Vec<String>,
    /// The fleet's designated transport module — the only file in
    /// `fleet_scope` allowed to touch sockets, exempt from NW-S007.
    pub transport_files: Vec<String>,
}

impl LintConfig {
    /// The workspace ruleset: the scopes encoding which paths carry the
    /// determinism and serving guarantees of this repository.
    pub fn workspace_default(root: impl Into<PathBuf>) -> LintConfig {
        let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect();
        LintConfig {
            root: root.into(),
            determinism_paths: s(&[
                // Planner + canonical encoding: plan bytes must be a pure
                // function of the scenario.
                "crates/core/src/planner.rs",
                "crates/core/src/canon.rs",
                "crates/core/src/strategy.rs",
                // Compiled-schedule replay: SimReports are compared bitwise
                // across engines.
                "crates/netsim/src/",
                // Mapping/embedding: plan output order must be stable.
                "crates/topo/src/mapping.rs",
                "crates/topo/src/embed.rs",
                // Serve render/cache path: cache hits must be byte-identical
                // to fresh computations.
                "crates/serve/src/cache.rs",
                "crates/serve/src/server.rs",
                "crates/serve/src/batch.rs",
                "crates/serve/src/queue.rs",
                "crates/serve/src/keys.rs",
                // Disk-persisted plan cache + sweep engine: cache locations
                // and swept plan bytes must be pure functions of config
                // (NW-D006 — no ambient temp dir / cwd).
                "crates/serve/src/disk.rs",
                "crates/sweep/src/",
            ]),
            request_paths: s(&["crates/serve/src/", "crates/netsim/src/"]),
            clock_files: s(&["crates/obs/src/clock.rs"]),
            lock_helper_files: s(&["crates/serve/src/sync.rs"]),
            shard_modules: s(&[
                "crates/serve/src/cache.rs",
                "crates/serve/src/batch.rs",
                "crates/serve/src/queue.rs",
            ]),
            lock_scope: s(&["crates/", "src/"]),
            socket_scope: s(&["crates/serve/src/"]),
            readiness_files: s(&[
                "crates/serve/src/event_loop.rs",
                "crates/serve/src/conn.rs",
                "crates/serve/src/client.rs",
            ]),
            deadline_scope: s(&["crates/serve/src/"]),
            span_scope: s(&[
                "crates/serve/src/flight.rs",
                "crates/serve/src/event_loop.rs",
                "crates/serve/src/conn.rs",
                "crates/serve/src/batch.rs",
                "crates/serve/src/server.rs",
            ]),
            fleet_scope: s(&["crates/fleet/src/"]),
            transport_files: s(&["crates/fleet/src/net.rs"]),
        }
    }

    /// A ruleset for the fixture tree: every rule applies everywhere under
    /// `root`, with no shim exemptions — known-bad snippets must all fire.
    pub fn fixtures(root: impl Into<PathBuf>) -> LintConfig {
        LintConfig {
            root: root.into(),
            determinism_paths: vec![String::new()],
            request_paths: vec![String::new()],
            clock_files: vec![],
            lock_helper_files: vec![],
            shard_modules: vec![String::new()],
            lock_scope: vec![String::new()],
            socket_scope: vec![String::new()],
            readiness_files: vec![],
            deadline_scope: vec![String::new()],
            span_scope: vec![String::new()],
            fleet_scope: vec![String::new()],
            transport_files: vec![],
        }
    }

    /// A ruleset for the *graph* fixture trees: every per-file scope is
    /// empty so only the interprocedural rules fire and expected chains
    /// can be asserted without per-file noise.
    pub fn graph_fixtures(root: impl Into<PathBuf>) -> LintConfig {
        LintConfig {
            root: root.into(),
            determinism_paths: vec![],
            request_paths: vec![],
            clock_files: vec![],
            lock_helper_files: vec![],
            shard_modules: vec![],
            lock_scope: vec![],
            socket_scope: vec![],
            readiness_files: vec![],
            deadline_scope: vec![],
            span_scope: vec![],
            fleet_scope: vec![],
            transport_files: vec![],
        }
    }
}

/// Configuration of the workspace-graph pass: the reachability roots the
/// interprocedural rules seed from, plus the honesty budget on name
/// resolution.
#[derive(Debug, Clone)]
pub struct GraphConfig {
    /// Qname suffixes of NW-G001 determinism roots (planner, predictor,
    /// sweep expansion, fleet partitioning).
    pub taint_roots: Vec<String>,
    /// Qname suffixes of NW-G003 availability roots (serve request loop,
    /// fleet coordinator).
    pub panic_roots: Vec<String>,
    /// File scopes where slice indexing counts as a panic site for
    /// NW-G003 (indexing is ubiquitous and mostly checked; flag it only
    /// where it has bitten before).
    pub index_modules: Vec<String>,
    /// Committed ceiling on unresolved call sites: the lint fails when
    /// resolution quality regresses past it, so graph coverage can only
    /// ratchet tighter.
    pub max_unresolved: usize,
}

impl GraphConfig {
    /// The workspace graph ruleset: roots are the determinism-critical
    /// entrypoints named in DESIGN.md plus the serve/fleet availability
    /// loops.
    pub fn workspace_default() -> GraphConfig {
        let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect();
        GraphConfig {
            taint_roots: s(&[
                // Plan bytes are a pure function of the scenario.
                "Planner::plan",
                // Closed-loop prediction feeds planning (ROADMAP): its
                // outputs must be as deterministic as the plans they steer.
                "ExecTimePredictor::predict",
                // Sweep expansion derives scenario grids; cache keys hang
                // off its output bytes.
                "SweepSpec::expand",
                // Fleet partitioning assigns nests to workers from the
                // same scenario bytes on every process.
                "build_model",
                "nest_weights",
                "partition_nests",
            ]),
            panic_roots: s(&[
                // The serve worker thread and reader loop: a panic kills
                // the worker or wedges the connection.
                "worker_loop",
                "ReaderLoop::handle_line",
                // The fleet coordinator: a panic strands every worker.
                "run_coordinator",
            ]),
            index_modules: vec![],
            // Committed threshold — see `workspace_graph_quality` in
            // tests/lint_fixtures.rs; lower it as resolution improves,
            // never raise it without a written reason. Measured 282 at
            // commit time (97% of ~9.1k call sites classified); the rest
            // are cross-crate method calls on field receivers, which a
            // token-level resolver cannot type.
            max_unresolved: 290,
        }
    }

    /// Graph config for the fixture trees: roots match the fixtures'
    /// entry functions, and everything must resolve.
    pub fn fixtures() -> GraphConfig {
        let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect();
        GraphConfig {
            taint_roots: s(&["plan_entry"]),
            panic_roots: s(&["handle_request"]),
            index_modules: vec![],
            max_unresolved: 0,
        }
    }
}

/// Call-graph section of a lint report (present only under `--graph`).
#[derive(Debug, Clone, Serialize)]
pub struct GraphSummary {
    /// Aggregate resolution statistics.
    pub stats: GraphStats,
    /// Unresolved call sites per file — reported, never silently dropped.
    pub unresolved_by_file: BTreeMap<String, usize>,
}

/// The outcome of one lint run.
#[derive(Debug, Clone, Serialize)]
pub struct LintReport {
    /// Violations that survived the allowlist, sorted by (file, line, col).
    pub findings: Vec<Finding>,
    /// Violations suppressed by an allowlist entry (each exactly once).
    pub suppressed: Vec<Finding>,
    /// Allowlist problems: parse errors, stale entries, ambiguous entries.
    pub allow_errors: Vec<String>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Call-graph statistics when the graph pass ran.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub graph: Option<GraphSummary>,
    /// Graph-pass problems (unresolved-call budget exceeded).
    #[serde(skip_serializing_if = "Vec::is_empty")]
    pub graph_errors: Vec<String>,
}

impl LintReport {
    /// True when the run is clean: no surviving findings, a healthy
    /// allowlist, and (when the graph ran) resolution within budget.
    pub fn ok(&self) -> bool {
        self.findings.is_empty() && self.allow_errors.is_empty() && self.graph_errors.is_empty()
    }

    /// Renders the human-readable report. Graph findings print their full
    /// call chain indented under the diagnostic line.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(
                out,
                "{}:{}:{}: [{}] {}",
                f.file, f.line, f.col, f.rule, f.message
            );
            for s in &f.chain {
                let _ = writeln!(out, "    via {} at {}:{}:{}", s.func, s.file, s.line, s.col);
            }
        }
        for e in &self.allow_errors {
            let _ = writeln!(out, "allowlist: {e}");
        }
        for e in &self.graph_errors {
            let _ = writeln!(out, "graph: {e}");
        }
        let _ = writeln!(
            out,
            "{} file(s) scanned, {} violation(s), {} suppressed, {} allowlist error(s)",
            self.files_scanned,
            self.findings.len(),
            self.suppressed.len(),
            self.allow_errors.len()
        );
        if let Some(g) = &self.graph {
            let _ = writeln!(
                out,
                "graph: {} function(s), {} call(s): {} resolved, {} external, {} unresolved",
                g.stats.functions,
                g.stats.calls,
                g.stats.resolved,
                g.stats.external,
                g.stats.unresolved
            );
        }
        out
    }
}

/// Directories never scanned (third-party code, build output, test code —
/// tests may unwrap and time freely).
const SKIP_DIRS: [&str; 8] = [
    "target", "vendor", "tests", "benches", "examples", "fixtures", ".git", ".github",
];

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(path);
        }
    }
    Ok(())
}

/// Derives the (crate name, module path) identity of a workspace file from
/// its relative path. Crate names come from `crate_names` (dir → package
/// name, possibly empty for fixture trees, falling back to the dir name).
fn file_identity(rel: &str, crate_names: &BTreeMap<String, String>) -> (String, Vec<String>) {
    let parts: Vec<&str> = rel.split('/').collect();
    let (crate_key, under_src): (&str, &[&str]) = match parts.as_slice() {
        ["crates", dir, "src", rest @ ..] => (dir, rest),
        ["src", rest @ ..] => ("", rest),
        _ => ("", &[]),
    };
    let crate_name = crate_names.get(crate_key).cloned().unwrap_or_else(|| {
        if crate_key.is_empty() {
            "nestwx".into()
        } else {
            crate_key.into()
        }
    });
    let mut module: Vec<String> = Vec::new();
    for (i, seg) in under_src.iter().enumerate() {
        if i + 1 == under_src.len() {
            // File segment: lib/main/mod add nothing; others add the stem.
            let stem = seg.strip_suffix(".rs").unwrap_or(seg);
            if !matches!(stem, "lib" | "main" | "mod") {
                module.push(stem.to_string());
            }
        } else {
            module.push(seg.to_string());
        }
    }
    (crate_name, module)
}

/// Reads `name = "…"` out of a Cargo.toml (line scan — the workspace's
/// manifests are trivial and the offline build has no toml parser).
fn manifest_name(path: &Path) -> Option<String> {
    let text = std::fs::read_to_string(path).ok()?;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                return Some(rest.trim().trim_matches('"').to_string());
            }
        }
    }
    None
}

/// Maps each `crates/<dir>` (and `""` for the root package) to its package
/// name, falling back to the directory name for fixture trees without
/// manifests.
fn workspace_crate_names(root: &Path) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    if let Some(n) = manifest_name(&root.join("Cargo.toml")) {
        out.insert(String::new(), n);
    }
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<_> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
        dirs.sort();
        for d in dirs {
            if !d.is_dir() {
                continue;
            }
            let dir = d
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if let Some(n) = manifest_name(&d.join("Cargo.toml")) {
                out.insert(dir, n);
            }
        }
    }
    out
}

/// Runs the lint over every non-test `.rs` file under the config's root,
/// applying allowlist `allow_text` (pass `""` for none).
pub fn run_lint(cfg: &LintConfig, allow_text: &str) -> std::io::Result<LintReport> {
    run_lint_ex(cfg, None, allow_text)
}

/// [`run_lint`] plus, when `graph_cfg` is set, the workspace call-graph
/// pass: item parsing, name resolution, and the NW-G rules. Graph findings
/// merge into the same finding list (and allowlist namespace) as the
/// per-file rules.
pub fn run_lint_ex(
    cfg: &LintConfig,
    graph_cfg: Option<&GraphConfig>,
    allow_text: &str,
) -> std::io::Result<LintReport> {
    let mut files = Vec::new();
    collect_rs_files(&cfg.root, &mut files)?;
    let crate_names = workspace_crate_names(&cfg.root);
    let mut findings = Vec::new();
    let mut parsed: Vec<graph::FileGraph> = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(&cfg.root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(path)?;
        findings.extend(rules::check_file(&rel, &src, cfg));
        if graph_cfg.is_some() {
            let (krate, module) = file_identity(&rel, &crate_names);
            parsed.push(graph::parse_file(&rel, &krate, &module, &src));
        }
    }
    let mut graph_summary = None;
    let mut graph_errors = Vec::new();
    if let Some(gcfg) = graph_cfg {
        let ws = resolve::Workspace::build(parsed);
        findings.extend(reach::check_graph(&ws, cfg, gcfg));
        if ws.stats.unresolved > gcfg.max_unresolved {
            graph_errors.push(format!(
                "{} unresolved call site(s) exceed the committed budget of {} — \
                 improve resolution (or, with a written reason, raise the budget)",
                ws.stats.unresolved, gcfg.max_unresolved
            ));
        }
        graph_summary = Some(GraphSummary {
            stats: ws.stats,
            unresolved_by_file: ws.unresolved_by_file,
        });
    }
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    let (entries, mut allow_errors) = allowlist::parse(allow_text);
    let (kept, suppressed, apply_errors) = allowlist::apply(findings, &entries);
    allow_errors.extend(apply_errors);
    Ok(LintReport {
        findings: kept,
        suppressed,
        allow_errors,
        files_scanned: files.len(),
        graph: graph_summary,
        graph_errors,
    })
}

/// Serializes findings into the committed-baseline format: a sorted list
/// of (rule, file, line, col) keys, byte-stable across runs.
pub fn write_baseline(findings: &[Finding]) -> String {
    use serde_json::Value;
    let mut keys: Vec<&Finding> = findings.iter().collect();
    keys.sort_by(|a, b| {
        (a.rule, a.file.as_str(), a.line, a.col).cmp(&(b.rule, b.file.as_str(), b.line, b.col))
    });
    let items: Vec<Value> = keys
        .iter()
        .map(|f| {
            Value::Object(vec![
                ("rule".to_string(), Value::String(f.rule.to_string())),
                ("file".to_string(), Value::String(f.file.clone())),
                ("line".to_string(), Value::Number(f.line as f64)),
                ("col".to_string(), Value::Number(f.col as f64)),
            ])
        })
        .collect();
    let root = Value::Object(vec![("findings".to_string(), Value::Array(items))]);
    let mut out = serde_json::to_string_pretty(&root).unwrap_or_else(|_| "{}".to_string());
    out.push('\n');
    out
}

/// Parses a committed baseline into suppression keys.
pub fn parse_baseline(text: &str) -> Result<BTreeSet<(String, String, u32, u32)>, String> {
    let v = serde_json::from_str(text).map_err(|e| format!("baseline: {e}"))?;
    let Some(items) = v.get("findings").and_then(|f| f.as_array()) else {
        return Err("baseline: missing `findings` array".to_string());
    };
    let mut keys = BTreeSet::new();
    for (i, item) in items.iter().enumerate() {
        let rule = item.get("rule").and_then(|x| x.as_str());
        let file = item.get("file").and_then(|x| x.as_str());
        let line = item.get("line").and_then(|x| x.as_u64());
        let col = item.get("col").and_then(|x| x.as_u64());
        match (rule, file, line, col) {
            (Some(r), Some(f), Some(l), Some(c)) => {
                keys.insert((r.to_string(), f.to_string(), l as u32, c as u32));
            }
            _ => return Err(format!("baseline: entry {i} missing rule/file/line/col")),
        }
    }
    Ok(keys)
}

/// Moves findings present in the baseline out of the failing set (into
/// `suppressed`), so only *new* findings fail the run. Returns how many
/// were baseline-suppressed.
pub fn apply_baseline(
    report: &mut LintReport,
    keys: &BTreeSet<(String, String, u32, u32)>,
) -> usize {
    let findings = std::mem::take(&mut report.findings);
    let mut kept = Vec::new();
    let mut n = 0;
    for f in findings {
        if keys.contains(&(f.rule.to_string(), f.file.clone(), f.line, f.col)) {
            n += 1;
            report.suppressed.push(f);
        } else {
            kept.push(f);
        }
    }
    report.findings = kept;
    n
}

/// Convenience: [`run_lint`] reading the allowlist from `allow_path` when
/// the file exists (a missing allowlist means "allow nothing").
pub fn run_lint_with_allow_file(
    cfg: &LintConfig,
    allow_path: &Path,
) -> std::io::Result<LintReport> {
    run_lint_with_allow_file_ex(cfg, None, allow_path)
}

/// [`run_lint_with_allow_file`] with an optional graph pass.
pub fn run_lint_with_allow_file_ex(
    cfg: &LintConfig,
    graph_cfg: Option<&GraphConfig>,
    allow_path: &Path,
) -> std::io::Result<LintReport> {
    let allow_text = match std::fs::read_to_string(allow_path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    run_lint_ex(cfg, graph_cfg, &allow_text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_default_scopes_are_relative_and_slashed() {
        let cfg = LintConfig::workspace_default(".");
        for p in cfg
            .determinism_paths
            .iter()
            .chain(&cfg.request_paths)
            .chain(&cfg.clock_files)
        {
            assert!(!p.starts_with('/'), "absolute scope {p}");
            assert!(!p.contains('\\'), "backslash scope {p}");
        }
    }

    #[test]
    fn report_render_lists_counts() {
        let r = LintReport {
            findings: vec![],
            suppressed: vec![],
            allow_errors: vec![],
            files_scanned: 3,
            graph: None,
            graph_errors: vec![],
        };
        assert!(r.ok());
        assert!(r.render().contains("3 file(s) scanned"));
    }
}

//! The interprocedural rules over the workspace call graph.
//!
//! | id       | name                   | roots                               |
//! |----------|------------------------|-------------------------------------|
//! | NW-G001  | determinism-taint      | planner / predictor / sweep / fleet |
//! | NW-G002  | lock-order-cycle       | every function (no roots)           |
//! | NW-G003  | panic-reachability     | serve request loop, fleet coordinator |
//!
//! Every diagnostic carries the full call chain from the root to the
//! offending site ([`Finding::chain`]), so a taint hidden two helpers deep
//! prints the exact path a reviewer must audit. The per-file rules stay
//! authoritative inside their scopes: NW-G001 skips files already under
//! the determinism scope (NW-D001..D006 deny the same constructs there)
//! and NW-G003 skips files under the request-path scope (NW-S001), so the
//! graph rules are purely additive and never double-report a span.
//!
//! Known resolution limits (documented in DESIGN.md): trait-object and
//! closure calls don't resolve (counted as unresolved, reported in the
//! summary); lock identities are field names, so two sharded locks behind
//! one field alias to one identity — self-edges in the lock-order graph
//! are therefore skipped; only `let`-bound lock guards extend ordering to
//! the rest of their block.

use crate::graph::LockSite;
use crate::resolve::Workspace;
use crate::rules::{in_scope, rule_desc, ChainStep, Finding};
use crate::{GraphConfig, LintConfig};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Runs NW-G001/G002/G003 over a resolved workspace graph.
pub fn check_graph(ws: &Workspace, cfg: &LintConfig, gcfg: &GraphConfig) -> Vec<Finding> {
    let mut out = Vec::new();
    taint_rule(ws, cfg, gcfg, &mut out);
    lock_order_rule(ws, &mut out);
    panic_rule(ws, cfg, gcfg, &mut out);
    out.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    out
}

/// Root fn indices for a list of qname suffixes, sorted by qname so BFS
/// order — and with it every chain — is deterministic.
fn roots_of(ws: &Workspace, suffixes: &[String]) -> Vec<usize> {
    let mut roots: Vec<usize> = suffixes.iter().flat_map(|s| ws.find_by_suffix(s)).collect();
    roots.sort_by(|&a, &b| ws.fns[a].qname.cmp(&ws.fns[b].qname).then(a.cmp(&b)));
    roots.dedup();
    roots
}

/// Multi-source BFS. Returns per-fn: visited flag and the parent pointer
/// (caller idx, call-site line, call-site col) used for chain printing.
/// Roots have no parent.
#[allow(clippy::type_complexity)]
fn reach(ws: &Workspace, roots: &[usize]) -> (Vec<bool>, Vec<Option<(usize, u32, u32)>>) {
    let mut vis = vec![false; ws.fns.len()];
    let mut par: Vec<Option<(usize, u32, u32)>> = vec![None; ws.fns.len()];
    let mut q = VecDeque::new();
    for &r in roots {
        if !vis[r] {
            vis[r] = true;
            q.push_back(r);
        }
    }
    while let Some(n) = q.pop_front() {
        for e in &ws.fns[n].edges {
            if !vis[e.callee] {
                vis[e.callee] = true;
                par[e.callee] = Some((n, e.line, e.col));
                q.push_back(e.callee);
            }
        }
    }
    (vis, par)
}

/// Reconstructs the root→`idx` call chain. Each step names a function and
/// the span of its call to the next function; the caller appends the final
/// step pointing at the offending construct.
fn chain_to(ws: &Workspace, par: &[Option<(usize, u32, u32)>], idx: usize) -> Vec<ChainStep> {
    let mut rev: Vec<ChainStep> = Vec::new();
    let mut cur = idx;
    while let Some((caller, line, col)) = par[cur] {
        rev.push(ChainStep {
            func: ws.fns[caller].qname.clone(),
            file: ws.file_of(caller).to_string(),
            line,
            col,
        });
        cur = caller;
    }
    rev.reverse();
    rev
}

/// The root a chain starts from (the fn itself when it is a root).
fn chain_root<'a>(ws: &'a Workspace, chain: &'a [ChainStep], idx: usize) -> &'a str {
    chain
        .first()
        .map(|s| s.func.as_str())
        .unwrap_or(&ws.fns[idx].qname)
}

// ---------------------------------------------------------------------------
// NW-G001 — determinism taint
// ---------------------------------------------------------------------------

fn taint_rule(ws: &Workspace, cfg: &LintConfig, gcfg: &GraphConfig, out: &mut Vec<Finding>) {
    let roots = roots_of(ws, &gcfg.taint_roots);
    if roots.is_empty() {
        return;
    }
    let (vis, par) = reach(ws, &roots);
    let mut seen: BTreeSet<(String, u32, u32)> = BTreeSet::new();
    for (idx, &visited) in vis.iter().enumerate() {
        if !visited {
            continue;
        }
        let file = ws.file_of(idx).to_string();
        // The per-file NW-D rules already deny every taint inside the
        // determinism scope; the graph rule covers what they can't see.
        if in_scope(&file, &cfg.determinism_paths) {
            continue;
        }
        let d = ws.decl(idx);
        for t in &d.taints {
            // The clock shim is the one legitimate holder of raw time.
            if t.is_time && in_scope(&file, &cfg.clock_files) {
                continue;
            }
            if !seen.insert((file.clone(), t.line, t.col)) {
                continue;
            }
            let mut chain = chain_to(ws, &par, idx);
            let root = chain_root(ws, &chain, idx).to_string();
            chain.push(ChainStep {
                func: ws.fns[idx].qname.clone(),
                file: file.clone(),
                line: t.line,
                col: t.col,
            });
            out.push(Finding {
                rule: "NW-G001",
                desc: rule_desc("NW-G001"),
                file: file.clone(),
                line: t.line,
                col: t.col,
                message: format!(
                    "{} in {} is reachable from planning root {}: plan bytes \
                     must be a pure function of the scenario, and this call \
                     path taints them with {}",
                    t.api,
                    ws.fns[idx].qname,
                    root,
                    if t.is_time {
                        "wall-clock time"
                    } else {
                        "nondeterminism"
                    },
                ),
                chain,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// NW-G002 — lock-order cycles
// ---------------------------------------------------------------------------

/// Where a lock-order edge was established: the span of the second
/// acquisition (or of the call that transitively acquires it).
#[derive(Debug, Clone)]
struct EdgeProv {
    fn_q: String,
    file: String,
    line: u32,
    col: u32,
    via: Option<String>,
}

/// Lock identity: the field name, qualified by the impl type for
/// `self.field` locks so `Cache::shards` and `Queue::shards` stay distinct.
fn lock_id(ws: &Workspace, idx: usize, site: &LockSite) -> String {
    if site.self_qualified {
        if let Some(ty) = &ws.decl(idx).type_ctx {
            return format!("{}::{}", ty, site.name);
        }
    }
    site.name.clone()
}

fn lock_order_rule(ws: &Workspace, out: &mut Vec<Finding>) {
    // Transitive lock closure per fn: every lock identity acquired by the
    // fn or anything it calls. Fixpoint — sets only grow.
    let mut tl: Vec<BTreeSet<String>> = (0..ws.fns.len())
        .map(|i| ws.decl(i).locks.iter().map(|l| lock_id(ws, i, l)).collect())
        .collect();
    loop {
        let mut changed = false;
        for i in 0..ws.fns.len() {
            for e in ws.fns[i].edges.clone() {
                let callee_locks: Vec<String> = tl[e.callee].iter().cloned().collect();
                for l in callee_locks {
                    if tl[i].insert(l) {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Order edges: a held (`let`-bound) guard orders before every lock
    // acquired later in its block, directly or through a call.
    let mut adj: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut prov: BTreeMap<(String, String), EdgeProv> = BTreeMap::new();
    let mut record = |a: String, b: String, p: EdgeProv| {
        if a == b {
            // One identity can cover several sharded mutexes behind the
            // same field; a self-edge would flag every ordered shard walk.
            return;
        }
        adj.entry(a.clone()).or_default().insert(b.clone());
        prov.entry((a, b)).or_insert(p);
    };
    for i in 0..ws.fns.len() {
        let d = ws.decl(i);
        let file = ws.file_of(i).to_string();
        let fn_q = ws.fns[i].qname.clone();
        for held in d.locks.iter().filter(|l| l.held) {
            let a = lock_id(ws, i, held);
            for later in d
                .locks
                .iter()
                .filter(|m| m.tok > held.tok && m.tok < held.block_end)
            {
                record(
                    a.clone(),
                    lock_id(ws, i, later),
                    EdgeProv {
                        fn_q: fn_q.clone(),
                        file: file.clone(),
                        line: later.line,
                        col: later.col,
                        via: None,
                    },
                );
            }
            for e in ws.fns[i]
                .edges
                .iter()
                .filter(|e| e.tok > held.tok && e.tok < held.block_end)
            {
                for b in tl[e.callee].iter() {
                    record(
                        a.clone(),
                        b.clone(),
                        EdgeProv {
                            fn_q: fn_q.clone(),
                            file: file.clone(),
                            line: e.line,
                            col: e.col,
                            via: Some(ws.fns[e.callee].qname.clone()),
                        },
                    );
                }
            }
        }
    }

    // Cycle detection: for each node in sorted order, BFS for the shortest
    // path back to itself; one finding per discovered cycle, every node on
    // it marked covered so overlapping rotations don't repeat.
    let mut covered: BTreeSet<String> = BTreeSet::new();
    let nodes: Vec<String> = adj.keys().cloned().collect();
    for n in nodes {
        if covered.contains(&n) {
            continue;
        }
        let Some(cycle) = shortest_cycle(&adj, &n) else {
            continue;
        };
        for x in &cycle {
            covered.insert(x.clone());
        }
        // cycle = [n, a, b, …]; edges close back to n.
        let mut chain = Vec::new();
        let mut label = Vec::new();
        for k in 0..cycle.len() {
            let a = &cycle[k];
            let b = &cycle[(k + 1) % cycle.len()];
            let p = &prov[&(a.clone(), b.clone())];
            let via = p
                .via
                .as_ref()
                .map(|v| format!(" via {v}"))
                .unwrap_or_default();
            chain.push(ChainStep {
                func: format!("{a} -> {b} in {}{via}", p.fn_q),
                file: p.file.clone(),
                line: p.line,
                col: p.col,
            });
            label.push(a.clone());
        }
        label.push(n.clone());
        let anchor = &prov[&(cycle[0].clone(), cycle[1 % cycle.len()].clone())];
        out.push(Finding {
            rule: "NW-G002",
            desc: rule_desc("NW-G002"),
            file: anchor.file.clone(),
            line: anchor.line,
            col: anchor.col,
            message: format!(
                "lock-order cycle {}: two threads taking these locks in \
                 opposite orders deadlock; pick one global order",
                label.join(" -> ")
            ),
            chain,
        });
    }
}

/// Shortest cycle through `start` (BFS over successors), as the node list
/// `[start, …]` without repeating the start at the end.
fn shortest_cycle(adj: &BTreeMap<String, BTreeSet<String>>, start: &str) -> Option<Vec<String>> {
    let mut par: BTreeMap<String, String> = BTreeMap::new();
    let mut q = VecDeque::new();
    q.push_back(start.to_string());
    while let Some(n) = q.pop_front() {
        for m in adj.get(&n).into_iter().flatten() {
            if m == start {
                // Reconstruct start → … → n by walking parents; the BFS
                // root `start` has no parent entry, so the walk ends there.
                let mut rev = vec![n.clone()];
                let mut cur = n.clone();
                while let Some(p) = par.get(&cur) {
                    rev.push(p.clone());
                    cur = p.clone();
                }
                if cur != start {
                    rev.push(start.to_string());
                }
                rev.reverse();
                return Some(rev);
            }
            if !par.contains_key(m) && m != start {
                par.insert(m.clone(), n.clone());
                q.push_back(m.clone());
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// NW-G003 — panic reachability
// ---------------------------------------------------------------------------

fn panic_rule(ws: &Workspace, cfg: &LintConfig, gcfg: &GraphConfig, out: &mut Vec<Finding>) {
    let roots = roots_of(ws, &gcfg.panic_roots);
    if roots.is_empty() {
        return;
    }
    let (vis, par) = reach(ws, &roots);
    let mut seen: BTreeSet<(String, u32, u32)> = BTreeSet::new();
    for (idx, &visited) in vis.iter().enumerate() {
        if !visited {
            continue;
        }
        let file = ws.file_of(idx).to_string();
        // NW-S001 already denies panics per-file across the request-path
        // scope; the graph rule extends the guarantee to helpers outside
        // it (core, miniwrf, fleet) that a request can still reach.
        if in_scope(&file, &cfg.request_paths) {
            continue;
        }
        let d = ws.decl(idx);
        let mut sites: Vec<(String, u32, u32)> = d
            .panics
            .iter()
            .map(|p| (p.what.clone(), p.line, p.col))
            .collect();
        if in_scope(&file, &gcfg.index_modules) {
            sites.extend(
                d.indexes
                    .iter()
                    .map(|x| ("slice/array index".to_string(), x.line, x.col)),
            );
        }
        sites.sort_by_key(|s| (s.1, s.2));
        for (what, line, col) in sites {
            if !seen.insert((file.clone(), line, col)) {
                continue;
            }
            let mut chain = chain_to(ws, &par, idx);
            let root = chain_root(ws, &chain, idx).to_string();
            chain.push(ChainStep {
                func: ws.fns[idx].qname.clone(),
                file: file.clone(),
                line,
                col,
            });
            out.push(Finding {
                rule: "NW-G003",
                desc: rule_desc("NW-G003"),
                file: file.clone(),
                line,
                col,
                message: format!(
                    "{what} in {} is reachable from availability root {}: a \
                     panic on this path kills a worker or wedges the \
                     coordinator; return a typed error",
                    ws.fns[idx].qname, root
                ),
                chain,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::parse_file;

    fn ws(files: &[(&str, &str, &[&str], &str)]) -> Workspace {
        let parsed = files
            .iter()
            .map(|(path, krate, module, src)| {
                let m: Vec<String> = module.iter().map(|s| s.to_string()).collect();
                parse_file(path, krate, &m, src)
            })
            .collect();
        Workspace::build(parsed)
    }

    fn gcfg() -> GraphConfig {
        GraphConfig {
            taint_roots: vec!["entry".to_string()],
            panic_roots: vec!["handle".to_string()],
            index_modules: vec![],
            max_unresolved: 0,
        }
    }

    fn lcfg() -> LintConfig {
        let mut c = LintConfig::fixtures(".");
        // Graph-rule tests want the per-file scopes out of the way.
        c.determinism_paths = vec![];
        c.request_paths = vec![];
        c
    }

    #[test]
    fn taint_two_calls_deep_prints_the_chain() {
        let w = ws(&[(
            "crates/app/src/lib.rs",
            "app",
            &[],
            "fn entry() {\n    helper();\n}\nfn helper() {\n    deep();\n}\nfn deep() {\n    let m: HashMap<u32, u32> = make();\n}",
        )]);
        let f = check_graph(&w, &lcfg(), &gcfg());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "NW-G001");
        assert_eq!((f[0].line, f[0].col), (8, 12));
        let funcs: Vec<&str> = f[0].chain.iter().map(|s| s.func.as_str()).collect();
        assert_eq!(funcs, vec!["app::entry", "app::helper", "app::deep"]);
        assert_eq!((f[0].chain[0].line, f[0].chain[0].col), (2, 5));
        assert_eq!((f[0].chain[1].line, f[0].chain[1].col), (5, 5));
    }

    #[test]
    fn unreachable_taint_is_silent() {
        let w = ws(&[(
            "crates/app/src/lib.rs",
            "app",
            &[],
            "fn entry() {}\nfn island() { let m: HashMap<u32,u32> = make(); }",
        )]);
        assert!(check_graph(&w, &lcfg(), &gcfg()).is_empty());
    }

    #[test]
    fn ab_ba_lock_cycle_detected() {
        let w = ws(&[(
            "crates/app/src/lib.rs",
            "app",
            &[],
            "fn ab(a: &M, b: &M) {\n    let g = lock_unpoisoned(&a_lock);\n    let h = lock_unpoisoned(&b_lock);\n}\nfn ba(a: &M, b: &M) {\n    let g = lock_unpoisoned(&b_lock);\n    let h = lock_unpoisoned(&a_lock);\n}",
        )]);
        let f = check_graph(&w, &lcfg(), &gcfg());
        let cycles: Vec<&Finding> = f.iter().filter(|f| f.rule == "NW-G002").collect();
        assert_eq!(cycles.len(), 1, "{f:?}");
        assert!(cycles[0].message.contains("a_lock -> b_lock -> a_lock"));
        assert_eq!(cycles[0].chain.len(), 2);
    }

    #[test]
    fn transitive_lock_cycle_through_a_call() {
        let w = ws(&[(
            "crates/app/src/lib.rs",
            "app",
            &[],
            "fn ab() {\n    let g = lock_unpoisoned(&a_lock);\n    takes_b();\n}\nfn takes_b() {\n    let g = lock_unpoisoned(&b_lock);\n    takes_a_last();\n}\nfn takes_a_last() {\n    let g = lock_unpoisoned(&b_lock);\n    let h = lock_unpoisoned(&a_lock);\n}",
        )]);
        let f = check_graph(&w, &lcfg(), &gcfg());
        let cycles: Vec<&Finding> = f.iter().filter(|f| f.rule == "NW-G002").collect();
        assert_eq!(cycles.len(), 1, "{f:?}");
        // The a→b edge is established transitively via the call.
        assert!(cycles[0].chain.iter().any(|s| s.func.contains("via")));
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        let w = ws(&[(
            "crates/app/src/lib.rs",
            "app",
            &[],
            "fn one() {\n    let g = lock_unpoisoned(&a_lock);\n    let h = lock_unpoisoned(&b_lock);\n}\nfn two() {\n    let g = lock_unpoisoned(&a_lock);\n    let h = lock_unpoisoned(&b_lock);\n}",
        )]);
        assert!(check_graph(&w, &lcfg(), &gcfg())
            .iter()
            .all(|f| f.rule != "NW-G002"));
    }

    #[test]
    fn unwrap_behind_helper_reachable_from_handle() {
        let w = ws(&[(
            "crates/app/src/lib.rs",
            "app",
            &[],
            "fn handle(req: R) {\n    decode(req);\n}\nfn decode(req: R) -> V {\n    req.field.unwrap()\n}",
        )]);
        let f = check_graph(&w, &lcfg(), &gcfg());
        let panics: Vec<&Finding> = f.iter().filter(|f| f.rule == "NW-G003").collect();
        assert_eq!(panics.len(), 1, "{f:?}");
        assert_eq!((panics[0].line, panics[0].col), (5, 15));
        let funcs: Vec<&str> = panics[0].chain.iter().map(|s| s.func.as_str()).collect();
        assert_eq!(funcs, vec!["app::handle", "app::decode"]);
    }

    #[test]
    fn g003_skips_files_already_under_request_path_scope() {
        let w = ws(&[(
            "crates/app/src/lib.rs",
            "app",
            &[],
            "fn handle(req: R) { decode(req); }\nfn decode(req: R) -> V { req.field.unwrap() }",
        )]);
        let mut lc = lcfg();
        lc.request_paths = vec!["crates/app/src/".to_string()];
        assert!(check_graph(&w, &lc, &gcfg())
            .iter()
            .all(|f| f.rule != "NW-G003"));
    }

    #[test]
    fn indexing_counts_only_in_flagged_modules() {
        let w = ws(&[(
            "crates/app/src/lib.rs",
            "app",
            &[],
            "fn handle(v: &[u32]) -> u32 { pick(v) }\nfn pick(v: &[u32]) -> u32 { v[0] }",
        )]);
        let mut gc = gcfg();
        assert!(check_graph(&w, &lcfg(), &gc).is_empty());
        gc.index_modules = vec!["crates/app/src/".to_string()];
        let f = check_graph(&w, &lcfg(), &gc);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("slice/array index"));
    }
}

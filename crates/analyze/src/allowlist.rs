//! The lint allowlist: the only way to ship a rule violation.
//!
//! Plain-text file, one entry per line:
//!
//! ```text
//! # comment
//! NW-S001 crates/netsim/src/sim.rs:1181 -- schedule compiler invariant; see DESIGN.md
//! NW-D001 crates/foo/src/bar.rs:12:9 -- keyed lookup only, never iterated
//! ```
//!
//! Grammar: `RULE PATH:LINE[:COL] -- REASON`. The reason is mandatory — an
//! allowlist entry without a written justification is itself an error.
//!
//! Semantics are deliberately strict: every entry must suppress **exactly
//! one** diagnostic. An entry that matches nothing is stale (the violation
//! was fixed — delete the entry); an entry that matches several diagnostics
//! is ambiguous (add the column). Both fail the lint run, so the allowlist
//! can only ever shrink-wrap the real violation set.

use crate::rules::Finding;
use serde::Serialize;

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct AllowEntry {
    /// Rule id the entry suppresses.
    pub rule: String,
    /// Path relative to the lint root.
    pub file: String,
    /// 1-based line of the suppressed diagnostic.
    pub line: u32,
    /// Optional 1-based column (required when a line holds several
    /// diagnostics of the same rule).
    pub col: Option<u32>,
    /// The written justification.
    pub reason: String,
    /// Line of the entry in the allowlist file (for error messages).
    pub src_line: u32,
}

impl AllowEntry {
    fn matches(&self, f: &Finding) -> bool {
        self.rule == f.rule
            && self.file == f.file
            && self.line == f.line
            && self.col.map(|c| c == f.col).unwrap_or(true)
    }
}

/// Parses allowlist text. Returns entries and per-line parse errors.
pub fn parse(text: &str) -> (Vec<AllowEntry>, Vec<String>) {
    let mut entries = Vec::new();
    let mut errors = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let src_line = (i + 1) as u32;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((head, reason)) = line.split_once("--") else {
            errors.push(format!(
                "allowlist line {src_line}: missing `-- reason` justification"
            ));
            continue;
        };
        let reason = reason.trim();
        if reason.is_empty() {
            errors.push(format!("allowlist line {src_line}: empty justification"));
            continue;
        }
        let mut parts = head.split_whitespace();
        let (Some(rule), Some(loc), None) = (parts.next(), parts.next(), parts.next()) else {
            errors.push(format!(
                "allowlist line {src_line}: expected `RULE PATH:LINE[:COL] -- reason`"
            ));
            continue;
        };
        let mut segs = loc.rsplitn(3, ':');
        // rsplitn yields from the right: try COL, LINE, PATH then re-join.
        let (file, line_no, col) = match (segs.next(), segs.next(), segs.next()) {
            (Some(a), Some(b), Some(c)) => {
                // Either PATH:LINE:COL or a path containing ':' (not on
                // this repo's layout) — try numeric COL+LINE first.
                match (b.parse::<u32>(), a.parse::<u32>()) {
                    (Ok(l), Ok(co)) => (c.to_string(), l, Some(co)),
                    _ => match a.parse::<u32>() {
                        Ok(l) => (format!("{c}:{b}"), l, None),
                        Err(_) => {
                            errors.push(format!("allowlist line {src_line}: bad location `{loc}`"));
                            continue;
                        }
                    },
                }
            }
            (Some(a), Some(b), None) => match a.parse::<u32>() {
                Ok(l) => (b.to_string(), l, None),
                Err(_) => {
                    errors.push(format!("allowlist line {src_line}: bad line in `{loc}`"));
                    continue;
                }
            },
            _ => {
                errors.push(format!(
                    "allowlist line {src_line}: location must be PATH:LINE[:COL]"
                ));
                continue;
            }
        };
        entries.push(AllowEntry {
            rule: rule.to_string(),
            file: file.replace('\\', "/"),
            line: line_no,
            col,
            reason: reason.to_string(),
            src_line,
        });
    }
    (entries, errors)
}

/// Applies the allowlist to `findings`: returns the surviving findings, the
/// suppressed ones, and entry errors (stale / ambiguous entries).
pub fn apply(
    findings: Vec<Finding>,
    entries: &[AllowEntry],
) -> (Vec<Finding>, Vec<Finding>, Vec<String>) {
    let mut errors = Vec::new();
    let mut suppressed_idx = vec![false; findings.len()];
    for e in entries {
        let hits: Vec<usize> = findings
            .iter()
            .enumerate()
            .filter(|(_, f)| e.matches(f))
            .map(|(i, _)| i)
            .collect();
        match hits.len() {
            0 => errors.push(format!(
                "stale allowlist entry (line {}): {} {}:{} matches no diagnostic — \
                 the violation was fixed, delete the entry",
                e.src_line, e.rule, e.file, e.line
            )),
            1 => suppressed_idx[hits[0]] = true,
            n => errors.push(format!(
                "ambiguous allowlist entry (line {}): {} {}:{} matches {n} \
                 diagnostics — add the column (PATH:LINE:COL)",
                e.src_line, e.rule, e.file, e.line
            )),
        }
    }
    let mut kept = Vec::new();
    let mut suppressed = Vec::new();
    for (i, f) in findings.into_iter().enumerate() {
        if suppressed_idx[i] {
            suppressed.push(f);
        } else {
            kept.push(f);
        }
    }
    (kept, suppressed, errors)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, line: u32, col: u32) -> Finding {
        Finding::at(rule, file, line, col, String::new())
    }

    #[test]
    fn parses_entries_and_rejects_reasonless_lines() {
        let (entries, errors) = parse(
            "# header\n\
             NW-S001 crates/a/src/b.rs:10 -- because\n\
             NW-D001 crates/a/src/b.rs:4:9 -- keyed lookup only\n\
             NW-D001 crates/a/src/b.rs:4\n",
        );
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].line, 10);
        assert_eq!(entries[1].col, Some(9));
        assert_eq!(errors.len(), 1);
        assert!(errors[0].contains("line 4"));
    }

    #[test]
    fn entry_suppresses_exactly_one() {
        let (entries, errs) = parse("NW-S001 f.rs:3 -- ok\n");
        assert!(errs.is_empty());
        let findings = vec![
            finding("NW-S001", "f.rs", 3, 5),
            finding("NW-S001", "f.rs", 8, 1),
        ];
        let (kept, suppressed, errors) = apply(findings, &entries);
        assert_eq!(kept.len(), 1);
        assert_eq!(suppressed.len(), 1);
        assert_eq!(suppressed[0].line, 3);
        assert!(errors.is_empty());
    }

    #[test]
    fn stale_entry_is_an_error() {
        let (entries, _) = parse("NW-S001 f.rs:99 -- gone\n");
        let (kept, suppressed, errors) = apply(vec![finding("NW-S001", "f.rs", 3, 5)], &entries);
        assert_eq!(kept.len(), 1);
        assert!(suppressed.is_empty());
        assert_eq!(errors.len(), 1);
        assert!(errors[0].contains("stale"));
    }

    #[test]
    fn ambiguous_entry_needs_a_column() {
        let (entries, _) = parse("NW-S001 f.rs:3 -- two on one line\n");
        let findings = vec![
            finding("NW-S001", "f.rs", 3, 5),
            finding("NW-S001", "f.rs", 3, 20),
        ];
        let (_, _, errors) = apply(findings.clone(), &entries);
        assert_eq!(errors.len(), 1);
        assert!(errors[0].contains("ambiguous"));
        // With the column it suppresses exactly one.
        let (entries, _) = parse("NW-S001 f.rs:3:20 -- the second one\n");
        let (kept, suppressed, errors) = apply(findings, &entries);
        assert!(errors.is_empty());
        assert_eq!((kept.len(), suppressed.len()), (1, 1));
        assert_eq!(suppressed[0].col, 20);
    }
}

//! Per-file item and call-site extraction — the front half of the
//! workspace call-graph analyzer.
//!
//! The build environment vendors no `syn`, so like [`crate::rules`] this
//! works on the token stream of [`crate::lexer`]. A lightweight item
//! parser walks one file's tokens tracking module/impl/fn nesting and
//! records, per function:
//!
//! * **call sites** — bare calls (`helper(…)`), path calls
//!   (`crate::x::f(…)`, `Planner::plan(…)`), and method calls
//!   (`.plan(…)`), each with its source span;
//! * **lock acquisitions** through the workspace's poisoning-policy
//!   helper (`lock_unpoisoned`), with the lock's field identity, whether
//!   the guard is bound (`let g = …` — held past the statement) and the
//!   enclosing block, for lock-order analysis;
//! * **panic sites** (`.unwrap()`, `.expect()`, `panic!` family) and
//!   **index sites** (`xs[i]`) for panic-reachability;
//! * **determinism-taint sites** — the forbidden APIs of the NW-D rules
//!   (`HashMap`/`HashSet`, raw `Instant::now`/`SystemTime::now`,
//!   `thread_rng`/`from_entropy`, `thread::spawn`, ambient paths).
//!
//! `#[cfg(test)] mod` spans are skipped entirely: test helpers neither
//! define graph nodes nor pollute method-name resolution.
//!
//! The back half — resolving call sites into a workspace graph — lives in
//! [`crate::resolve`]; the interprocedural rules in [`crate::reach`].

use crate::lexer::{lex, test_module_spans, Tok, TokKind};

/// One `use` import binding a local name to a full path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseImport {
    /// The name the import binds in this file (`Planner`, or the alias
    /// after `as`).
    pub name: String,
    /// The full path segments the name expands to.
    pub path: Vec<String>,
}

/// How a call site is written at the call position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `a::b::f(…)` — multi-segment path call.
    Path,
    /// `.f(…)` — method-call syntax.
    Method,
    /// `f(…)` — single bare name.
    Bare,
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Path segments as written (one element for bare/method calls).
    pub segs: Vec<String>,
    /// Syntactic form of the call.
    pub kind: CallKind,
    /// True for `.m(…)` where the receiver is literally `self`.
    pub recv_self: bool,
    /// True when the path is a qualified tail (`<T as Trait>::f`) whose
    /// head the token parser cannot see.
    pub qualified_tail: bool,
    /// 1-based line of the called name.
    pub line: u32,
    /// 1-based byte column of the called name.
    pub col: u32,
    /// Token index of the called name (orders calls against lock sites).
    pub tok: usize,
}

/// One `lock_unpoisoned(…)` acquisition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockSite {
    /// The lock's field/variable identity: the last identifier of the
    /// argument expression outside any index brackets (`&self.shards[i]`
    /// → `shards`).
    pub name: String,
    /// True when the argument starts with `self.` — lets the resolver
    /// qualify the identity with the impl type.
    pub self_qualified: bool,
    /// True when the acquisition statement begins with `let` — the guard
    /// is bound and held to the end of the enclosing block, so later
    /// acquisitions order after this one.
    pub held: bool,
    /// 1-based line of the call.
    pub line: u32,
    /// 1-based byte column of the call.
    pub col: u32,
    /// Token index of the call (orders locks against other events).
    pub tok: usize,
    /// Token index of the `}` closing the enclosing block — the horizon
    /// a bound guard is (conservatively) held to.
    pub block_end: usize,
}

/// One panicking construct inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicSite {
    /// What panics: `unwrap`, `expect`, `panic!`, `unreachable!`, ….
    pub what: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
}

/// One slice/array index expression (`xs[i]`) — panics on out-of-bounds,
/// reported only in explicitly flagged modules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexSite {
    /// 1-based line of the `[`.
    pub line: u32,
    /// 1-based byte column of the `[`.
    pub col: u32,
}

/// One use of a determinism-forbidden API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintSite {
    /// The API, as the diagnostic names it (`HashMap`, `Instant::now`,
    /// `thread::spawn`, `env::temp_dir()`, …).
    pub api: &'static str,
    /// True for the time APIs the clock shim is allowed to call
    /// (`Instant::now`, `SystemTime::now`) — exempted in clock files.
    pub is_time: bool,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
}

/// One function (free or method) with everything the graph rules need.
#[derive(Debug, Clone)]
pub struct FnDecl {
    /// The function's name.
    pub name: String,
    /// Enclosing `impl`/`trait` type, when the fn is a method.
    pub type_ctx: Option<String>,
    /// Inline `mod` path inside the file (the file's own module path is
    /// added by the resolver).
    pub module: Vec<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based byte column of the `fn` keyword.
    pub col: u32,
    /// Call sites in the body, in source order.
    pub calls: Vec<CallSite>,
    /// Lock acquisitions in the body, in source order.
    pub locks: Vec<LockSite>,
    /// Panic sites in the body.
    pub panics: Vec<PanicSite>,
    /// Index expressions in the body.
    pub indexes: Vec<IndexSite>,
    /// Determinism-forbidden API uses in the signature or body.
    pub taints: Vec<TaintSite>,
}

/// Everything extracted from one file.
#[derive(Debug, Clone, Default)]
pub struct FileGraph {
    /// Path relative to the lint root, `/`-separated.
    pub rel_path: String,
    /// Owning crate's name (underscored).
    pub crate_name: String,
    /// Module path derived from the file's location under `src/`.
    pub base_module: Vec<String>,
    /// `use` imports (name → path).
    pub uses: Vec<UseImport>,
    /// `use …::*` glob imports (module paths).
    pub globs: Vec<Vec<String>>,
    /// Functions defined in the file (outside test modules).
    pub fns: Vec<FnDecl>,
    /// Type names defined here (`struct`/`enum`/`trait`).
    pub types: Vec<String>,
    /// Names callable as data constructors, not functions: tuple-struct
    /// names and tuple enum variants.
    pub ctors: Vec<String>,
}

/// Rust keywords that must never be mistaken for call or index receivers.
const KEYWORDS: [&str; 28] = [
    "if", "else", "while", "match", "for", "return", "loop", "let", "in", "as", "move", "ref",
    "mut", "break", "continue", "await", "fn", "pub", "use", "impl", "struct", "enum", "trait",
    "mod", "where", "unsafe", "async", "const",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Parses one file into its [`FileGraph`]. `rel_path`, `crate_name` and
/// `base_module` are supplied by the workspace walker.
pub fn parse_file(
    rel_path: &str,
    crate_name: &str,
    base_module: &[String],
    src: &str,
) -> FileGraph {
    let toks = lex(src);
    let test_spans = test_module_spans(&toks);
    let close_of = match_braces(&toks);

    let mut fg = FileGraph {
        rel_path: rel_path.to_string(),
        crate_name: crate_name.to_string(),
        base_module: base_module.to_vec(),
        ..FileGraph::default()
    };

    #[derive(Debug)]
    enum Scope {
        Mod(String),
        Impl(String),
        Fn(usize),
        Block,
    }
    let mut scopes: Vec<(Scope, usize)> = Vec::new(); // (kind, close token idx)
                                                      // Per-fn names bound to closures (`let f = |…|` / `let f = move |…|`):
                                                      // calls through them are local control flow, not call-graph edges.
    let mut closure_names: Vec<std::collections::HashSet<String>> = Vec::new();

    let mut i = 0usize;
    while i < toks.len() {
        // Skip whole #[cfg(test)] mod … { … } regions.
        if let Some(&(_, b)) = test_spans.iter().find(|&&(a, _)| a == i) {
            i = b;
            continue;
        }
        // Pop the scope whose closing brace we reached; the outer loop
        // re-checks bounds and any further scope closing at the next token.
        if scopes.last().map(|&(_, c)| c == i).unwrap_or(false) {
            scopes.pop();
            i += 1;
            continue;
        }
        let t = &toks[i];

        // Attributes: skip `#[…]` / `#![…]` without scanning their bodies.
        if t.is_punct("#") {
            let open = if toks.get(i + 1).map(|n| n.is_punct("[")).unwrap_or(false) {
                i + 1
            } else if toks.get(i + 1).map(|n| n.is_punct("!")).unwrap_or(false)
                && toks.get(i + 2).map(|n| n.is_punct("[")).unwrap_or(false)
            {
                i + 2
            } else {
                i += 1;
                continue;
            };
            i = skip_brackets(&toks, open, "[", "]");
            continue;
        }

        let in_fn = scopes.iter().rev().find_map(|(s, _)| match s {
            Scope::Fn(fx) => Some(*fx),
            _ => None,
        });

        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "use" if in_fn.is_none() => {
                    i = parse_use(&toks, i + 1, &mut fg);
                    continue;
                }
                "mod" => {
                    // `mod name {` opens an inline module; `mod name;` is a
                    // file module handled by the path-derived base module.
                    if let (Some(name), Some(brace)) = (toks.get(i + 1), toks.get(i + 2)) {
                        if name.kind == TokKind::Ident && brace.is_punct("{") {
                            scopes.push((Scope::Mod(name.text.clone()), close_of[i + 2]));
                            i += 3;
                            continue;
                        }
                    }
                    i += 1;
                    continue;
                }
                "impl" if in_fn.is_none() => {
                    if let Some((ty, brace)) = parse_impl_head(&toks, i + 1) {
                        scopes.push((Scope::Impl(ty), close_of[brace]));
                        i = brace + 1;
                        continue;
                    }
                    i += 1;
                    continue;
                }
                "trait" if in_fn.is_none() => {
                    if let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                        fg.types.push(name.text.clone());
                        if let Some(brace) = find_body_open(&toks, i + 2) {
                            scopes.push((Scope::Impl(name.text.clone()), close_of[brace]));
                            i = brace + 1;
                            continue;
                        }
                    }
                    i += 1;
                    continue;
                }
                "struct" if in_fn.is_none() => {
                    i = parse_struct(&toks, i, &close_of, &mut fg);
                    continue;
                }
                "enum" if in_fn.is_none() => {
                    i = parse_enum(&toks, i, &close_of, &mut fg);
                    continue;
                }
                "fn" => {
                    if let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                        let module: Vec<String> = scopes
                            .iter()
                            .filter_map(|(s, _)| match s {
                                Scope::Mod(m) => Some(m.clone()),
                                _ => None,
                            })
                            .collect();
                        let type_ctx = scopes.iter().rev().find_map(|(s, _)| match s {
                            Scope::Impl(ty) => Some(ty.clone()),
                            _ => None,
                        });
                        let mut decl = FnDecl {
                            name: name.text.clone(),
                            type_ctx,
                            module,
                            line: t.line,
                            col: t.col,
                            calls: Vec::new(),
                            locks: Vec::new(),
                            panics: Vec::new(),
                            indexes: Vec::new(),
                            taints: Vec::new(),
                        };
                        // Scan the signature (name → body `{` or `;`) for
                        // taint idents only — a HashMap parameter taints
                        // the fn as surely as a HashMap local.
                        let mut j = i + 2;
                        let mut body = None;
                        while j < toks.len() {
                            if toks[j].is_punct("{") {
                                body = Some(j);
                                break;
                            }
                            if toks[j].is_punct(";") {
                                break;
                            }
                            if let Some(site) = taint_at(&toks, j) {
                                decl.taints.push(site);
                            }
                            j += 1;
                        }
                        match body {
                            Some(b) => {
                                let fx = fg.fns.len();
                                fg.fns.push(decl);
                                closure_names.push(Default::default());
                                scopes.push((Scope::Fn(fx), close_of[b]));
                                i = b + 1;
                            }
                            None => {
                                // Trait method declaration without a body.
                                i = j + 1;
                            }
                        }
                        continue;
                    }
                    i += 1;
                    continue;
                }
                _ => {}
            }
        }

        // Inside a function body: record calls, locks, panics, indexes,
        // taints.
        if let Some(fx) = in_fn {
            if t.is_punct("{") {
                scopes.push((Scope::Block, close_of[i]));
                i += 1;
                continue;
            }
            if let Some(site) = taint_at(&toks, i) {
                fg.fns[fx].taints.push(site);
            }
            // Index expressions: `recv[` where recv is an expression tail.
            if t.is_punct("[") && i > 0 {
                let p = &toks[i - 1];
                let is_recv = (p.kind == TokKind::Ident && !is_keyword(&p.text))
                    || p.is_punct(")")
                    || p.is_punct("]");
                if is_recv {
                    fg.fns[fx].indexes.push(IndexSite {
                        line: t.line,
                        col: t.col,
                    });
                }
            }
            if t.kind == TokKind::Ident {
                // Closure bindings: `let [mut] name = [move] |…|`.
                if t.is_ident("let") {
                    let mut j = i + 1;
                    if toks.get(j).map(|n| n.is_ident("mut")).unwrap_or(false) {
                        j += 1;
                    }
                    if let Some(nm) = toks
                        .get(j)
                        .filter(|n| n.kind == TokKind::Ident && !is_keyword(&n.text))
                    {
                        let mut k = j + 1;
                        if toks.get(k).map(|n| n.is_punct("=")).unwrap_or(false) {
                            k += 1;
                            if toks.get(k).map(|n| n.is_ident("move")).unwrap_or(false) {
                                k += 1;
                            }
                            if toks.get(k).map(|n| n.is_punct("|")).unwrap_or(false) {
                                closure_names[fx].insert(nm.text.clone());
                            }
                        }
                    }
                }
                // Panic macros.
                if matches!(
                    t.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) && toks.get(i + 1).map(|n| n.is_punct("!")).unwrap_or(false)
                {
                    fg.fns[fx].panics.push(PanicSite {
                        what: format!("{}!", t.text),
                        line: t.line,
                        col: t.col,
                    });
                    i += 1;
                    continue;
                }
                // Calls: ident followed by `(` or turbofish `::<…>(`.
                if let Some(after) = call_paren(&toks, i) {
                    let is_macro = toks.get(i + 1).map(|n| n.is_punct("!")).unwrap_or(false);
                    if !is_macro && !is_keyword(&t.text) {
                        let (segs, head, qualified_tail) = walk_path_back(&toks, i);
                        let method = head > 0 && toks[head - 1].is_punct(".");
                        if method && matches!(t.text.as_str(), "unwrap" | "expect") {
                            fg.fns[fx].panics.push(PanicSite {
                                what: format!(".{}()", t.text),
                                line: t.line,
                                col: t.col,
                            });
                        } else if !method && segs.len() == 1 && closure_names[fx].contains(&t.text)
                        {
                            // A call through a local closure: not an edge.
                        } else {
                            let recv_self = method && head >= 2 && toks[head - 2].is_ident("self");
                            let kind = if method {
                                CallKind::Method
                            } else if segs.len() > 1 {
                                CallKind::Path
                            } else {
                                CallKind::Bare
                            };
                            // Method-syntax calls resolve on the last
                            // segment only.
                            let segs = if method { vec![t.text.clone()] } else { segs };
                            if t.text == "lock_unpoisoned" {
                                let lock =
                                    parse_lock_site(&toks, i, after, head, &scopes, &close_of);
                                fg.fns[fx].locks.push(lock);
                            }
                            fg.fns[fx].calls.push(CallSite {
                                segs,
                                kind,
                                recv_self,
                                qualified_tail,
                                line: t.line,
                                col: t.col,
                                tok: i,
                            });
                        }
                    }
                    let _ = after;
                }
            }
        }
        i += 1;
    }
    fg
}

/// Matches every `{` to its `}`: `close_of[open_idx]` is the close index
/// (or `usize::MAX` at EOF for unbalanced input).
fn match_braces(toks: &[Tok]) -> Vec<usize> {
    let mut close_of = vec![usize::MAX; toks.len()];
    let mut stack = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct("{") {
            stack.push(i);
        } else if t.is_punct("}") {
            if let Some(o) = stack.pop() {
                close_of[o] = i;
            }
        }
    }
    close_of
}

/// Skips a bracketed group starting at `open` (which holds `open_s`);
/// returns the index just past the matching `close_s`.
fn skip_brackets(toks: &[Tok], open: usize, open_s: &str, close_s: &str) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct(open_s) {
            depth += 1;
        } else if toks[i].is_punct(close_s) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    toks.len()
}

/// True when `toks[i]` (an ident) is directly followed by `(` — possibly
/// through a turbofish `::<…>`. Returns the index of the `(`.
fn call_paren(toks: &[Tok], i: usize) -> Option<usize> {
    let n = toks.get(i + 1)?;
    if n.is_punct("(") {
        return Some(i + 1);
    }
    // Turbofish: `name::<…>(`.
    if n.is_punct(":")
        && toks.get(i + 2).map(|t| t.is_punct(":")).unwrap_or(false)
        && toks.get(i + 3).map(|t| t.is_punct("<")).unwrap_or(false)
    {
        let mut depth = 0usize;
        let mut j = i + 3;
        while j < toks.len() {
            if toks[j].is_punct("<") {
                depth += 1;
            } else if toks[j].is_punct(">") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        if toks.get(j + 1).map(|t| t.is_punct("(")).unwrap_or(false) {
            return Some(j + 1);
        }
    }
    None
}

/// Collects the `::`-joined path ending at ident `i`. Returns the path
/// segments, the token index of the first segment, and whether the path
/// continues left into something the lexer cannot name (`<T as X>::f`).
fn walk_path_back(toks: &[Tok], i: usize) -> (Vec<String>, usize, bool) {
    let mut segs = vec![toks[i].text.clone()];
    let mut head = i;
    while head >= 3
        && toks[head - 1].is_punct(":")
        && toks[head - 2].is_punct(":")
        && toks[head - 3].kind == TokKind::Ident
    {
        head -= 3;
        segs.insert(0, toks[head].text.clone());
    }
    let qualified_tail = head >= 2 && toks[head - 1].is_punct(":") && toks[head - 2].is_punct(":");
    (segs, head, qualified_tail)
}

/// Parses the argument of a `lock_unpoisoned(…)` call into a [`LockSite`].
fn parse_lock_site(
    toks: &[Tok],
    name_idx: usize,
    paren: usize,
    head: usize,
    scopes: &[(impl std::fmt::Debug, usize)],
    _close_of: &[usize],
) -> LockSite {
    // Lock identity: last ident of the argument at bracket depth 0.
    let mut depth_sq = 0i32;
    let mut depth_par = 0i32;
    let mut name = String::new();
    let mut first_ident: Option<&str> = None;
    let mut j = paren;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct("(") {
            depth_par += 1;
        } else if t.is_punct(")") {
            depth_par -= 1;
            if depth_par == 0 {
                break;
            }
        } else if t.is_punct("[") {
            depth_sq += 1;
        } else if t.is_punct("]") {
            depth_sq -= 1;
        } else if t.kind == TokKind::Ident && depth_sq == 0 && depth_par == 1 {
            if first_ident.is_none() {
                first_ident = Some(&t.text);
            }
            name = t.text.clone();
        }
        j += 1;
    }
    let self_qualified = first_ident == Some("self");
    // Held guards: the acquisition statement begins with `let`.
    let mut k = head;
    let held = loop {
        if k == 0 {
            break false;
        }
        k -= 1;
        let t = &toks[k];
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            break toks.get(k + 1).map(|n| n.is_ident("let")).unwrap_or(false);
        }
    };
    let block_end = scopes.last().map(|&(_, c)| c).unwrap_or(usize::MAX);
    LockSite {
        name,
        self_qualified,
        held,
        line: toks[name_idx].line,
        col: toks[name_idx].col,
        tok: name_idx,
        block_end,
    }
}

/// Parses an `impl` head starting after the `impl` keyword: returns the
/// implemented type's name and the index of the body `{`.
fn parse_impl_head(toks: &[Tok], mut i: usize) -> Option<(String, usize)> {
    let mut angle = 0i32;
    let mut last_ident: Option<String> = None;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("<") {
            angle += 1;
        } else if t.is_punct(">") {
            angle -= 1;
        } else if t.is_punct("{") && angle <= 0 {
            return last_ident.map(|n| (n, i));
        } else if t.is_punct(";") {
            return None;
        } else if angle == 0 && t.kind == TokKind::Ident {
            match t.text.as_str() {
                // `impl Trait for Type` — the type is what methods hang off.
                "for" => last_ident = None,
                "where" => {} // keep the type found so far
                _ => {
                    if !matches!(t.text.as_str(), "dyn" | "mut" | "const") {
                        last_ident = Some(t.text.clone());
                    }
                }
            }
        }
        i += 1;
    }
    None
}

/// Finds the next `{` at angle depth 0 from `i` (trait bodies after
/// bounds/where clauses); `None` before any `;`.
fn find_body_open(toks: &[Tok], mut i: usize) -> Option<usize> {
    let mut angle = 0i32;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("<") {
            angle += 1;
        } else if t.is_punct(">") {
            angle -= 1;
        } else if t.is_punct("{") && angle <= 0 {
            return Some(i);
        } else if t.is_punct(";") {
            return None;
        }
        i += 1;
    }
    None
}

/// Parses `struct Name …`, recording the type (and tuple-struct ctor).
/// Returns the index past the item.
fn parse_struct(toks: &[Tok], i: usize, close_of: &[usize], fg: &mut FileGraph) -> usize {
    let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
        return i + 1;
    };
    fg.types.push(name.text.clone());
    // Skip generics, then classify by the next structural token.
    let mut j = i + 2;
    let mut angle = 0i32;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct("<") {
            angle += 1;
        } else if t.is_punct(">") {
            angle -= 1;
        } else if angle <= 0 {
            if t.is_punct("(") {
                fg.ctors.push(name.text.clone());
                return skip_to_semicolon(toks, j);
            }
            if t.is_punct("{") {
                return close_of[j].saturating_add(1);
            }
            if t.is_punct(";") {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Parses `enum Name { … }`, recording tuple-variant constructors.
/// Returns the index past the body.
fn parse_enum(toks: &[Tok], i: usize, close_of: &[usize], fg: &mut FileGraph) -> usize {
    let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
        return i + 1;
    };
    fg.types.push(name.text.clone());
    let Some(open) = find_body_open(toks, i + 2) else {
        return i + 2;
    };
    let close = close_of[open];
    // Variants sit at brace depth 1 inside the body; a variant name
    // followed by `(` is a tuple constructor (callable as data).
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() && j <= close {
        let t = &toks[j];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
        } else if depth == 1
            && t.kind == TokKind::Ident
            && toks.get(j + 1).map(|n| n.is_punct("(")).unwrap_or(false)
        {
            fg.ctors.push(t.text.clone());
        }
        j += 1;
    }
    close.saturating_add(1)
}

/// Skips to just past the next `;` at paren/bracket depth 0.
fn skip_to_semicolon(toks: &[Tok], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
        } else if t.is_punct(";") && depth <= 0 {
            return i + 1;
        }
        i += 1;
    }
    i
}

/// Parses a `use` tree starting after the `use` keyword; returns the
/// index past the terminating `;`.
fn parse_use(toks: &[Tok], mut i: usize, fg: &mut FileGraph) -> usize {
    // Collect the prefix up to `{`, `*`, `;` or an `as` alias.
    fn collect(toks: &[Tok], i: &mut usize, prefix: &mut Vec<String>, fg: &mut FileGraph) {
        let mut last: Option<String> = None;
        while *i < toks.len() {
            let t = &toks[*i];
            if t.kind == TokKind::Ident {
                match t.text.as_str() {
                    "as" => {
                        // `path as alias`
                        *i += 1;
                        if let Some(alias) = toks.get(*i) {
                            if alias.kind == TokKind::Ident {
                                let mut path = prefix.clone();
                                if let Some(l) = last.take() {
                                    path.push(l);
                                }
                                fg.uses.push(UseImport {
                                    name: alias.text.clone(),
                                    path,
                                });
                                *i += 1;
                            }
                        }
                    }
                    "self" if last.is_none() && !prefix.is_empty() => {
                        // `use a::b::{self, …}` — binds the module name.
                        if let Some(tail) = prefix.last().cloned() {
                            fg.uses.push(UseImport {
                                name: tail,
                                path: prefix.clone(),
                            });
                        }
                        *i += 1;
                    }
                    _ => {
                        last = Some(t.text.clone());
                        *i += 1;
                    }
                }
            } else if t.is_punct(":") {
                // `::` — the pending name becomes a prefix segment.
                if let Some(l) = last.take() {
                    prefix.push(l);
                }
                *i += 1;
                if toks.get(*i).map(|n| n.is_punct(":")).unwrap_or(false) {
                    *i += 1;
                }
            } else if t.is_punct("{") {
                *i += 1;
                loop {
                    let mut sub = prefix.clone();
                    collect(toks, i, &mut sub, fg);
                    match toks.get(*i) {
                        Some(t) if t.is_punct(",") => {
                            *i += 1;
                        }
                        Some(t) if t.is_punct("}") => {
                            *i += 1;
                            break;
                        }
                        _ => break,
                    }
                }
                return;
            } else if t.is_punct("*") {
                fg.globs.push(prefix.clone());
                *i += 1;
                return;
            } else {
                // `,`, `}`, `;` — finish this leaf.
                break;
            }
        }
        if let Some(l) = last {
            let mut path = prefix.clone();
            path.push(l.clone());
            fg.uses.push(UseImport { name: l, path });
        }
    }
    let mut prefix = Vec::new();
    collect(toks, &mut i, &mut prefix, fg);
    // Consume to the `;`.
    while i < toks.len() && !toks[i].is_punct(";") {
        i += 1;
    }
    i + 1
}

/// Recognizes a determinism-forbidden API at token `i`.
fn taint_at(toks: &[Tok], i: usize) -> Option<TaintSite> {
    let t = toks.get(i)?;
    if t.kind != TokKind::Ident {
        return None;
    }
    let path_next = |k: usize, name: &str| {
        toks.get(k).map(|p| p.is_punct(":")).unwrap_or(false)
            && toks.get(k + 1).map(|p| p.is_punct(":")).unwrap_or(false)
            && toks.get(k + 2).map(|n| n.is_ident(name)).unwrap_or(false)
    };
    let called = |k: usize| toks.get(k).map(|p| p.is_punct("(")).unwrap_or(false);
    let site = |api: &'static str, is_time: bool| {
        Some(TaintSite {
            api,
            is_time,
            line: t.line,
            col: t.col,
        })
    };
    match t.text.as_str() {
        "HashMap" => site("HashMap", false),
        "HashSet" => site("HashSet", false),
        "Instant" if path_next(i + 1, "now") => site("Instant::now", true),
        "SystemTime" if path_next(i + 1, "now") => site("SystemTime::now", true),
        "thread_rng" if called(i + 1) => site("thread_rng()", false),
        "from_entropy" if called(i + 1) => site("from_entropy()", false),
        "thread" if path_next(i + 1, "spawn") => site("thread::spawn", false),
        "thread" if path_next(i + 1, "scope") => site("thread::scope", false),
        "temp_dir" if called(i + 1) => site("env::temp_dir()", false),
        "current_dir" if called(i + 1) => site("env::current_dir()", false),
        "home_dir" if called(i + 1) => site("env::home_dir()", false),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> FileGraph {
        parse_file("x.rs", "app", &[], src)
    }

    #[test]
    fn extracts_free_fns_and_bare_calls() {
        let fg = parse("fn a() { helper(1); other::thing(); }\nfn helper(x: u32) {}");
        assert_eq!(fg.fns.len(), 2);
        let a = &fg.fns[0];
        assert_eq!(a.name, "a");
        assert_eq!(a.calls.len(), 2);
        assert_eq!(a.calls[0].segs, vec!["helper"]);
        assert_eq!(a.calls[0].kind, CallKind::Bare);
        assert_eq!(a.calls[1].segs, vec!["other", "thing"]);
        assert_eq!(a.calls[1].kind, CallKind::Path);
    }

    #[test]
    fn extracts_methods_with_impl_context() {
        let src = r#"
            pub struct Planner { x: u32 }
            impl Planner {
                pub fn plan(&self) -> u32 { self.helper() }
                fn helper(&self) -> u32 { self.x }
            }
        "#;
        let fg = parse(src);
        assert_eq!(fg.types, vec!["Planner"]);
        assert_eq!(fg.fns.len(), 2);
        assert_eq!(fg.fns[0].type_ctx.as_deref(), Some("Planner"));
        let call = &fg.fns[0].calls[0];
        assert_eq!(call.kind, CallKind::Method);
        assert!(call.recv_self);
        assert_eq!(call.segs, vec!["helper"]);
    }

    #[test]
    fn trait_impls_attach_methods_to_the_type() {
        let src = "impl fmt::Display for Err { fn fmt(&self) { inner(); } }";
        let fg = parse(src);
        assert_eq!(fg.fns[0].type_ctx.as_deref(), Some("Err"));
        assert_eq!(fg.fns[0].calls[0].segs, vec!["inner"]);
    }

    #[test]
    fn inline_mods_nest_into_the_module_path() {
        let fg = parse("mod inner { pub fn f() { g(); } }");
        assert_eq!(fg.fns[0].module, vec!["inner"]);
    }

    #[test]
    fn use_imports_and_globs() {
        let src = "use a::b::C;\nuse x::{y, z::W as V, self};\nuse q::*;\nfn f() {}";
        let fg = parse(src);
        let names: Vec<(&str, Vec<&str>)> = fg
            .uses
            .iter()
            .map(|u| (u.name.as_str(), u.path.iter().map(|s| s.as_str()).collect()))
            .collect();
        assert!(names.contains(&("C", vec!["a", "b", "C"])));
        assert!(names.contains(&("y", vec!["x", "y"])));
        assert!(names.contains(&("V", vec!["x", "z", "W"])));
        assert!(names.contains(&("x", vec!["x"])));
        assert_eq!(fg.globs, vec![vec!["q".to_string()]]);
    }

    #[test]
    fn panic_sites_and_index_sites() {
        let src = r#"
            fn f(x: Option<u32>, v: &[u32]) -> u32 {
                let a = x.unwrap();
                let b = v[0];
                if a == 0 { panic!("zero"); }
                b
            }
        "#;
        let fg = parse(src);
        let f = &fg.fns[0];
        assert_eq!(f.panics.len(), 2, "{:?}", f.panics);
        assert_eq!(f.panics[0].what, ".unwrap()");
        assert_eq!(f.panics[1].what, "panic!");
        assert_eq!(f.indexes.len(), 1);
    }

    #[test]
    fn taint_sites_in_body_and_signature() {
        let src = r#"
            fn f(m: &HashMap<u32, u32>) {
                let t = Instant::now();
                let r = thread_rng();
            }
        "#;
        let fg = parse(src);
        let apis: Vec<&str> = fg.fns[0].taints.iter().map(|t| t.api).collect();
        assert_eq!(apis, vec!["HashMap", "Instant::now", "thread_rng()"]);
    }

    #[test]
    fn lock_sites_identity_and_held() {
        let src = r#"
            impl Q {
                fn f(&self) {
                    let g = lock_unpoisoned(&self.inner);
                    lock_unpoisoned(&self.shards[i]).push(1);
                }
            }
        "#;
        let fg = parse(src);
        let locks = &fg.fns[0].locks;
        assert_eq!(locks.len(), 2, "{locks:?}");
        assert_eq!(locks[0].name, "inner");
        assert!(locks[0].self_qualified);
        assert!(locks[0].held);
        assert_eq!(locks[1].name, "shards");
        assert!(!locks[1].held);
    }

    #[test]
    fn enum_variants_and_tuple_structs_are_ctors() {
        let src = "pub struct Wrap(u32);\npub enum E { A(u32), B { x: u32 }, C }\nfn f() { let a = Wrap(1); let b = E::A(2); }";
        let fg = parse(src);
        assert!(fg.ctors.contains(&"Wrap".to_string()));
        assert!(fg.ctors.contains(&"A".to_string()));
        assert!(!fg.ctors.contains(&"B".to_string()));
    }

    #[test]
    fn test_modules_are_invisible_to_the_graph() {
        let src = r#"
            fn real() { helper(); }
            #[cfg(test)]
            mod tests {
                fn fake_helper() { HashMap::new(); }
            }
        "#;
        let fg = parse(src);
        assert_eq!(fg.fns.len(), 1);
        assert_eq!(fg.fns[0].name, "real");
    }

    #[test]
    fn macros_are_not_calls_but_args_are_scanned() {
        let fg = parse("fn f() { writeln!(out, \"{}\", compute(x)).ok(); }");
        let segs: Vec<&str> = fg.fns[0].calls.iter().map(|c| c.segs[0].as_str()).collect();
        assert!(segs.contains(&"compute"), "{segs:?}");
        assert!(!segs.contains(&"writeln"), "{segs:?}");
    }

    #[test]
    fn turbofish_calls_are_detected() {
        let fg =
            parse("fn f(v: Vec<u32>) { let s = v.iter().collect::<Vec<_>>(); parse::<u32>(x); }");
        let segs: Vec<&str> = fg.fns[0]
            .calls
            .iter()
            .map(|c| c.segs.last().unwrap().as_str())
            .collect();
        assert!(segs.contains(&"collect"));
        assert!(segs.contains(&"parse"));
    }
}

//! Workspace call-graph construction: best-effort name resolution over the
//! per-file item graphs of [`crate::graph`].
//!
//! Resolution is deliberately simple — no type inference, no trait
//! dispatch — but honest: every call site lands in exactly one of three
//! buckets, and the **unresolved** bucket is counted and reported in the
//! lint summary, never silently dropped.
//!
//! 1. **resolved** — the call maps to a workspace function, producing a
//!    graph edge. Priority order:
//!    same-impl method (`self.f()` / `Self::f`), same-module function,
//!    `use`-imported name, `crate::`/`self::`/`super::` path, cross-crate
//!    path (`nestwx_core::planner::…`), unique `Type::method` in the
//!    workspace, and — for method syntax — a unique method name workspace
//!    wide (re-exports and field-typed receivers make the defining impl
//!    invisible to a token parser; uniqueness makes the guess safe).
//! 2. **external** — confidently not a workspace function: paths rooted in
//!    `std`/vendored crates, tuple-struct/variant constructors, uppercase
//!    type constructors (`Vec::new`), or one of the ubiquitous std method
//!    names (`push`, `len`, `iter`, …) that would otherwise resolve by the
//!    uniqueness rule to an unrelated workspace fn.
//! 3. **unresolved** — everything else (trait-object dispatch, closures
//!    passed as values, ambiguous method names). Counted per file.

use crate::graph::{CallKind, CallSite, FileGraph, FnDecl};
use std::collections::{BTreeMap, BTreeSet};

/// A resolved call edge: caller fn index → callee fn index, with the call
/// site's span for chain reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Callee index into [`Workspace::fns`].
    pub callee: usize,
    /// 1-based line of the call site in the caller's file.
    pub line: u32,
    /// 1-based byte column of the call site.
    pub col: u32,
    /// Token index of the call site (orders calls against lock sites).
    pub tok: usize,
}

/// One function node of the workspace graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Index of the defining file in [`Workspace::files`].
    pub file: usize,
    /// Index of the declaration in that file's `fns`.
    pub decl: usize,
    /// Fully qualified display name
    /// (`nestwx_core::planner::Planner::plan`).
    pub qname: String,
    /// Resolved outgoing call edges, in source order.
    pub edges: Vec<Edge>,
}

/// Aggregate resolution statistics for the lint summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct GraphStats {
    /// Functions in the graph.
    pub functions: usize,
    /// Call sites inspected.
    pub calls: usize,
    /// Call sites resolved to a workspace function.
    pub resolved: usize,
    /// Call sites confidently classified as external (std/vendored/ctor).
    pub external: usize,
    /// Call sites that could not be classified — reported, never dropped.
    pub unresolved: usize,
}

/// The resolved workspace call graph.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Per-file item graphs, in sorted path order.
    pub files: Vec<FileGraph>,
    /// All workspace functions, indexed by the maps below.
    pub fns: Vec<FnNode>,
    /// Resolution statistics.
    pub stats: GraphStats,
    /// Unresolved call sites per file (path → count), for the summary and
    /// the committed-threshold test.
    pub unresolved_by_file: BTreeMap<String, usize>,
}

/// Method names so common on std types that the uniqueness fallback must
/// never claim them: a workspace fn named `len` does not make every
/// `.len()` in the repo call it.
const COMMON_METHODS: [&str; 74] = [
    "parse",
    "push",
    "pop",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "into_iter",
    "get",
    "get_mut",
    "insert",
    "remove",
    "contains",
    "contains_key",
    "clone",
    "to_string",
    "to_owned",
    "as_str",
    "as_ref",
    "as_mut",
    "as_bytes",
    "as_slice",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "map",
    "map_err",
    "and_then",
    "or_else",
    "ok",
    "err",
    "ok_or",
    "ok_or_else",
    "filter",
    "filter_map",
    "collect",
    "extend",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "dedup",
    "join",
    "split",
    "splitn",
    "trim",
    "starts_with",
    "ends_with",
    "replace",
    "find",
    "position",
    "any",
    "all",
    "count",
    "sum",
    "min",
    "max",
    "abs",
    "floor",
    "ceil",
    "round",
    "take",
    "skip",
    "zip",
    "enumerate",
    "rev",
    "chain",
    "flatten",
    "fold",
    "retain",
    "entry",
    "keys",
    "values",
    "drain",
];

/// Path heads that mark a call as external with certainty.
const EXTERNAL_ROOTS: [&str; 37] = [
    "std",
    "core",
    "alloc",
    "Vec",
    "String",
    "Box",
    "Some",
    "None",
    "Ok",
    "Err",
    "Option",
    "Result",
    "Duration",
    "Instant",
    "SystemTime",
    "PathBuf",
    "Path",
    "Arc",
    "Rc",
    "fmt",
    // Primitive types: `u64::from`, `f64::from_bits`, `u32::try_from`, ….
    "u8",
    "u16",
    "u32",
    "u64",
    "u128",
    "usize",
    "i8",
    "i16",
    "i32",
    "i64",
    "i128",
    "isize",
    "f32",
    "f64",
    "bool",
    "char",
    "str",
];

/// Crates vendored or std-adjacent whose contents are outside the graph.
const EXTERNAL_CRATES: [&str; 7] = [
    "serde",
    "serde_json",
    "serde_derive",
    "rand",
    "loom",
    "proptest",
    "criterion",
];

fn is_common_method(name: &str) -> bool {
    COMMON_METHODS.contains(&name)
}

impl Workspace {
    /// Builds the graph from parsed files. `files` must be in sorted
    /// rel-path order (the caller walks them sorted) so fn indices — and
    /// therefore every downstream diagnostic — are deterministic.
    pub fn build(files: Vec<FileGraph>) -> Workspace {
        let mut ws = Workspace {
            files,
            ..Workspace::default()
        };

        // ---- index every function -------------------------------------
        // by_path: "crate::mod::…::name" and "crate::mod::…::Type::name"
        // by_type_method: (Type, name) → fn indices
        // by_name: bare name → fn indices (same-module and uniqueness)
        let mut by_path: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_type_method: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut by_method_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        // (crate, name) → free fns: the fallback that resolves re-exported
        // paths (`nestwx_core::env_usize` for `nestwx_core::env::env_usize`).
        let mut free_by_crate: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();

        let mut fn_crates: Vec<String> = Vec::new();
        for (fi, fg) in ws.files.iter().enumerate() {
            for (di, d) in fg.fns.iter().enumerate() {
                let idx = ws.fns.len();
                let qname = qualify(fg, d);
                ws.fns.push(FnNode {
                    file: fi,
                    decl: di,
                    qname: qname.clone(),
                    edges: Vec::new(),
                });
                fn_crates.push(normalize_crate(&fg.crate_name));
                by_path.entry(qname.clone()).or_default().push(idx);
                // Also index without the type segment (free-fn form) and
                // without module segments, for suffix-style lookups.
                if let Some(ty) = &d.type_ctx {
                    by_type_method
                        .entry((ty.clone(), d.name.clone()))
                        .or_default()
                        .push(idx);
                } else {
                    free_by_crate
                        .entry((normalize_crate(&fg.crate_name), d.name.clone()))
                        .or_default()
                        .push(idx);
                }
                by_method_name.entry(d.name.clone()).or_default().push(idx);
            }
        }

        // Type name → defining crates (for `Type::method` where Type is
        // unique workspace-wide).
        let mut type_owners: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for fg in &ws.files {
            for ty in &fg.types {
                type_owners
                    .entry(ty.clone())
                    .or_default()
                    .insert(fg.crate_name.clone());
            }
        }
        let ctors: BTreeSet<&String> = ws.files.iter().flat_map(|f| f.ctors.iter()).collect();
        let crate_names: BTreeSet<&String> = ws.files.iter().map(|f| &f.crate_name).collect();

        // ---- resolve every call site ----------------------------------
        let mut edges_out: Vec<Vec<Edge>> = vec![Vec::new(); ws.fns.len()];
        let mut stats = GraphStats {
            functions: ws.fns.len(),
            ..GraphStats::default()
        };
        let mut unresolved_by_file: BTreeMap<String, usize> = BTreeMap::new();

        for (idx, out) in edges_out.iter_mut().enumerate() {
            let (fi, di) = (ws.fns[idx].file, ws.fns[idx].decl);
            let fg = &ws.files[fi];
            let d = &fg.fns[di];
            for call in &d.calls {
                stats.calls += 1;
                match resolve_call(
                    call,
                    fg,
                    d,
                    &by_path,
                    &by_type_method,
                    &by_method_name,
                    &free_by_crate,
                    &type_owners,
                    &ctors,
                    &crate_names,
                    &fn_crates,
                ) {
                    Resolution::Fn(callee) => {
                        stats.resolved += 1;
                        out.push(Edge {
                            callee,
                            line: call.line,
                            col: call.col,
                            tok: call.tok,
                        });
                    }
                    Resolution::External => stats.external += 1,
                    Resolution::Unresolved => {
                        if std::env::var("NESTWX_DUMP_UNRESOLVED").is_ok() {
                            eprintln!(
                                "UNRES {:?} {} {}:{}",
                                call.kind,
                                call.segs.join("::"),
                                fg.rel_path,
                                call.line
                            );
                        }
                        stats.unresolved += 1;
                        *unresolved_by_file.entry(fg.rel_path.clone()).or_insert(0) += 1;
                    }
                }
            }
        }
        for (idx, e) in edges_out.into_iter().enumerate() {
            ws.fns[idx].edges = e;
        }
        ws.stats = stats;
        ws.unresolved_by_file = unresolved_by_file;
        ws
    }

    /// Fn indices whose qualified name ends with `suffix` at a `::`
    /// boundary (`Planner::plan` matches `nestwx_core::planner::Planner::plan`).
    pub fn find_by_suffix(&self, suffix: &str) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.qname == suffix
                    || f.qname
                        .strip_suffix(suffix)
                        .map(|head| head.ends_with("::"))
                        .unwrap_or(false)
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// The declaration behind fn `idx`.
    pub fn decl(&self, idx: usize) -> &FnDecl {
        &self.files[self.fns[idx].file].fns[self.fns[idx].decl]
    }

    /// The rel path of the file defining fn `idx`.
    pub fn file_of(&self, idx: usize) -> &str {
        &self.files[self.fns[idx].file].rel_path
    }
}

/// Fully qualified display name of a declaration. The crate segment is
/// underscored (`nestwx_core`) so qnames compare equal to path lookups.
fn qualify(fg: &FileGraph, d: &FnDecl) -> String {
    let krate = normalize_crate(&fg.crate_name);
    let mut parts: Vec<&str> = vec![krate.as_str()];
    parts.extend(fg.base_module.iter().map(|s| s.as_str()));
    parts.extend(d.module.iter().map(|s| s.as_str()));
    if let Some(ty) = &d.type_ctx {
        parts.push(ty);
    }
    parts.push(&d.name);
    parts.join("::")
}

enum Resolution {
    Fn(usize),
    External,
    Unresolved,
}

fn normalize_crate(seg: &str) -> String {
    seg.replace('-', "_")
}

#[allow(clippy::too_many_arguments)]
fn resolve_call(
    call: &CallSite,
    fg: &FileGraph,
    caller: &FnDecl,
    by_path: &BTreeMap<String, Vec<usize>>,
    by_type_method: &BTreeMap<(String, String), Vec<usize>>,
    by_method_name: &BTreeMap<String, Vec<usize>>,
    free_by_crate: &BTreeMap<(String, String), Vec<usize>>,
    type_owners: &BTreeMap<String, BTreeSet<String>>,
    ctors: &BTreeSet<&String>,
    crate_names: &BTreeSet<&String>,
    fn_crates: &[String],
) -> Resolution {
    let name = call.segs.last().expect("non-empty path").clone();

    // Constructors are data, not calls.
    if call.kind != CallKind::Method && ctors.contains(&name) && call.segs.len() <= 2 {
        return Resolution::External;
    }

    // Method-call syntax.
    if call.kind == CallKind::Method {
        // `self.m()` — resolve within the caller's impl type first.
        if call.recv_self {
            if let Some(ty) = &caller.type_ctx {
                if let Some(hits) = by_type_method.get(&(ty.clone(), name.clone())) {
                    if hits.len() == 1 {
                        return Resolution::Fn(hits[0]);
                    }
                    if let Some(hit) = pick_in_crate(hits, fg, fn_crates) {
                        return Resolution::Fn(hit);
                    }
                }
            }
        }
        if is_common_method(&name) {
            return Resolution::External;
        }
        // Unique method name workspace-wide → safe guess; ambiguous
        // workspace-wide but unique in the caller's crate → crate-local
        // guess (receivers are overwhelmingly crate-local).
        return match by_method_name.get(&name) {
            Some(v) if v.len() == 1 => Resolution::Fn(v[0]),
            Some(v) => match pick_in_crate(v, fg, fn_crates) {
                Some(hit) => Resolution::Fn(hit),
                None => Resolution::Unresolved,
            },
            None => Resolution::External,
        };
    }

    // Path / bare calls. Expand the head segment.
    let mut segs: Vec<String> = call.segs.clone();
    if call.qualified_tail {
        // `<T as Trait>::f` — the head is invisible; fall through to the
        // uniqueness rules below on the visible tail.
        segs = vec![name.clone()];
    }

    // Head-based classification and expansion.
    if segs.len() > 1 {
        let head = segs[0].clone();
        if EXTERNAL_ROOTS.contains(&head.as_str()) || EXTERNAL_CRATES.contains(&head.as_str()) {
            return Resolution::External;
        }
        if head == "crate" {
            let mut full = vec![normalize_crate(&fg.crate_name)];
            full.extend(segs[1..].iter().cloned());
            return lookup_path(&full, by_path, Some(free_by_crate));
        }
        if head == "self" {
            let mut full = vec![normalize_crate(&fg.crate_name)];
            full.extend(fg.base_module.iter().cloned());
            full.extend(caller.module.iter().cloned());
            full.extend(segs[1..].iter().cloned());
            return lookup_path(&full, by_path, Some(free_by_crate));
        }
        if head == "super" {
            let mut module: Vec<String> = fg
                .base_module
                .iter()
                .chain(caller.module.iter())
                .cloned()
                .collect();
            let mut rest = &segs[1..];
            while rest.first().map(|s| s == "super").unwrap_or(false) {
                module.pop();
                rest = &rest[1..];
            }
            module.pop();
            let mut full = vec![normalize_crate(&fg.crate_name)];
            full.extend(module);
            full.extend(rest.iter().cloned());
            return lookup_path(&full, by_path, Some(free_by_crate));
        }
        if head == "Self" {
            if let Some(ty) = &caller.type_ctx {
                let mut full = vec![ty.clone()];
                full.extend(segs[1..].iter().cloned());
                return resolve_typed_tail(&full, fg, by_type_method, type_owners, fn_crates);
            }
            return Resolution::Unresolved;
        }
        // A workspace crate name as head: absolute cross-crate path.
        let headn = normalize_crate(&head);
        if crate_names.iter().any(|c| normalize_crate(c) == headn) {
            let mut full = vec![headn];
            full.extend(segs[1..].iter().cloned());
            return lookup_path(&full, by_path, Some(free_by_crate));
        }
        // `use`-imported head (`use nestwx_core::planner; planner::f()` or
        // `use x::Type; Type::method()`).
        if let Some(u) = fg.uses.iter().find(|u| u.name == head) {
            let mut full = u.path.clone();
            full.extend(segs[1..].iter().cloned());
            // The expansion may itself be crate-rooted or external-rooted.
            let h = full[0].clone();
            if EXTERNAL_ROOTS.contains(&h.as_str()) || EXTERNAL_CRATES.contains(&h.as_str()) {
                return Resolution::External;
            }
            if h == "crate" {
                full[0] = normalize_crate(&fg.crate_name);
            } else {
                full[0] = normalize_crate(&h);
            }
            if let r @ Resolution::Fn(_) = lookup_path(&full, by_path, Some(free_by_crate)) {
                return r;
            }
            // Fall through: the import may name a type, not a module.
        }
        // A module path relative to the caller's module or one of its
        // ancestors (`obs::load_summary` called from the crate root of
        // nestwx-cli resolves as `nestwx_cli::obs::load_summary`).
        let mut module: Vec<String> = fg
            .base_module
            .iter()
            .chain(caller.module.iter())
            .cloned()
            .collect();
        loop {
            let mut p = vec![normalize_crate(&fg.crate_name)];
            p.extend(module.iter().cloned());
            p.extend(segs.iter().cloned());
            if let r @ Resolution::Fn(_) = lookup_path(&p, by_path, None) {
                return r;
            }
            if module.pop().is_none() {
                break;
            }
        }
        // `Type::method` where Type is a workspace type.
        return resolve_typed_tail(&segs, fg, by_type_method, type_owners, fn_crates);
    }

    // Bare single-name call: same module first, then imports, then
    // workspace-unique free fn.
    let mut full = vec![normalize_crate(&fg.crate_name)];
    full.extend(fg.base_module.iter().cloned());
    full.extend(caller.module.iter().cloned());
    full.push(name.clone());
    if let Some(hits) = by_path.get(&full.join("::")) {
        if hits.len() == 1 {
            return Resolution::Fn(hits[0]);
        }
    }
    // Parent modules of the same file (an inline `mod` calling file-level
    // helpers).
    let mut module: Vec<String> = fg
        .base_module
        .iter()
        .chain(caller.module.iter())
        .cloned()
        .collect();
    while module.pop().is_some() {
        let mut p = vec![normalize_crate(&fg.crate_name)];
        p.extend(module.iter().cloned());
        p.push(name.clone());
        if let Some(hits) = by_path.get(&p.join("::")) {
            if hits.len() == 1 {
                return Resolution::Fn(hits[0]);
            }
        }
    }
    // `use`-imported free fn.
    if let Some(u) = fg.uses.iter().find(|u| u.name == name) {
        let mut full = u.path.clone();
        let h = full[0].clone();
        if EXTERNAL_ROOTS.contains(&h.as_str()) || EXTERNAL_CRATES.contains(&h.as_str()) {
            return Resolution::External;
        }
        full[0] = if h == "crate" {
            normalize_crate(&fg.crate_name)
        } else {
            normalize_crate(&h)
        };
        if let r @ Resolution::Fn(_) = lookup_path(&full, by_path, Some(free_by_crate)) {
            return r;
        }
    }
    // Glob imports: try each glob prefix.
    for g in &fg.globs {
        if g.is_empty() {
            continue;
        }
        let mut full = g.clone();
        let h = full[0].clone();
        full[0] = if h == "crate" {
            normalize_crate(&fg.crate_name)
        } else if h == "super" {
            // `use super::*` — parent module of this file.
            let mut p = vec![normalize_crate(&fg.crate_name)];
            let mut parents = fg.base_module.clone();
            parents.pop();
            p.extend(parents);
            p.extend(full[1..].iter().cloned());
            p.push(name.clone());
            if let Some(hits) = by_path.get(&p.join("::")) {
                if hits.len() == 1 {
                    return Resolution::Fn(hits[0]);
                }
            }
            continue;
        } else {
            normalize_crate(&h)
        };
        full.push(name.clone());
        if let Some(hits) = by_path.get(&full.join("::")) {
            if hits.len() == 1 {
                return Resolution::Fn(hits[0]);
            }
        }
    }
    // Crate-unique free-fn name: a bare call can only target a free fn,
    // and an unparsed re-export/import still lands in the caller's crate
    // far more often than not.
    if let Some(v) = free_by_crate.get(&(normalize_crate(&fg.crate_name), name.clone())) {
        if v.len() == 1 {
            return Resolution::Fn(v[0]);
        }
    }
    // Workspace-unique free-fn name (not a method).
    if !is_common_method(&name) {
        if let Some(v) = by_method_name.get(&name) {
            if v.len() == 1 {
                return Resolution::Fn(v[0]);
            }
            return Resolution::Unresolved;
        }
    }
    // Uppercase heads that never matched anything are type constructors
    // (`Wrap(x)` for a tuple struct defined elsewhere, `Vec(…)`).
    if name.chars().next().map(char::is_uppercase).unwrap_or(false) {
        return Resolution::External;
    }
    Resolution::Unresolved
}

/// Exact path lookup, preferring an unambiguous hit. With `free_by_crate`
/// set, a crate-rooted path that misses falls back to the unique free fn
/// of that name in the named crate — the common `pub use` re-export shape
/// (`nestwx_core::env_usize` for `nestwx_core::env::env_usize`).
fn lookup_path(
    full: &[String],
    by_path: &BTreeMap<String, Vec<usize>>,
    free_by_crate: Option<&BTreeMap<(String, String), Vec<usize>>>,
) -> Resolution {
    if let Some(v) = by_path.get(&full.join("::")) {
        if v.len() == 1 {
            return Resolution::Fn(v[0]);
        }
        if v.len() > 1 {
            return Resolution::Unresolved;
        }
    }
    if let (Some(fbc), [krate, .., name]) = (free_by_crate, full) {
        if let Some(v) = fbc.get(&(krate.clone(), name.clone())) {
            if v.len() == 1 {
                return Resolution::Fn(v[0]);
            }
        }
    }
    Resolution::Unresolved
}

/// Resolves `Type::method…` (possibly `Type::assoc::more`) against the
/// workspace's type-method index, requiring the type to be defined in
/// exactly one crate.
fn resolve_typed_tail(
    segs: &[String],
    fg: &FileGraph,
    by_type_method: &BTreeMap<(String, String), Vec<usize>>,
    type_owners: &BTreeMap<String, BTreeSet<String>>,
    fn_crates: &[String],
) -> Resolution {
    if segs.len() != 2 {
        return Resolution::Unresolved;
    }
    let (ty, method) = (&segs[0], &segs[1]);
    let Some(hits) = by_type_method.get(&(ty.clone(), method.clone())) else {
        // A known workspace type without such a method is derived/std
        // machinery (`Report::default()`); any other capitalised name is a
        // foreign type. Lowercase heads could be anything.
        let known_or_typename = type_owners.contains_key(ty)
            || ty.chars().next().map(char::is_uppercase).unwrap_or(false);
        return if known_or_typename {
            Resolution::External
        } else {
            Resolution::Unresolved
        };
    };
    if hits.len() == 1 {
        return Resolution::Fn(hits[0]);
    }
    // Same-named types in several crates: prefer the caller's own crate.
    if let Some(hit) = pick_in_crate(hits, fg, fn_crates) {
        return Resolution::Fn(hit);
    }
    Resolution::Unresolved
}

/// Of several (Type, method) candidates, picks the one in the caller's
/// crate when that disambiguates.
fn pick_in_crate(hits: &[usize], fg: &FileGraph, fn_crates: &[String]) -> Option<usize> {
    let own_crate = normalize_crate(&fg.crate_name);
    let own: Vec<usize> = hits
        .iter()
        .copied()
        .filter(|&i| fn_crates[i] == own_crate)
        .collect();
    if own.len() == 1 {
        Some(own[0])
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::parse_file;

    fn ws(files: &[(&str, &str, &[&str], &str)]) -> Workspace {
        let parsed = files
            .iter()
            .map(|(path, krate, module, src)| {
                let m: Vec<String> = module.iter().map(|s| s.to_string()).collect();
                parse_file(path, krate, &m, src)
            })
            .collect();
        Workspace::build(parsed)
    }

    fn edge_names(ws: &Workspace, qname: &str) -> Vec<String> {
        let idx = ws
            .fns
            .iter()
            .position(|f| f.qname == qname)
            .unwrap_or_else(|| {
                panic!(
                    "no fn {qname}: {:?}",
                    ws.fns.iter().map(|f| &f.qname).collect::<Vec<_>>()
                )
            });
        ws.fns[idx]
            .edges
            .iter()
            .map(|e| ws.fns[e.callee].qname.clone())
            .collect()
    }

    #[test]
    fn same_module_bare_call_resolves() {
        let w = ws(&[(
            "crates/app/src/lib.rs",
            "app",
            &[],
            "fn a() { b(); }\nfn b() {}",
        )]);
        assert_eq!(edge_names(&w, "app::a"), vec!["app::b"]);
        assert_eq!(w.stats.unresolved, 0);
    }

    #[test]
    fn cross_crate_use_import_resolves() {
        let w = ws(&[
            (
                "crates/core/src/planner.rs",
                "nestwx-core",
                &["planner"],
                "pub struct Planner;\nimpl Planner { pub fn plan(&self) { helper(); } }\nfn helper() {}",
            ),
            (
                "crates/cli/src/lib.rs",
                "nestwx-cli",
                &[],
                "use nestwx_core::planner::Planner;\nfn run() { let p = Planner::plan(&x); }",
            ),
        ]);
        assert_eq!(
            edge_names(&w, "nestwx_cli::run"),
            vec!["nestwx_core::planner::Planner::plan"]
        );
        assert_eq!(
            edge_names(&w, "nestwx_core::planner::Planner::plan"),
            vec!["nestwx_core::planner::helper"]
        );
    }

    #[test]
    fn crate_rooted_path_resolves() {
        let w = ws(&[
            (
                "crates/app/src/lib.rs",
                "app",
                &[],
                "fn top() { crate::util::go(); }",
            ),
            ("crates/app/src/util.rs", "app", &["util"], "pub fn go() {}"),
        ]);
        assert_eq!(edge_names(&w, "app::top"), vec!["app::util::go"]);
    }

    #[test]
    fn self_method_resolves_within_impl() {
        let w = ws(&[(
            "crates/app/src/lib.rs",
            "app",
            &[],
            "struct S;\nimpl S { fn a(&self) { self.b(); } fn b(&self) {} }",
        )]);
        assert_eq!(edge_names(&w, "app::S::a"), vec!["app::S::b"]);
    }

    #[test]
    fn common_method_names_are_external_not_unresolved() {
        let w = ws(&[(
            "crates/app/src/lib.rs",
            "app",
            &[],
            "fn f(v: &mut Vec<u32>) { v.push(1); let n = v.len(); }",
        )]);
        assert_eq!(w.stats.unresolved, 0);
        assert_eq!(w.stats.external, 2);
    }

    #[test]
    fn unique_method_name_resolves_across_types() {
        let w = ws(&[
            (
                "crates/app/src/lib.rs",
                "app",
                &[],
                "fn f(q: &Q) { q.recompute_all(); }",
            ),
            (
                "crates/app/src/q.rs",
                "app",
                &["q"],
                "pub struct Q;\nimpl Q { pub fn recompute_all(&self) {} }",
            ),
        ]);
        assert_eq!(edge_names(&w, "app::f"), vec!["app::q::Q::recompute_all"]);
    }

    #[test]
    fn ambiguous_method_names_count_as_unresolved() {
        let w = ws(&[
            (
                "crates/app/src/a.rs",
                "app",
                &["a"],
                "pub struct A;\nimpl A { pub fn frob(&self) {} }",
            ),
            (
                "crates/app/src/b.rs",
                "app",
                &["b"],
                "pub struct B;\nimpl B { pub fn frob(&self) {} }\nfn f(x: &Dyn) { x.frob(); }",
            ),
        ]);
        assert_eq!(w.stats.unresolved, 1);
        assert_eq!(w.unresolved_by_file.get("crates/app/src/b.rs"), Some(&1));
    }

    #[test]
    fn std_paths_and_ctors_are_external() {
        let w = ws(&[(
            "crates/app/src/lib.rs",
            "app",
            &[],
            "pub struct Wrap(u32);\nfn f() { let a = Wrap(1); let s = std::mem::take(&mut x); let v = Vec::new(); }",
        )]);
        assert_eq!(w.stats.unresolved, 0);
        assert_eq!(w.stats.resolved, 0);
    }

    #[test]
    fn suffix_lookup_finds_roots() {
        let w = ws(&[(
            "crates/core/src/planner.rs",
            "nestwx-core",
            &["planner"],
            "pub struct Planner;\nimpl Planner { pub fn plan(&self) {} }",
        )]);
        assert_eq!(w.find_by_suffix("Planner::plan").len(), 1);
        assert_eq!(w.find_by_suffix("plan").len(), 1);
        assert!(
            w.find_by_suffix("ner::plan").is_empty(),
            "boundary-anchored"
        );
    }
}

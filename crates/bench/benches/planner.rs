//! Criterion benchmarks of end-to-end planning and simulation throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nestwx_core::{MappingKind, Planner, Strategy};
use nestwx_grid::{Domain, NestSpec};
use nestwx_netsim::Machine;

fn config() -> (Domain, Vec<NestSpec>) {
    (
        Domain::parent(286, 307, 24.0),
        vec![
            NestSpec::new(259, 229, 3, (10, 12)),
            NestSpec::new(232, 256, 3, (150, 40)),
        ],
    )
}

fn bench_planning(c: &mut Criterion) {
    let (parent, nests) = config();
    let machine = Machine::bgl(256);
    // Fit once — planning reuses the predictor, as a real deployment would.
    let predictor = nestwx_core::profile::fit_predictor(&machine, 1);
    let planner = Planner::new(machine).with_predictor(predictor);
    c.bench_function("planner/plan_2_nests_256", |b| {
        b.iter(|| planner.plan(black_box(&parent), black_box(&nests)).unwrap())
    });
}

fn bench_simulation(c: &mut Criterion) {
    let (parent, nests) = config();
    let machine = Machine::bgl(256);
    let predictor = nestwx_core::profile::fit_predictor(&machine, 1);
    let planner = Planner::new(machine).with_predictor(predictor);
    let concurrent = planner.plan(&parent, &nests).unwrap();
    let sequential = planner
        .clone()
        .strategy(Strategy::Sequential)
        .mapping(MappingKind::Oblivious)
        .plan(&parent, &nests)
        .unwrap();
    c.bench_function("netsim/iteration_concurrent_256", |b| {
        b.iter(|| concurrent.simulate(1).unwrap())
    });
    c.bench_function("netsim/iteration_sequential_256", |b| {
        b.iter(|| sequential.simulate(1).unwrap())
    });
}

criterion_group!(planner, bench_planning, bench_simulation);
criterion_main!(planner);

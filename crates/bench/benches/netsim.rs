//! Criterion benchmarks of the network-simulator hot path: one parent
//! iteration of a two-nest concurrent configuration at 512 and 1024 BG/L
//! ranks, for both halo-step engines.
//!
//! `netsim/compiled/*` exercises the compile-once tables replayed by
//! `run_mut`; `netsim/reference/*` the original rebuild-everything path
//! (`HaloEngine::Reference`), kept as the before/after baseline. The
//! `bench_netsim` binary records the same comparison machine-readably in
//! `BENCH_netsim.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nestwx_grid::{Domain, NestSpec, NestedConfig, ProcGrid, Rect};
use nestwx_netsim::{ExecStrategy, HaloEngine, IoMode, Machine, Simulation};
use nestwx_topo::Mapping;

fn pacific_two_nests() -> NestedConfig {
    NestedConfig::new(
        Domain::parent(286, 307, 24.0),
        vec![
            NestSpec::new(415, 445, 3, (10, 10)),
            NestSpec::new(415, 445, 3, (140, 150)),
        ],
    )
    .unwrap()
}

fn build<'a>(machine: &'a Machine, config: &'a NestedConfig, engine: HaloEngine) -> Simulation<'a> {
    let grid = ProcGrid::near_square(machine.ranks());
    let half = grid.px / 2;
    let strategy = ExecStrategy::Concurrent {
        partitions: vec![
            Rect::new(0, 0, half, grid.py),
            Rect::new(half, 0, grid.px - half, grid.py),
        ],
    };
    let mapping = Mapping::oblivious(machine.shape, machine.ranks()).unwrap();
    Simulation::new(machine, grid, config, strategy, mapping, IoMode::None, None)
        .unwrap()
        .with_engine(engine)
}

fn bench_engines(c: &mut Criterion) {
    let config = pacific_two_nests();
    for ranks in [512u32, 1024] {
        let machine = Machine::bgl(ranks);
        for (name, engine) in [
            ("compiled", HaloEngine::Compiled),
            ("reference", HaloEngine::Reference),
        ] {
            let mut sim = build(&machine, &config, engine);
            c.bench_function(&format!("netsim/{name}/{ranks}_ranks"), |b| {
                b.iter(|| black_box(sim.run_mut(1).total_time))
            });
        }
    }
}

fn bench_compile(c: &mut Criterion) {
    let config = pacific_two_nests();
    let machine = Machine::bgl(1024);
    c.bench_function("netsim/compile/1024_ranks", |b| {
        b.iter(|| black_box(build(&machine, &config, HaloEngine::Compiled)).steps_taken())
    });
}

criterion_group!(benches, bench_engines, bench_compile);
criterion_main!(benches);

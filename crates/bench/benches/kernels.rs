//! Criterion micro-benchmarks of the core algorithmic kernels.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nestwx_alloc::{huffman::HuffmanTree, partition_grid};
use nestwx_grid::{DomainFeatures, ProcGrid, Rect};
use nestwx_miniwrf::solver::{Boundary, ShallowWater};
use nestwx_predict::{ExecTimePredictor, NaivePointsModel};
use nestwx_topo::metrics::{halo_edges, CommStats};
use nestwx_topo::{MachineShape, Mapping};

fn basis() -> Vec<(DomainFeatures, f64)> {
    let dims: [(u32, u32); 13] = [
        (94, 124),
        (415, 445),
        (100, 200),
        (300, 200),
        (200, 300),
        (250, 250),
        (150, 300),
        (375, 250),
        (160, 140),
        (360, 390),
        (120, 240),
        (420, 280),
        (240, 160),
    ];
    dims.iter()
        .map(|&(nx, ny)| {
            (
                DomainFeatures::from_dims(nx, ny),
                1e-6 * (nx * ny) as f64 + 4e-4 * (nx + ny) as f64,
            )
        })
        .collect()
}

fn bench_predictor(c: &mut Criterion) {
    let b = basis();
    c.bench_function("predict/fit_13_points", |bch| {
        bch.iter(|| ExecTimePredictor::fit(black_box(&b)).unwrap())
    });
    let model = ExecTimePredictor::fit(&b).unwrap();
    let q = DomainFeatures::from_dims(287, 311);
    c.bench_function("predict/query_in_hull", |bch| {
        bch.iter(|| model.predict(black_box(&q)).unwrap())
    });
    let big = DomainFeatures::from_dims(925, 850);
    c.bench_function("predict/query_out_of_hull", |bch| {
        bch.iter(|| model.predict(black_box(&big)).unwrap())
    });
    let naive = NaivePointsModel::fit(&b);
    c.bench_function("predict/naive_query", |bch| {
        bch.iter(|| naive.predict(black_box(&q)))
    });
}

fn bench_allocation(c: &mut Criterion) {
    let ratios = [0.15, 0.3, 0.35, 0.2];
    c.bench_function("alloc/huffman_4", |bch| {
        bch.iter(|| HuffmanTree::build(black_box(&ratios)))
    });
    let grid = ProcGrid::new(32, 32);
    c.bench_function("alloc/partition_grid_4_nests", |bch| {
        bch.iter(|| partition_grid(black_box(&grid), black_box(&ratios)).unwrap())
    });
    let many: Vec<f64> = (1..=16).map(|i| i as f64).collect();
    let big = ProcGrid::new(64, 128);
    c.bench_function("alloc/partition_grid_16_nests_8192", |bch| {
        bch.iter(|| partition_grid(black_box(&big), black_box(&many)).unwrap())
    });
}

fn bench_mapping(c: &mut Criterion) {
    let shape = MachineShape::bgl_rack_vn();
    let grid = ProcGrid::new(32, 32);
    let parts = [
        Rect::new(0, 0, 18, 24),
        Rect::new(0, 24, 18, 8),
        Rect::new(18, 0, 14, 12),
        Rect::new(18, 12, 14, 20),
    ];
    c.bench_function("mapping/oblivious_1024", |bch| {
        bch.iter(|| Mapping::oblivious(black_box(shape), 1024).unwrap())
    });
    c.bench_function("mapping/partition_1024", |bch| {
        bch.iter(|| Mapping::partition(black_box(shape), &grid, &parts).unwrap())
    });
    c.bench_function("mapping/multilevel_1024", |bch| {
        bch.iter(|| Mapping::multilevel(black_box(shape), &grid, &parts).unwrap())
    });
    let m = Mapping::partition(shape, &grid, &parts).unwrap();
    let mut edges = Vec::new();
    for p in &parts {
        edges.extend(halo_edges(&grid, p, 1.0));
    }
    c.bench_function("mapping/comm_stats_4_partitions", |bch| {
        bch.iter(|| CommStats::compute(black_box(&m), black_box(&edges)))
    });
}

fn bench_solver(c: &mut Criterion) {
    let mut sw = ShallowWater::quiescent(128, 128, 1000.0, 100.0, Boundary::Periodic);
    sw.add_gaussian(64.0, 64.0, -5.0, 8.0);
    c.bench_function("miniwrf/step_128x128", |bch| {
        bch.iter(|| black_box(&mut sw).step())
    });
}

criterion_group!(
    kernels,
    bench_predictor,
    bench_allocation,
    bench_mapping,
    bench_solver
);
criterion_main!(kernels);

//! Shared utilities for the experiment harness: workload generation,
//! statistics, and paper-style table printing.
//!
//! One binary per table/figure of the paper lives in `src/bin/`; each
//! prints the rows/series the paper reports (see DESIGN.md §5 for the
//! index and EXPERIMENTS.md for recorded paper-vs-measured values).

use nestwx_grid::NestSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};

/// Number of simulated parent iterations per measurement. Three is enough:
/// the simulator is deterministic and steady from the first iteration.
pub const MEASURE_ITERS: u32 = 3;

/// The paper's Pacific-region parent domain: 286 × 307 at 24 km (§4.1.2).
pub fn pacific_parent() -> nestwx_grid::Domain {
    nestwx_grid::Domain::parent(286, 307, 24.0)
}

/// Randomly generates a sibling-nest configuration in the paper's ranges
/// (§4.1.2): sizes between `min_dim`² and `max_dim`², aspect ratio 0.5–1.5,
/// refinement ratio 3 (24 km → 8 km), placed without leaving the parent.
pub fn random_nests(
    rng: &mut StdRng,
    siblings: usize,
    min_points: u64,
    max_points: u64,
    parent: &nestwx_grid::Domain,
) -> Vec<NestSpec> {
    let mut nests = Vec::with_capacity(siblings);
    for _ in 0..siblings {
        let points = rng.gen_range(min_points..=max_points) as f64;
        let aspect: f64 = rng.gen_range(0.5..=1.5);
        let nx = ((points * aspect).sqrt().round() as u32).max(8);
        let ny = ((points / aspect).sqrt().round() as u32).max(8);
        let fw = nx.div_ceil(3);
        let fh = ny.div_ceil(3);
        let ox = rng.gen_range(0..=(parent.nx.saturating_sub(fw)).max(1));
        let oy = rng.gen_range(0..=(parent.ny.saturating_sub(fh)).max(1));
        nests.push(NestSpec::new(nx, ny, 3, (ox, oy)));
    }
    nests
}

/// Deterministic RNG for an experiment id.
pub fn rng_for(experiment: &str) -> StdRng {
    let mut seed = [0u8; 32];
    for (i, b) in experiment.bytes().enumerate() {
        seed[i % 32] ^= b;
    }
    StdRng::from_seed(seed)
}

// The env knob parsers moved to `nestwx_core::env` so the CLI and the serve
// daemon share them; re-exported here to keep the experiment binaries'
// imports unchanged.
pub use nestwx_core::env::{env_f64, env_u32, env_usize};

// The work-stealing driver moved to `nestwx_core::parallel` so the sweep
// engine can share it; re-exported here to keep the experiment binaries'
// imports unchanged.
pub use nestwx_core::parallel::{parallel_jobs, run_parallel, run_parallel_with};

/// Chrome-trace output destination for an experiment binary: the
/// `--trace-out <path>` (or `--trace-out=<path>`) CLI argument when
/// present — the flag always overrides `NESTWX_TRACE`, and if given more
/// than once the last occurrence wins — else the `NESTWX_TRACE`
/// environment variable when non-empty. `None` disables trace export.
pub fn trace_out() -> Option<PathBuf> {
    trace_out_from(std::env::args().skip(1), std::env::var_os("NESTWX_TRACE"))
}

/// [`trace_out`] over explicit inputs (testable without touching the
/// process environment).
pub fn trace_out_from(
    args: impl Iterator<Item = String>,
    env: Option<std::ffi::OsString>,
) -> Option<PathBuf> {
    // Scan every argument rather than returning at the first match: the
    // last `--trace-out` wins, and any occurrence of the flag (even a
    // dangling one) means the environment must not resurrect tracing.
    let mut from_flag: Option<Option<PathBuf>> = None;
    let mut args = args;
    while let Some(a) = args.next() {
        if a == "--trace-out" {
            match args.next() {
                Some(p) => from_flag = Some(Some(p.into())),
                None => {
                    eprintln!("warning: --trace-out requires a path; tracing disabled");
                    from_flag = Some(None);
                }
            }
        } else if let Some(p) = a.strip_prefix("--trace-out=") {
            from_flag = Some(Some(p.into()));
        }
    }
    match from_flag {
        Some(resolved) => resolved,
        None => env.filter(|v| !v.is_empty()).map(PathBuf::from),
    }
}

/// Writes `rec`'s Chrome `trace_event` JSON to `path`, printing where it
/// went (or a warning on I/O failure — traces are best-effort diagnostics,
/// not experiment results).
pub fn write_trace(rec: &nestwx_netsim::Recorder, path: &Path) {
    match rec.write_chrome_trace(path) {
        Ok(()) => println!(
            "\nwrote Chrome trace to {} (load in chrome://tracing or Perfetto)",
            path.display()
        ),
        Err(e) => eprintln!("warning: failed to write trace {}: {e}", path.display()),
    }
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Maximum of a slice.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Prints a header line for an experiment binary.
pub fn banner(id: &str, title: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

/// Formats a row of a fixed-width table.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_nests_fit_parent() {
        let parent = pacific_parent();
        let mut rng = rng_for("test");
        for _ in 0..20 {
            let nests = random_nests(&mut rng, 4, 178 * 202, 394 * 418, &parent);
            let cfg = nestwx_grid::NestedConfig::new(parent.clone(), nests);
            assert!(cfg.is_ok());
        }
    }

    #[test]
    fn rng_is_deterministic_per_id() {
        let a: u64 = rng_for("x").gen();
        let b: u64 = rng_for("x").gen();
        let c: u64 = rng_for("y").gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn trace_out_resolution_order() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        // CLI flag wins, both spellings.
        let got = trace_out_from(args(&["--trace-out", "a.json"]).into_iter(), None);
        assert_eq!(got, Some(PathBuf::from("a.json")));
        let got = trace_out_from(
            args(&["--trace-out=b.json"]).into_iter(),
            Some("env.json".into()),
        );
        assert_eq!(got, Some(PathBuf::from("b.json")));
        // Env fallback; empty env disables.
        let got = trace_out_from(args(&[]).into_iter(), Some("env.json".into()));
        assert_eq!(got, Some(PathBuf::from("env.json")));
        assert_eq!(trace_out_from(args(&[]).into_iter(), Some("".into())), None);
        // Repeated flag: last occurrence wins, still overriding the env.
        let got = trace_out_from(
            args(&["--trace-out", "a.json", "--trace-out=b.json"]).into_iter(),
            Some("env.json".into()),
        );
        assert_eq!(got, Some(PathBuf::from("b.json")));
        // Dangling flag disables rather than panicking — and the env must
        // not resurrect tracing, because the flag always wins.
        assert_eq!(
            trace_out_from(args(&["--trace-out"]).into_iter(), None),
            None
        );
        assert_eq!(
            trace_out_from(args(&["--trace-out"]).into_iter(), Some("env.json".into())),
            None
        );
    }

    #[test]
    fn env_helpers_parse_and_fall_back() {
        // Unique variable names: tests run concurrently in one process.
        std::env::set_var("NESTWX_TEST_EH_A", "7");
        assert_eq!(env_usize("NESTWX_TEST_EH_A", 3), 7);
        assert_eq!(env_u32("NESTWX_TEST_EH_A", 3), 7);
        std::env::set_var("NESTWX_TEST_EH_B", " 12 ");
        assert_eq!(env_u32("NESTWX_TEST_EH_B", 3), 12);
        std::env::set_var("NESTWX_TEST_EH_C", "0");
        assert_eq!(env_usize("NESTWX_TEST_EH_C", 3), 3); // non-positive → default
        std::env::set_var("NESTWX_TEST_EH_D", "nope");
        assert_eq!(env_u32("NESTWX_TEST_EH_D", 5), 5);
        std::env::set_var("NESTWX_TEST_EH_E", "2.5");
        assert_eq!(env_f64("NESTWX_TEST_EH_E", 1.0), 2.5);
        std::env::set_var("NESTWX_TEST_EH_F", "-1");
        assert_eq!(env_f64("NESTWX_TEST_EH_F", 1.0), 1.0);
        assert_eq!(env_f64("NESTWX_TEST_EH_UNSET", 9.0), 9.0);
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(max(&[1.0, 5.0, 3.0]), 5.0);
        assert_eq!(mean(&[]), 0.0);
    }
}

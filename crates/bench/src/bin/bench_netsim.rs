//! Before/after benchmark of the compiled halo-step schedules.
//!
//! Runs the same two-nest concurrent configuration at 512 and 1024 BG/L
//! ranks through both engines — `HaloEngine::Reference` (the original
//! rebuild-every-step implementation, "before") and `HaloEngine::Compiled`
//! (the precompiled tables, "after") — asserts their reports are
//! bitwise identical, and writes steps/second plus the speedup to
//! `BENCH_netsim.json` in the current directory.
//!
//! Each size also runs the compiled engine with a `nestwx-obs` recorder
//! attached and emits the recorded step-metrics breakdown (compute,
//! MPI_Wait, bytes, hops, stalls), the measured observation overhead in
//! percent, and whether the observed report stayed bitwise identical —
//! the numbers the CI perf gate checks.
//!
//! Knobs: `NESTWX_BENCH_ITERS` (parent iterations per timed run, default 4)
//! and `NESTWX_BENCH_REPS` (timed repetitions, best-of, default 3).

use nestwx_bench::{banner, env_u32};
use nestwx_grid::{Domain, NestSpec, NestedConfig, ProcGrid, Rect};
use nestwx_netsim::{ExecStrategy, HaloEngine, IoMode, Machine, ObsConfig, Simulation};
use nestwx_obs::clock;
use nestwx_topo::Mapping;
use serde::Serialize;

#[derive(Serialize)]
struct EngineResult {
    steps_per_sec: f64,
    seconds_per_run: f64,
}

/// Recorded step-metrics breakdown of one observed compiled run, plus the
/// cost of recording it.
#[derive(Serialize)]
struct ObsBreakdown {
    steps_recorded: u64,
    compute_seconds: f64,
    halo_wait_seconds: f64,
    bytes_moved: f64,
    avg_hops: f64,
    stall_seconds: f64,
    /// (observed − unobserved) / unobserved compiled run time, percent,
    /// for the *detailed* tier (per-rank timelines, histograms and
    /// per-link recording), which costs far more than bare counters.
    /// Informational only — the gate checks `compiled.steps_per_sec` and
    /// the correctness flags, never this.
    obs_overhead_pct: f64,
    /// Observed and unobserved compiled reports bitwise identical.
    obs_identical: bool,
    /// Median recorded step time (seconds, log-histogram estimate).
    step_time_p50: f64,
    /// 99th-percentile recorded step time (seconds).
    step_time_p99: f64,
    /// 99th-percentile per-rank MPI_Wait within a step (seconds).
    rank_wait_p99: f64,
    /// Max/mean rank busy-time over the run (1.0 = perfectly balanced).
    imbalance_factor: f64,
    /// Step records evicted from the metrics ring (0 = full trace kept).
    ring_dropped: u64,
}

#[derive(Serialize)]
struct SizeResult {
    ranks: u32,
    halo_steps_per_run: u64,
    reference: EngineResult,
    compiled: EngineResult,
    speedup: f64,
    reports_identical: bool,
    obs: ObsBreakdown,
}

#[derive(Serialize)]
struct BenchOutput {
    benchmark: String,
    iterations_per_run: u32,
    repetitions: u32,
    results: Vec<SizeResult>,
}

fn build<'a>(machine: &'a Machine, config: &'a NestedConfig, engine: HaloEngine) -> Simulation<'a> {
    let grid = ProcGrid::near_square(machine.ranks());
    let half = grid.px / 2;
    let strategy = ExecStrategy::Concurrent {
        partitions: vec![
            Rect::new(0, 0, half, grid.py),
            Rect::new(half, 0, grid.px - half, grid.py),
        ],
    };
    let mapping = Mapping::oblivious(machine.shape, machine.ranks()).unwrap();
    Simulation::new(machine, grid, config, strategy, mapping, IoMode::None, None)
        .unwrap()
        .with_engine(engine)
}

/// Best-of-`reps` wall-clock seconds for `reps + 1` runs of `iters`
/// iterations (first run is a warm-up).
fn time_runs(sim: &mut Simulation<'_>, iters: u32, reps: u32) -> f64 {
    sim.run_mut(iters);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = clock::now();
        let rep = sim.run_mut(iters);
        let dt = t0.elapsed().as_secs_f64();
        assert!(rep.total_time > 0.0);
        best = best.min(dt);
    }
    best
}

fn main() {
    banner(
        "bench_netsim",
        "compiled vs reference halo-step engine throughput",
    );
    let iters = env_u32("NESTWX_BENCH_ITERS", 4);
    let reps = env_u32("NESTWX_BENCH_REPS", 3);
    let config = NestedConfig::new(
        Domain::parent(286, 307, 24.0),
        vec![
            NestSpec::new(415, 445, 3, (10, 10)),
            NestSpec::new(415, 445, 3, (140, 150)),
        ],
    )
    .unwrap();

    let mut results = Vec::new();
    for ranks in [512u32, 1024] {
        let machine = Machine::bgl(ranks);
        let mut reference = build(&machine, &config, HaloEngine::Reference);
        let mut compiled = build(&machine, &config, HaloEngine::Compiled);
        let plain_report = compiled.run_mut(iters);
        let identical = reference.run_mut(iters) == plain_report;
        let steps = compiled.steps_taken();
        assert_eq!(steps, reference.steps_taken());

        let t_ref = time_runs(&mut reference, iters, reps);
        let t_cmp = time_runs(&mut compiled, iters, reps);
        let speedup = t_ref / t_cmp;

        // Observed compiled run (full detail tier: timelines, histograms,
        // link recording): breakdown, overhead, bitwise identity.
        let mut observed =
            build(&machine, &config, HaloEngine::Compiled).with_obs(ObsConfig::detailed());
        let obs_report = observed.run_mut(iters);
        let obs_identical = obs_report == plain_report;
        let t_obs = time_runs(&mut observed, iters, reps);
        let obs_overhead_pct = (t_obs / t_cmp - 1.0) * 100.0;
        let rec = observed.obs().expect("recorder attached");
        let summary = rec.summary().clone();
        let step_hist = rec.hist_step_time().summary();
        let wait_hist = rec.hist_rank_wait().summary();
        let imbalance_factor = rec.analysis().overall_imbalance;
        let ring_dropped = rec.ring().dropped();

        println!(
            "{ranks:>5} ranks: reference {:>9.0} steps/s, compiled {:>9.0} steps/s, speedup {speedup:.1}x, identical: {identical}",
            steps as f64 / t_ref,
            steps as f64 / t_cmp,
        );
        println!(
            "       obs: overhead {obs_overhead_pct:+.2}%, identical: {obs_identical}, \
             wait {:.1}s, avg hops {:.2}, stall {:.3}s",
            summary.halo_wait,
            summary.avg_hops(),
            summary.stall,
        );
        println!(
            "       obs: step p50 {:.4}s p99 {:.4}s, rank-wait p99 {:.4}s, \
             imbalance {imbalance_factor:.3}, ring dropped {ring_dropped}",
            step_hist.p50, step_hist.p99, wait_hist.p99,
        );
        results.push(SizeResult {
            ranks,
            halo_steps_per_run: steps,
            reference: EngineResult {
                steps_per_sec: steps as f64 / t_ref,
                seconds_per_run: t_ref,
            },
            compiled: EngineResult {
                steps_per_sec: steps as f64 / t_cmp,
                seconds_per_run: t_cmp,
            },
            speedup,
            reports_identical: identical,
            obs: ObsBreakdown {
                steps_recorded: summary.steps,
                compute_seconds: summary.compute,
                halo_wait_seconds: summary.halo_wait,
                bytes_moved: summary.bytes,
                avg_hops: summary.avg_hops(),
                stall_seconds: summary.stall,
                obs_overhead_pct,
                obs_identical,
                step_time_p50: step_hist.p50,
                step_time_p99: step_hist.p99,
                rank_wait_p99: wait_hist.p99,
                imbalance_factor,
                ring_dropped,
            },
        });
    }

    let out = BenchOutput {
        benchmark: "netsim halo-step engine, two 415x445 nests, concurrent, BG/L".into(),
        iterations_per_run: iters,
        repetitions: reps,
        results,
    };
    let json = serde_json::to_string_pretty(&out).unwrap();
    std::fs::write("BENCH_netsim.json", &json).unwrap();
    println!("\nwrote BENCH_netsim.json");
}

//! Fig. 3(b) — Partitions of the processor space in the ratio of execution
//! times 0.15 : 0.3 : 0.35 : 0.2, rendered as ASCII art.

use nestwx_alloc::partition_grid;
use nestwx_bench::banner;
use nestwx_grid::ProcGrid;

fn main() {
    banner(
        "fig03",
        "processor-space partitioning for ratios 0.15:0.3:0.35:0.2",
    );
    let grid = ProcGrid::new(32, 32);
    let ratios = [0.15, 0.3, 0.35, 0.2];
    let parts = partition_grid(&grid, &ratios).unwrap();

    // Paint the grid.
    let mut canvas = vec![vec![' '; grid.px as usize]; grid.py as usize];
    for p in &parts {
        let c = char::from(b'1' + p.domain as u8);
        for (x, y) in p.rect.cells() {
            canvas[y as usize][x as usize] = c;
        }
    }
    for line in canvas {
        println!("  {}", line.iter().collect::<String>());
    }
    println!();
    for (p, r) in parts.iter().zip(&ratios) {
        println!(
            "  nest {}: {:>3} processors ({:.1}% of 1024, target {:.0}%)  rect {}x{} at ({},{})  squareness {:.2}",
            p.domain + 1,
            p.rect.area(),
            p.rect.area() as f64 / 1024.0 * 100.0,
            r * 100.0,
            p.rect.w,
            p.rect.h,
            p.rect.x0,
            p.rect.y0,
            p.rect.squareness(),
        );
    }
}

//! Fig. 15 — Scalability and speedup of the default sequential strategy and
//! the concurrent strategy, two 259×229 siblings, 32 … 1024 BG/L cores.
//!
//! Paper: both approaches share the same saturation limit, the concurrent
//! strategy is faster at every core count, and its speedup pulls ahead at
//! high core counts (the simulation stops scaling beyond ≈ 700 cores).

use nestwx_bench::{banner, pacific_parent, row, MEASURE_ITERS};
use nestwx_core::{compare_strategies, Planner};
use nestwx_grid::NestSpec;
use nestwx_netsim::Machine;

fn main() {
    banner(
        "fig15",
        "scalability & speedup, two 259×229 siblings on BG/L",
    );
    let parent = pacific_parent();
    let nests = vec![
        NestSpec::new(259, 229, 3, (10, 12)),
        NestSpec::new(259, 229, 3, (150, 150)),
    ];
    let widths = [7, 12, 12, 12, 12, 12];
    println!(
        "{}",
        row(
            &[
                "cores".into(),
                "seq s/iter".into(),
                "conc s/iter".into(),
                "seq spdup".into(),
                "conc spdup".into(),
                "improve %".into(),
            ],
            &widths
        )
    );
    let mut seq0 = None;
    let mut conc0 = None;
    for cores in [32u32, 64, 128, 256, 512, 1024] {
        let planner = Planner::new(Machine::bgl(cores));
        let cmp = compare_strategies(&planner, &parent, &nests, MEASURE_ITERS).unwrap();
        let (s, c) = (
            cmp.default_run.per_iteration(),
            cmp.planned_run.per_iteration(),
        );
        let s0 = *seq0.get_or_insert(s);
        let c0 = *conc0.get_or_insert(c);
        println!(
            "{}",
            row(
                &[
                    cores.to_string(),
                    format!("{s:.3}"),
                    format!("{c:.3}"),
                    format!("{:.2}", s0 / s),
                    format!("{:.2}", c0 / c),
                    format!("{:.2}", cmp.improvement_pct()),
                ],
                &widths
            )
        );
    }
    println!("\nPaper shape: concurrent is never slower, and its advantage widens as the");
    println!("simulation approaches its scalability limit near the full rack.");
}

//! Fig. 10 — Sibling execution times for three large nests on up to 8192
//! BG/P cores.
//!
//! Paper: nests 586×643, 856×919 and 925×850; improvement grows from
//! 1.33 % at 1024 cores to 20.64 % at 8192 because the large domains only
//! reach their scalability saturation at high core counts.

use nestwx_bench::{banner, row, MEASURE_ITERS};
use nestwx_core::{compare_strategies, Planner};
use nestwx_grid::{Domain, NestSpec};
use nestwx_netsim::Machine;

fn main() {
    banner(
        "fig10",
        "large siblings (586×643, 856×919, 925×850) on BG/P",
    );
    let parent = Domain::parent(572, 614, 24.0);
    let nests = vec![
        NestSpec::new(586, 643, 3, (10, 10)),
        NestSpec::new(856, 919, 3, (250, 10)),
        NestSpec::new(925, 850, 3, (10, 300)),
    ];
    let widths = [7, 12, 12, 14, 10];
    println!(
        "{}",
        row(
            &[
                "cores".into(),
                "default s".into(),
                "parallel s".into(),
                "improve (%)".into(),
                "paper".into()
            ],
            &widths
        )
    );
    let paper = ["1.33", "", "", "20.64"];
    for (i, cores) in [1024u32, 2048, 4096, 8192].into_iter().enumerate() {
        let planner = Planner::new(Machine::bgp(cores));
        let cmp = compare_strategies(&planner, &parent, &nests, MEASURE_ITERS).unwrap();
        println!(
            "{}",
            row(
                &[
                    cores.to_string(),
                    format!("{:.3}", cmp.default_run.per_iteration()),
                    format!("{:.3}", cmp.planned_run.per_iteration()),
                    format!("{:+.2}", cmp.improvement_pct()),
                    paper[i].into(),
                ],
                &widths
            )
        );
    }
    println!("\nPaper shape: negligible gain at 1024 cores, ≈ 20 % at 8192 —");
    println!("large nests saturate later, so the divide-and-conquer win appears at scale.");
}

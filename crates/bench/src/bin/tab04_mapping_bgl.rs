//! Table 4 + Fig. 11 — Execution times per iteration for the default
//! strategy and the four mappings on 1024 BG/L cores, plus percentage
//! improvements in execution and MPI_Wait times.
//!
//! Paper (Table 4, seconds/iteration):
//! default | oblivious | partition | multi-level | TXYZ
//!   2.77  |   2.25    |   2.10    |    2.07     | 2.12
//!   3.69  |   3.08    |   2.95    |    2.92     | 2.95
//!   3.43  |   2.89    |   2.72    |    2.72     | 2.83
//!   4.98  |   3.92    |   3.72    |    3.72     | 3.99
//!   4.75  |   3.53    |   3.39    |    3.33     | 3.44
//! (rows 1–3: 2 siblings, row 4: 3 siblings, row 5: 4 siblings)

use nestwx_bench::{
    banner, pacific_parent, random_nests, rng_for, row, run_parallel, MEASURE_ITERS,
};
use nestwx_core::{MappingKind, Planner, Strategy};
use nestwx_grid::NestSpec;
use nestwx_netsim::{Machine, SimReport};

fn run(planner: &Planner, nests: &[NestSpec]) -> SimReport {
    planner
        .plan(&pacific_parent(), nests)
        .unwrap()
        .simulate(MEASURE_ITERS)
        .unwrap()
}

fn main() {
    banner(
        "tab04",
        "mapping comparison on BG/L(1024): Table 4 and Fig. 11",
    );
    let parent = pacific_parent();
    let mut rng = rng_for("tab04");
    // Five configurations: three 2-sibling, one 3-sibling, one 4-sibling.
    let configs: Vec<Vec<NestSpec>> = [2usize, 2, 2, 3, 4]
        .iter()
        .map(|&k| random_nests(&mut rng, k, 250 * 250, 394 * 418, &parent))
        .collect();

    let base = Planner::new(Machine::bgl_rack());
    let widths = [5, 9, 11, 11, 11, 9];
    println!(
        "{}",
        row(
            &[
                "cfg".into(),
                "default".into(),
                "oblivious".into(),
                "partition".into(),
                "multilevel".into(),
                "TXYZ".into()
            ],
            &widths
        )
    );
    // All (config, variant) measurements are independent: flatten into one
    // job list and fan out across cores. `None` is the default
    // (sequential-strategy) baseline; `Some(m)` a concurrent run mapped
    // with `m`.
    let jobs: Vec<(usize, Option<MappingKind>)> = (0..configs.len())
        .flat_map(|i| {
            std::iter::once((i, None)).chain(MappingKind::ALL.iter().map(move |&m| (i, Some(m))))
        })
        .collect();
    let reports = run_parallel(&jobs, |&(i, variant)| match variant {
        None => run(
            &base
                .clone()
                .strategy(Strategy::Sequential)
                .mapping(MappingKind::Oblivious),
            &configs[i],
        ),
        Some(m) => run(&base.clone().mapping(m), &configs[i]),
    });
    let per_cfg = 1 + MappingKind::ALL.len();
    for (i, nests) in configs.iter().enumerate() {
        let default = &reports[i * per_cfg];
        let runs = &reports[i * per_cfg + 1..(i + 1) * per_cfg];
        // Order: oblivious, txyz, partition, multilevel → print paper order.
        println!(
            "{}",
            row(
                &[
                    format!("{} ({}s)", i + 1, nests.len()),
                    format!("{:.2}", default.per_iteration()),
                    format!("{:.2}", runs[0].per_iteration()),
                    format!("{:.2}", runs[2].per_iteration()),
                    format!("{:.2}", runs[3].per_iteration()),
                    format!("{:.2}", runs[1].per_iteration()),
                ],
                &widths
            )
        );
        // Fig. 11 rows: improvement over default.
        let imp = |r: &SimReport| r.improvement_over(default);
        let wimp = |r: &SimReport| (1.0 - r.mpi_wait_total / default.mpi_wait_total) * 100.0;
        println!(
            "{}",
            row(
                &[
                    "".into(),
                    "exec +%".into(),
                    format!("{:.1}", imp(&runs[0])),
                    format!("{:.1}", imp(&runs[2])),
                    format!("{:.1}", imp(&runs[3])),
                    format!("{:.1}", imp(&runs[1])),
                ],
                &widths
            )
        );
        println!(
            "{}",
            row(
                &[
                    "".into(),
                    "wait +%".into(),
                    format!("{:.1}", wimp(&runs[0])),
                    format!("{:.1}", wimp(&runs[2])),
                    format!("{:.1}", wimp(&runs[3])),
                    format!("{:.1}", wimp(&runs[1])),
                ],
                &widths
            )
        );
    }
    println!("\nPaper shape: topology-aware (partition/multi-level) beat oblivious by a few %,");
    println!("multi-level ⩾ partition, and both beat the Blue Gene TXYZ mapfile ordering.");
}

//! Table 4 + Fig. 11 — Execution times per iteration for the default
//! strategy and the four mappings on 1024 BG/L cores, plus percentage
//! improvements in execution and MPI_Wait times.
//!
//! Paper (Table 4, seconds/iteration):
//! default | oblivious | partition | multi-level | TXYZ
//!   2.77  |   2.25    |   2.10    |    2.07     | 2.12
//!   3.69  |   3.08    |   2.95    |    2.92     | 2.95
//!   3.43  |   2.89    |   2.72    |    2.72     | 2.83
//!   4.98  |   3.92    |   3.72    |    3.72     | 3.99
//!   4.75  |   3.53    |   3.39    |    3.33     | 3.44
//! (rows 1–3: 2 siblings, row 4: 3 siblings, row 5: 4 siblings)
//!
//! The MPI_Wait rows come from the observability layer's recorded step
//! metrics ([`ObsSummary::halo_wait`]). Pass `--trace-out <path>` (or set
//! `NESTWX_TRACE`) to dump a Chrome trace of config 1's partition-mapped
//! run.

use nestwx_bench::{
    banner, pacific_parent, random_nests, rng_for, row, run_parallel, trace_out, write_trace,
    MEASURE_ITERS,
};
use nestwx_core::{MappingKind, Planner, Strategy};
use nestwx_grid::NestSpec;
use nestwx_netsim::{Machine, ObsConfig, ObsSummary, SimReport};

/// One measured variant: the report, recorded totals, and the per-rank
/// load-imbalance factor (max/mean busy) from the detailed timeline.
fn run(planner: &Planner, nests: &[NestSpec]) -> (SimReport, ObsSummary, f64) {
    let (report, rec) = planner
        .plan(&pacific_parent(), nests)
        .unwrap()
        .simulate_observed(MEASURE_ITERS, ObsConfig::detailed())
        .unwrap();
    let imbalance = rec.analysis().overall_imbalance;
    (report, rec.summary().clone(), imbalance)
}

fn main() {
    banner(
        "tab04",
        "mapping comparison on BG/L(1024): Table 4 and Fig. 11",
    );
    let parent = pacific_parent();
    let mut rng = rng_for("tab04");
    // Five configurations: three 2-sibling, one 3-sibling, one 4-sibling.
    let configs: Vec<Vec<NestSpec>> = [2usize, 2, 2, 3, 4]
        .iter()
        .map(|&k| random_nests(&mut rng, k, 250 * 250, 394 * 418, &parent))
        .collect();

    let base = Planner::new(Machine::bgl_rack());
    let widths = [5, 9, 11, 11, 11, 9];
    println!(
        "{}",
        row(
            &[
                "cfg".into(),
                "default".into(),
                "oblivious".into(),
                "partition".into(),
                "multilevel".into(),
                "TXYZ".into()
            ],
            &widths
        )
    );
    // All (config, variant) measurements are independent: flatten into one
    // job list and fan out across cores. `None` is the default
    // (sequential-strategy) baseline; `Some(m)` a concurrent run mapped
    // with `m`.
    let jobs: Vec<(usize, Option<MappingKind>)> = (0..configs.len())
        .flat_map(|i| {
            std::iter::once((i, None)).chain(MappingKind::ALL.iter().map(move |&m| (i, Some(m))))
        })
        .collect();
    let results = run_parallel(&jobs, |&(i, variant)| match variant {
        None => run(
            &base
                .clone()
                .strategy(Strategy::Sequential)
                .mapping(MappingKind::Oblivious),
            &configs[i],
        ),
        Some(m) => run(&base.clone().mapping(m), &configs[i]),
    });
    let per_cfg = 1 + MappingKind::ALL.len();
    for (i, nests) in configs.iter().enumerate() {
        let (default, default_obs, default_imb) = &results[i * per_cfg];
        let runs = &results[i * per_cfg + 1..(i + 1) * per_cfg];
        // Order: oblivious, txyz, partition, multilevel → print paper order.
        println!(
            "{}",
            row(
                &[
                    format!("{} ({}s)", i + 1, nests.len()),
                    format!("{:.2}", default.per_iteration()),
                    format!("{:.2}", runs[0].0.per_iteration()),
                    format!("{:.2}", runs[2].0.per_iteration()),
                    format!("{:.2}", runs[3].0.per_iteration()),
                    format!("{:.2}", runs[1].0.per_iteration()),
                ],
                &widths
            )
        );
        // Fig. 11 rows: improvement over default. MPI_Wait comes from the
        // recorded step metrics, not the simulator's accumulator.
        let imp = |r: &(SimReport, ObsSummary, f64)| r.0.improvement_over(default);
        let wimp = |r: &(SimReport, ObsSummary, f64)| {
            (1.0 - r.1.halo_wait / default_obs.halo_wait) * 100.0
        };
        println!(
            "{}",
            row(
                &[
                    "".into(),
                    "exec +%".into(),
                    format!("{:.1}", imp(&runs[0])),
                    format!("{:.1}", imp(&runs[2])),
                    format!("{:.1}", imp(&runs[3])),
                    format!("{:.1}", imp(&runs[1])),
                ],
                &widths
            )
        );
        println!(
            "{}",
            row(
                &[
                    "".into(),
                    "wait +%".into(),
                    format!("{:.1}", wimp(&runs[0])),
                    format!("{:.1}", wimp(&runs[2])),
                    format!("{:.1}", wimp(&runs[3])),
                    format!("{:.1}", wimp(&runs[1])),
                ],
                &widths
            )
        );
        // Load-imbalance factor per variant ("imbal" row; default shown in
        // the second column) — max/mean rank busy from the timelines.
        println!(
            "{}",
            row(
                &[
                    "imbal".into(),
                    format!("{default_imb:.3}"),
                    format!("{:.3}", runs[0].2),
                    format!("{:.3}", runs[2].2),
                    format!("{:.3}", runs[3].2),
                    format!("{:.3}", runs[1].2),
                ],
                &widths
            )
        );
    }
    if let Some(path) = trace_out() {
        let (_, rec) = base
            .clone()
            .mapping(MappingKind::Partition)
            .plan(&parent, &configs[0])
            .unwrap()
            .simulate_observed(MEASURE_ITERS, ObsConfig::counters())
            .unwrap();
        write_trace(&rec, &path);
    }
    println!("\nPaper shape: topology-aware (partition/multi-level) beat oblivious by a few %,");
    println!("multi-level ⩾ partition, and both beat the Blue Gene TXYZ mapfile ordering.");
}

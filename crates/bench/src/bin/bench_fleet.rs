//! Socket-halo overhead of the fleet vs the in-process baseline.
//!
//! Runs a fixed two-nest scenario through the in-process threaded
//! runtime (`run_iterations` — no sockets, the baseline), then through
//! complete socket fleets at 1, 2 and 4 workers (`execute_in_process`:
//! loopback TCP, the full frame protocol, worker threads standing in for
//! worker processes — the wire path is identical). For every fleet size
//! it asserts the merged `SimReport` is byte-identical to the baseline
//! and records the wall-clock overhead the sockets add, plus the
//! measured socket traffic. Writes `BENCH_fleet.json` in the current
//! directory; `perf_gate --fleet` gates it.
//!
//! Knobs: `NESTWX_BENCH_FLEET_ITERS` (parent iterations per timed run,
//! default 200) and `NESTWX_BENCH_REPS` (timed repetitions, best-of,
//! default 3).

use nestwx_bench::{banner, env_u32};
use nestwx_fleet::{build_model, execute_in_process, FleetConfig};
use nestwx_grid::{Domain, NestSpec};
use nestwx_miniwrf::runtime::{run_iterations, ThreadStrategy};
use nestwx_miniwrf::SimReport;
use nestwx_obs::clock;
use serde::Serialize;
use std::time::Duration;

const RANKS: u64 = 64;

fn scenario() -> (Domain, Vec<NestSpec>) {
    let parent = Domain::parent(96, 84, 24.0);
    let nests = vec![
        NestSpec::new(40, 40, 3, (6, 6)),
        NestSpec::new(32, 32, 2, (52, 40)),
    ];
    (parent, nests)
}

fn config(workers: usize) -> FleetConfig {
    FleetConfig {
        workers,
        threads: 1,
        connect_timeout: Duration::from_secs(10),
        frame_timeout: Duration::from_secs(30),
    }
}

/// Best-of-`reps` wall seconds for the in-process baseline (one warm-up
/// run first), plus the baseline report for identity checks.
fn time_baseline(iters: u32, reps: u32) -> (f64, SimReport) {
    let (parent, nests) = scenario();
    let run = || {
        let mut model = build_model(&parent, &nests);
        run_iterations(&mut model, iters, 1, &ThreadStrategy::Sequential);
        SimReport::from_model(&model, RANKS)
    };
    let report = run(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = clock::now();
        let rep = run();
        best = best.min(t0.elapsed().as_secs_f64());
        assert_eq!(rep.digest, report.digest, "baseline not deterministic");
    }
    (best, report)
}

#[derive(Serialize)]
struct WorkerResult {
    workers: usize,
    seconds_per_run: f64,
    iters_per_sec: f64,
    /// (fleet − baseline) / baseline wall time, percent — the cost of
    /// moving every halo over a socket instead of a function call.
    overhead_pct: f64,
    /// Merged report byte-identical to the in-process baseline.
    digests_match: bool,
    /// Geometry-derived halo bytes (deterministic, equal across sizes).
    logical_halo_bytes: u64,
    /// Bytes the coordinator actually pushed onto sockets (best run).
    socket_bytes_out: u64,
    socket_bytes_in: u64,
    frames_in: u64,
    /// Coordinator seconds blocked on worker frames (best run).
    coordinator_wait_s: f64,
}

#[derive(Serialize)]
struct BenchOutput {
    benchmark: String,
    iterations_per_run: u32,
    repetitions: u32,
    baseline_seconds_per_run: f64,
    baseline_iters_per_sec: f64,
    digests_match: bool,
    results: Vec<WorkerResult>,
}

fn main() {
    banner("bench_fleet", "socket-halo fleet vs in-process baseline");
    let iters = env_u32("NESTWX_BENCH_FLEET_ITERS", 200);
    let reps = env_u32("NESTWX_BENCH_REPS", 3);

    let (t_base, baseline) = time_baseline(iters, reps);
    println!(
        "baseline: {:.4}s per run ({:.1} iters/s), digest {}",
        t_base,
        iters as f64 / t_base,
        baseline.digest
    );

    let (parent, nests) = scenario();
    let mut results = Vec::new();
    let mut all_match = true;
    for workers in [1usize, 2, 4] {
        let cfg = config(workers);
        let fleet = |cfg: &FleetConfig| {
            execute_in_process(&parent, &nests, iters as u64, RANKS, &[], cfg)
                .unwrap_or_else(|e| panic!("{workers}-worker fleet failed: {e}"))
        };
        let warm = fleet(&cfg);
        let mut best = f64::INFINITY;
        let mut best_run = warm;
        for _ in 0..reps {
            let t0 = clock::now();
            let run = fleet(&cfg);
            let dt = t0.elapsed().as_secs_f64();
            if dt < best {
                best = dt;
                best_run = run;
            }
        }
        let digests_match = best_run.report.to_json() == baseline.to_json();
        all_match &= digests_match;
        let overhead_pct = (best / t_base - 1.0) * 100.0;
        let co = &best_run.summary.coordinator;
        println!(
            "{workers} worker(s): {best:.4}s per run ({overhead_pct:+.1}% vs baseline), \
             {} socket bytes out, identical: {digests_match}",
            co.bytes_out
        );
        results.push(WorkerResult {
            workers,
            seconds_per_run: best,
            iters_per_sec: iters as f64 / best,
            overhead_pct,
            digests_match,
            logical_halo_bytes: best_run.summary.logical_halo_bytes,
            socket_bytes_out: co.bytes_out,
            socket_bytes_in: co.bytes_in,
            frames_in: co.frames_in,
            coordinator_wait_s: co.wait_s,
        });
    }

    let out = BenchOutput {
        benchmark: "fleet socket-halo overhead, 96x84 parent + two nests, loopback TCP".into(),
        iterations_per_run: iters,
        repetitions: reps,
        baseline_seconds_per_run: t_base,
        baseline_iters_per_sec: iters as f64 / t_base,
        digests_match: all_match,
        results,
    };
    let json = serde_json::to_string_pretty(&out).unwrap();
    std::fs::write("BENCH_fleet.json", &json).unwrap();
    println!("\nwrote BENCH_fleet.json");
    assert!(all_match, "fleet diverged from the in-process baseline");
}

//! Fig. 13 + Fig. 14 — High-frequency output on BG/P: integration, I/O and
//! total per-iteration times vs core count, and the integration/I/O time
//! fractions.
//!
//! Paper: with 10-minute output, the sequential version's per-iteration
//! PnetCDF time *increases steadily* with core count while the parallel
//! sibling version keeps I/O low; the I/O fraction of total time grows with
//! core count for the sequential strategy (reaching 20–40 %).

use nestwx_bench::{banner, pacific_parent, random_nests, rng_for, row, MEASURE_ITERS};
use nestwx_core::{compare_strategies, Planner};
use nestwx_netsim::{IoMode, Machine};

fn main() {
    banner(
        "fig13",
        "high-frequency output scaling on BG/P (PnetCDF every iteration)",
    );
    let parent = pacific_parent();
    let mut rng = rng_for("fig13");
    let nests = random_nests(&mut rng, 3, 250 * 250, 394 * 418, &parent);

    let widths = [7, 11, 11, 11, 11, 11, 11];
    println!(
        "{}",
        row(
            &[
                "cores".into(),
                "seq integ".into(),
                "seq I/O".into(),
                "seq total".into(),
                "par integ".into(),
                "par I/O".into(),
                "par total".into(),
            ],
            &widths
        )
    );
    let mut fractions = Vec::new();
    for cores in [512u32, 1024, 2048, 4096, 8192] {
        let planner = Planner::new(Machine::bgp(cores)).output(IoMode::PnetCdf, 1);
        let cmp = compare_strategies(&planner, &parent, &nests, MEASURE_ITERS).unwrap();
        let (d, p) = (&cmp.default_run, &cmp.planned_run);
        println!(
            "{}",
            row(
                &[
                    cores.to_string(),
                    format!("{:.3}", d.integration_per_iter()),
                    format!("{:.3}", d.io_per_iter()),
                    format!("{:.3}", d.per_iteration()),
                    format!("{:.3}", p.integration_per_iter()),
                    format!("{:.3}", p.io_per_iter()),
                    format!("{:.3}", p.per_iteration()),
                ],
                &widths
            )
        );
        fractions.push((
            cores,
            d.io_per_iter() / d.per_iteration() * 100.0,
            p.io_per_iter() / p.per_iteration() * 100.0,
        ));
    }

    println!("\nFig. 14 — I/O fraction of total per-iteration time:");
    let widths = [7, 14, 14];
    println!(
        "{}",
        row(
            &["cores".into(), "seq I/O %".into(), "par I/O %".into()],
            &widths
        )
    );
    for (cores, seq, par) in fractions {
        println!(
            "{}",
            row(
                &[cores.to_string(), format!("{seq:.1}"), format!("{par:.1}")],
                &widths
            )
        );
    }
    println!("\nPaper shape: sequential I/O time and fraction grow with core count");
    println!("(PnetCDF scalability bottleneck); parallel siblings keep both low.");
}

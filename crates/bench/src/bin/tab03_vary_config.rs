//! Table 3 + §4.3.4 — Effect of varying sibling configurations.
//!
//! Paper: improvement *increases* with sibling count (19.43 % at 2 vs
//! 24.22 % at 4) and *decreases* with maximum nest size (25.62 % for
//! 205×223, 21.87 % for 394×418, 10.11 % for 925×820 on up to 8192 BG/P
//! cores).

use nestwx_bench::{
    banner, env_usize, mean, pacific_parent, random_nests, rng_for, row, MEASURE_ITERS,
};
use nestwx_core::{compare_strategies, Planner};
use nestwx_grid::{Domain, NestSpec};
use nestwx_netsim::Machine;

fn main() {
    let configs = env_usize("NESTWX_CONFIGS", 8);
    banner("tab03", "improvement vs sibling count and nest size");

    // ---- varying number of siblings (BG/L 1024) ----
    println!("\n§4.3.4 — varying number of siblings, BG/L(1024), {configs} configs each:");
    let parent = pacific_parent();
    let planner = Planner::new(Machine::bgl_rack());
    for k in [2usize, 3, 4] {
        let mut rng = rng_for("tab03-siblings");
        let mut imps = Vec::new();
        for _ in 0..configs {
            let nests = random_nests(&mut rng, k, 178 * 202, 394 * 418, &parent);
            let cmp = compare_strategies(&planner, &parent, &nests, MEASURE_ITERS).unwrap();
            imps.push(cmp.improvement_pct());
        }
        let paper = match k {
            2 => "  (paper: 19.43 %)",
            4 => "  (paper: 24.22 %)",
            _ => "",
        };
        println!("  {k} siblings: avg {:>6.2} %{paper}", mean(&imps));
    }

    // ---- varying maximum nest size (BG/P 8192) ----
    println!("\nTable 3 — varying maximum nest size, BG/P(8192), 3 siblings:");
    let widths = [16, 14, 10];
    println!(
        "{}",
        row(
            &["max nest".into(), "improve (%)".into(), "paper".into()],
            &widths
        )
    );
    let planner = Planner::new(Machine::bgp(8192));
    let cases: [((u32, u32), &str, Domain); 3] = [
        ((205, 223), "25.62", pacific_parent()),
        ((394, 418), "21.87", pacific_parent()),
        ((925, 820), "10.11", Domain::parent(572, 614, 24.0)),
    ];
    for ((nx, ny), paper, parent) in cases {
        // Three siblings: the named maximum nest plus two at ~2/3 scale.
        let nests = vec![
            NestSpec::new(nx, ny, 3, (10, 10)),
            NestSpec::new(nx * 2 / 3, ny * 2 / 3, 3, (parent.nx / 2, 10)),
            NestSpec::new(nx * 3 / 4, ny * 3 / 4, 3, (10, parent.ny / 2)),
        ];
        let cmp = compare_strategies(&planner, &parent, &nests, MEASURE_ITERS).unwrap();
        println!(
            "{}",
            row(
                &[
                    format!("{nx}x{ny}"),
                    format!("{:.2}", cmp.improvement_pct()),
                    paper.into()
                ],
                &widths
            )
        );
    }
    println!("\nPaper shape: larger nests ⇒ later saturation ⇒ smaller improvement.");
}

//! Table 1 — Average and maximum improvement in MPI_Wait times on BG/L and
//! BG/P.
//!
//! Paper values: 1024 BG/L 38.42 % / 66.30 %; 512 BG/P 30.70 / 60.92;
//! 1024 BG/P 36.01 / 60.11; 2048 BG/P 27.02 / 55.54; 4096 BG/P
//! 28.68 / 43.86.

use nestwx_bench::{banner, max, mean, pacific_parent, random_nests, rng_for, row, MEASURE_ITERS};
use nestwx_core::{compare_strategies, Planner};
use nestwx_netsim::Machine;

fn main() {
    let configs: usize = std::env::var("NESTWX_CONFIGS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    banner(
        "tab01",
        &format!("MPI_Wait improvement, {configs} configs per machine"),
    );
    let parent = pacific_parent();
    let widths = [16, 12, 12, 22];
    println!(
        "{}",
        row(
            &[
                "machine".into(),
                "avg (%)".into(),
                "max (%)".into(),
                "paper avg/max (%)".into()
            ],
            &widths
        )
    );
    let machines: [(Machine, &str); 5] = [
        (Machine::bgl_rack(), "38.42 / 66.30"),
        (Machine::bgp(512), "30.70 / 60.92"),
        (Machine::bgp(1024), "36.01 / 60.11"),
        (Machine::bgp(2048), "27.02 / 55.54"),
        (Machine::bgp(4096), "28.68 / 43.86"),
    ];
    for (machine, paper) in machines {
        let name = machine.name.clone();
        let planner = Planner::new(machine);
        let mut rng = rng_for("tab01");
        let mut imps = Vec::new();
        for i in 0..configs {
            let k = 2 + (i % 3);
            let nests = random_nests(&mut rng, k, 178 * 202, 394 * 418, &parent);
            let cmp = compare_strategies(&planner, &parent, &nests, MEASURE_ITERS).unwrap();
            imps.push(cmp.mpi_wait_improvement_pct());
        }
        println!(
            "{}",
            row(
                &[
                    name,
                    format!("{:.2}", mean(&imps)),
                    format!("{:.2}", max(&imps)),
                    paper.into()
                ],
                &widths
            )
        );
    }
}

//! Table 1 — Average and maximum improvement in MPI_Wait times on BG/L and
//! BG/P.
//!
//! Paper values: 1024 BG/L 38.42 % / 66.30 %; 512 BG/P 30.70 / 60.92;
//! 1024 BG/P 36.01 / 60.11; 2048 BG/P 27.02 / 55.54; 4096 BG/P
//! 28.68 / 43.86.
//!
//! The improvements are computed from the observability layer's recorded
//! [`StepMetrics`](nestwx_netsim::StepMetrics) totals — the per-step
//! MPI_Wait deltas summed by `nestwx-obs` — and cross-checked against the
//! simulator's internal `SimReport` accumulator (the two differ only in
//! float summation order). Pass `--trace-out <path>` (or set
//! `NESTWX_TRACE`) to also dump a Chrome trace of the first planned run.

use nestwx_bench::{
    banner, env_usize, max, mean, pacific_parent, random_nests, rng_for, row, trace_out,
    write_trace, MEASURE_ITERS,
};
use nestwx_core::{compare_strategies_observed, Planner};
use nestwx_netsim::{Machine, ObsConfig};

fn main() {
    let configs = env_usize("NESTWX_CONFIGS", 10);
    banner(
        "tab01",
        &format!("MPI_Wait improvement, {configs} configs per machine"),
    );
    let parent = pacific_parent();
    let trace_path = trace_out();
    let widths = [16, 12, 12, 10, 10, 22];
    println!(
        "{}",
        row(
            &[
                "machine".into(),
                "avg (%)".into(),
                "max (%)".into(),
                "imb dflt".into(),
                "imb d&c".into(),
                "paper avg/max (%)".into()
            ],
            &widths
        )
    );
    let machines: [(Machine, &str); 5] = [
        (Machine::bgl_rack(), "38.42 / 66.30"),
        (Machine::bgp(512), "30.70 / 60.92"),
        (Machine::bgp(1024), "36.01 / 60.11"),
        (Machine::bgp(2048), "27.02 / 55.54"),
        (Machine::bgp(4096), "28.68 / 43.86"),
    ];
    let mut traced = false;
    for (machine, paper) in machines {
        let name = machine.name.clone();
        let planner = Planner::new(machine);
        let mut rng = rng_for("tab01");
        let mut imps = Vec::new();
        let mut imb_default = Vec::new();
        let mut imb_planned = Vec::new();
        for i in 0..configs {
            let k = 2 + (i % 3);
            let nests = random_nests(&mut rng, k, 178 * 202, 394 * 418, &parent);
            let cmp =
                compare_strategies_observed(&planner, &parent, &nests, MEASURE_ITERS).unwrap();
            // Recorded metrics must rebuild the simulator's accumulator up
            // to summation order.
            let report_wait = cmp.comparison.default_run.mpi_wait_total;
            let rel = (cmp.default_obs.halo_wait - report_wait).abs() / report_wait;
            assert!(
                rel < 1e-6,
                "recorded MPI_Wait drifted from SimReport: rel {rel:e}"
            );
            imps.push(cmp.mpi_wait_improvement_pct());
            // Per-rank load-imbalance factor (max/mean busy time) of each
            // strategy, from the recorded timelines.
            imb_default.push(cmp.default_analysis().overall_imbalance);
            imb_planned.push(cmp.planned_analysis().overall_imbalance);
            if !traced {
                if let Some(path) = &trace_path {
                    let (_, rec) = planner
                        .plan(&parent, &nests)
                        .unwrap()
                        .simulate_observed(MEASURE_ITERS, ObsConfig::counters())
                        .unwrap();
                    write_trace(&rec, path);
                    traced = true;
                }
            }
        }
        println!(
            "{}",
            row(
                &[
                    name,
                    format!("{:.2}", mean(&imps)),
                    format!("{:.2}", max(&imps)),
                    format!("{:.3}", mean(&imb_default)),
                    format!("{:.3}", mean(&imb_planned)),
                    paper.into()
                ],
                &widths
            )
        );
    }
}

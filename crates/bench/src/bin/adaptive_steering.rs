//! Extension (§6 future work) — adaptive steering of the sibling
//! allocation: measure each chunk, re-partition from measured work, charge
//! redistribution, continue.
//!
//! Demonstrates recovery from a deliberately bad initial allocation and
//! convergence toward the statically-predicted plan's performance.

use nestwx_bench::{banner, pacific_parent, row};
use nestwx_core::{run_adaptive, AllocPolicy, Planner};
use nestwx_grid::NestSpec;
use nestwx_netsim::Machine;

fn main() {
    banner(
        "adaptive",
        "adaptive re-partitioning (steering) on BG/L(1024)",
    );
    let parent = pacific_parent();
    // Strongly skewed nests: equal allocation is clearly wrong.
    let nests = vec![
        NestSpec::new(415, 445, 3, (10, 10)),
        NestSpec::new(180, 170, 3, (180, 20)),
        NestSpec::new(205, 223, 3, (30, 170)),
    ];
    let machine = Machine::bgl_rack();

    let static_pred = Planner::new(machine.clone());
    let static_equal = Planner::new(machine.clone()).alloc_policy(AllocPolicy::Equal);

    let oracle = static_pred
        .plan(&parent, &nests)
        .unwrap()
        .simulate(12)
        .unwrap();
    let equal = static_equal
        .plan(&parent, &nests)
        .unwrap()
        .simulate(12)
        .unwrap();
    let adaptive = run_adaptive(&static_equal, &parent, &nests, 12, 3).unwrap();

    let widths = [34, 12];
    println!("{}", row(&["strategy".into(), "s/iter".into()], &widths));
    println!(
        "{}",
        row(
            &[
                "static equal split".into(),
                format!("{:.3}", equal.per_iteration())
            ],
            &widths
        )
    );
    println!(
        "{}",
        row(
            &[
                "adaptive (equal start, replan/3 it)".into(),
                format!("{:.3}", adaptive.per_iteration())
            ],
            &widths
        )
    );
    println!(
        "{}",
        row(
            &[
                "static predicted (paper)".into(),
                format!("{:.3}", oracle.per_iteration())
            ],
            &widths
        )
    );
    println!("\nper-chunk per-iteration times (adaptive):");
    for (k, c) in adaptive.chunks.iter().enumerate() {
        println!("  chunk {}: {:.3} s/iter", k + 1, c.per_iteration());
    }
    println!(
        "redistribution charged: {:.3} s total",
        adaptive.redistribution_time
    );
    println!(
        "final measured ratios: {:?}",
        adaptive
            .final_ratios
            .iter()
            .map(|r| (r * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    println!("\nThe measured-ratio re-plan recovers most of the gap between a bad initial");
    println!("allocation and the paper's prediction-driven plan.");
}

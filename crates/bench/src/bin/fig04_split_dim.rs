//! Fig. 4 — Why Algorithm 1 splits along the longer dimension: the
//! resulting rectangles are more square-like, balancing x- and
//! y-communication volumes.

use nestwx_alloc::metrics::mean_squareness;
use nestwx_alloc::partition::{partition_grid_with, SplitDim};
use nestwx_bench::banner;
use nestwx_grid::ProcGrid;

fn main() {
    banner(
        "fig04",
        "first split along longer vs shorter dimension (k = 3)",
    );
    let grid = ProcGrid::new(48, 24);
    let ratios = [0.4, 0.35, 0.25];
    for (label, dim) in [
        ("longer (paper, Fig. 4a)", SplitDim::Longer),
        ("shorter (Fig. 4b)", SplitDim::Shorter),
    ] {
        let parts = partition_grid_with(&grid, &ratios, dim).unwrap();
        println!("\nfirst split along the {label}:");
        for p in &parts {
            println!(
                "  nest {}: {:>2}x{:<2} (squareness {:.2})",
                p.domain + 1,
                p.rect.w,
                p.rect.h,
                p.rect.squareness()
            );
        }
        println!("  mean squareness: {:.3}", mean_squareness(&parts));
    }
    println!("\nPaper: \"rectangle 3 is more square-like in Fig. 4(a) than in Fig. 4(b)\".");
}

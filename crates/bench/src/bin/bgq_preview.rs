//! Extension (§6 future work) — mapping on Blue Gene/Q's 5-D torus.
//!
//! The paper's mapping schemes target the 3-D tori of BG/L and BG/P; §6
//! names the BG/Q 5-D torus as future work. This preview shows that the
//! core claim — contiguous partition placement cuts nest-halo hop counts —
//! carries over: each sibling partition is laid on a contiguous run of a
//! boustrophedon (everywhere-1-hop) walk of the 5-D torus.

use nestwx_bench::banner;
use nestwx_grid::{ProcGrid, Rect};
use nestwx_topo::torus5d::{partition_halo_pairs, Mapping5, Torus5};

fn main() {
    banner("bgq", "5-D torus mapping preview (Blue Gene/Q future work)");
    // One BG/Q rack of 1024 nodes (4×4×4×8×2), one rank per node; the
    // Table 2 partition geometry.
    let torus = Torus5::bgq_rack();
    let grid = ProcGrid::new(32, 32);
    let parts = [
        Rect::new(0, 0, 18, 24),
        Rect::new(0, 24, 18, 8),
        Rect::new(18, 0, 14, 12),
        Rect::new(18, 12, 14, 20),
    ];
    let nest_edges = partition_halo_pairs(&grid, &parts);
    // Parent edges: all neighbour pairs of the full grid.
    let parent_edges = partition_halo_pairs(&grid, &[grid.rect()]);

    println!(
        "torus: {:?} = {} nodes; virtual grid 32x32",
        torus.dims,
        torus.nodes()
    );
    println!(
        "{:<28} {:>12} {:>14}",
        "mapping", "nest hops", "parent hops"
    );
    let ob = Mapping5::oblivious(torus, 1024).unwrap();
    let ps = Mapping5::partition_serpentine(torus, &grid, &parts).unwrap();
    let pf = Mapping5::universal_folded(torus, &grid).expect("32x32 factors over 4·4·4·8·2");
    for (name, m) in [
        ("oblivious (ABCDE order)", &ob),
        ("partition serpentine", &ps),
        ("universal folded (AD)x(BCE)", &pf),
    ] {
        println!(
            "{:<28} {:>12.2} {:>14.2}",
            name,
            m.avg_hops(&nest_edges),
            m.avg_hops(&parent_edges)
        );
    }
    let red = (1.0 - pf.avg_hops(&nest_edges) / ob.avg_hops(&nest_edges)) * 100.0;
    println!("\nuniversal folded mapping: every nest and parent neighbour is 1 hop —");
    println!("{red:.1} % fewer nest-halo hops than oblivious. With five dimensions to");
    println!("combine, the 3-D torus's 'non-foldable' problem disappears whenever the");
    println!("extents factor (power-of-two BG/Q shapes always do).");
}

//! §4.3.1 — Improvement in per-iteration time over 85 random configurations
//! on 1024 BG/L cores.
//!
//! Paper: nest sizes 178×202 … 394×418, 2–4 siblings; average improvement
//! 21.14 %, maximum 33.04 %.
//!
//! Also reports the §4.3.4 split by sibling count (paper: 19.43 % for
//! 2 siblings vs 24.22 % for 4).

use nestwx_bench::{
    banner, env_usize, max, mean, pacific_parent, random_nests, rng_for, MEASURE_ITERS,
};
use nestwx_core::{compare_strategies, Planner};
use nestwx_netsim::Machine;

fn main() {
    let configs = env_usize("NESTWX_CONFIGS", 85);
    banner(
        "sec431",
        &format!("improvement over {configs} random configs on BG/L(1024)"),
    );
    let parent = pacific_parent();
    let planner = Planner::new(Machine::bgl_rack());
    let mut rng = rng_for("sec431");

    let mut by_siblings: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut all = Vec::new();
    for i in 0..configs {
        let k = 2 + (i % 3); // 2, 3 or 4 siblings
        let nests = random_nests(&mut rng, k, 178 * 202, 394 * 418, &parent);
        let cmp = compare_strategies(&planner, &parent, &nests, MEASURE_ITERS).unwrap();
        let imp = cmp.improvement_pct();
        all.push(imp);
        by_siblings[k - 2].push(imp);
        if (i + 1) % 10 == 0 {
            eprintln!("  … {}/{configs}", i + 1);
        }
    }

    println!("configurations : {}", all.len());
    println!(
        "average improvement: {:>6.2} %   (paper: 21.14 %)",
        mean(&all)
    );
    println!(
        "maximum improvement: {:>6.2} %   (paper: 33.04 %)",
        max(&all)
    );
    println!(
        "minimum improvement: {:>6.2} %",
        all.iter().copied().fold(f64::INFINITY, f64::min)
    );
    println!("\nby sibling count (§4.3.4):");
    for (k, imps) in by_siblings.iter().enumerate() {
        println!(
            "  {} siblings: avg {:>6.2} %  over {} configs{}",
            k + 2,
            mean(imps),
            imps.len(),
            match k {
                0 => "   (paper: 19.43 %)",
                2 => "   (paper: 24.22 %)",
                _ => "",
            }
        );
    }
}

//! §4.1.1 — the eight South East Asia configurations: "We experimented with
//! eight different configurations at varying levels of nesting and
//! different number of sibling domains. Three configurations had sibling
//! domains at the second level whereas the remaining ones had siblings at
//! the first level of nesting."
//!
//! Reproduces that configuration family (4.5 km parent, 1.5 km level-1
//! nests, 500 m level-2 nests) and reports the divide-and-conquer
//! improvement for each on a BG/L rack.

use nestwx_bench::{banner, mean, row, MEASURE_ITERS};
use nestwx_core::{compare_strategies, Planner};
use nestwx_grid::{Domain, NestSpec};
use nestwx_netsim::Machine;

fn configs() -> Vec<(&'static str, Vec<NestSpec>)> {
    vec![
        // Five first-level-only configurations.
        (
            "2 siblings L1",
            vec![
                NestSpec::new(240, 210, 3, (20, 20)),
                NestSpec::new(200, 220, 3, (160, 120)),
            ],
        ),
        (
            "3 siblings L1",
            vec![
                NestSpec::new(240, 210, 3, (20, 20)),
                NestSpec::new(180, 160, 3, (220, 30)),
                NestSpec::new(200, 220, 3, (160, 150)),
            ],
        ),
        (
            "4 siblings L1",
            vec![
                NestSpec::new(220, 200, 3, (10, 10)),
                NestSpec::new(180, 160, 3, (240, 20)),
                NestSpec::new(160, 180, 3, (20, 170)),
                NestSpec::new(210, 190, 3, (220, 170)),
            ],
        ),
        (
            "2 siblings L1 (small)",
            vec![
                NestSpec::new(180, 170, 3, (40, 40)),
                NestSpec::new(170, 180, 3, (200, 140)),
            ],
        ),
        (
            "3 siblings L1 (mixed)",
            vec![
                NestSpec::new(260, 230, 3, (10, 20)),
                NestSpec::new(150, 140, 3, (260, 40)),
                NestSpec::new(180, 200, 3, (200, 160)),
            ],
        ),
        // Three configurations with second-level siblings.
        (
            "2 L1 + 2 L2 in first",
            vec![
                NestSpec::new(240, 210, 3, (20, 20)),
                NestSpec::new(180, 190, 3, (200, 150)),
                NestSpec::child_of(0, 90, 90, 3, (12, 12)),
                NestSpec::child_of(0, 81, 60, 3, (140, 130)),
            ],
        ),
        (
            "2 L1 + 2 L2 split",
            vec![
                NestSpec::new(230, 210, 3, (20, 20)),
                NestSpec::new(210, 200, 3, (190, 140)),
                NestSpec::child_of(0, 90, 84, 3, (20, 30)),
                NestSpec::child_of(1, 84, 90, 3, (30, 20)),
            ],
        ),
        (
            "3 L1 + 3 L2",
            vec![
                NestSpec::new(220, 200, 3, (10, 10)),
                NestSpec::new(190, 180, 3, (230, 20)),
                NestSpec::new(180, 190, 3, (40, 160)),
                NestSpec::child_of(0, 84, 81, 3, (20, 20)),
                NestSpec::child_of(1, 75, 72, 3, (30, 30)),
                NestSpec::child_of(2, 72, 75, 3, (25, 25)),
            ],
        ),
    ]
}

fn main() {
    banner(
        "sea",
        "South East Asia: eight configurations, two nesting levels (§4.1.1)",
    );
    let parent = Domain::parent(400, 340, 4.5);
    let planner = Planner::new(Machine::bgl_rack());
    let widths = [24, 8, 11, 11, 11];
    println!(
        "{}",
        row(
            &[
                "configuration".into(),
                "nests".into(),
                "default s".into(),
                "parallel s".into(),
                "improve %".into()
            ],
            &widths
        )
    );
    let mut l1_only = Vec::new();
    let mut with_l2 = Vec::new();
    for (name, nests) in configs() {
        let cmp = compare_strategies(&planner, &parent, &nests, MEASURE_ITERS).unwrap();
        let imp = cmp.improvement_pct();
        if nests.iter().any(|n| n.parent_nest.is_some()) {
            with_l2.push(imp);
        } else {
            l1_only.push(imp);
        }
        println!(
            "{}",
            row(
                &[
                    name.into(),
                    nests.len().to_string(),
                    format!("{:.3}", cmp.default_run.per_iteration()),
                    format!("{:.3}", cmp.planned_run.per_iteration()),
                    format!("{:.2}", imp),
                ],
                &widths
            )
        );
    }
    println!(
        "\nfirst-level-only configs : avg improvement {:.2} %",
        mean(&l1_only)
    );
    println!(
        "second-level configs     : avg improvement {:.2} %",
        mean(&with_l2)
    );
    println!("\nSecond-level siblings sub-partition their parent nest's processors; the");
    println!("divide-and-conquer gain persists across both nesting depths.");
}

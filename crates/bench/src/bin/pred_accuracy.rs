//! §3.1 — Performance-prediction accuracy: Delaunay interpolation vs the
//! naïve points-proportional model.
//!
//! Paper claims: interpolation error < 6 % on test domains (55 900–94 990
//! points, aspect 0.5–1.5); naïve model errs > 19 %.

use nestwx_bench::{banner, mean, row};
use nestwx_core::profile::{measure_domain_time, profile_basis, PROFILE_RANKS};
use nestwx_grid::DomainFeatures;
use nestwx_netsim::Machine;
use nestwx_predict::{ExecTimePredictor, NaivePointsModel};

fn main() {
    banner("pred", "execution-time prediction accuracy (§3.1)");
    let machine = Machine::bgl(64);
    let basis = profile_basis(&machine, 42);
    let model = ExecTimePredictor::fit(&basis).unwrap();
    let naive = NaivePointsModel::fit(&basis);

    // Test domains in the paper's stated range: 55 900–94 990 points,
    // aspect ratios 0.5–1.5, plus scaled-up versions (out-of-hull).
    let tests: [(u32, u32); 10] = [
        (215, 260),
        (230, 243),
        (310, 215),
        (188, 300),
        (260, 360),
        (205, 410),
        (172, 344),
        (365, 244),
        (240, 240),
        (298, 301),
    ];

    let widths = [11, 10, 12, 12, 12, 12];
    println!(
        "{}",
        row(
            &[
                "domain".into(),
                "points".into(),
                "true s".into(),
                "interp s".into(),
                "err%".into(),
                "naive err%".into()
            ],
            &widths
        )
    );
    let mut interp_errs = Vec::new();
    let mut naive_errs = Vec::new();
    for (nx, ny) in tests {
        let truth = measure_domain_time(&machine, nx, ny, PROFILE_RANKS);
        let f = DomainFeatures::from_dims(nx, ny);
        let pred = model.predict(&f).unwrap();
        let npred = naive.predict(&f);
        let e = (pred - truth).abs() / truth * 100.0;
        let ne = (npred - truth).abs() / truth * 100.0;
        interp_errs.push(e);
        naive_errs.push(ne);
        println!(
            "{}",
            row(
                &[
                    format!("{nx}x{ny}"),
                    (nx as u64 * ny as u64).to_string(),
                    format!("{truth:.4}"),
                    format!("{pred:.4}"),
                    format!("{e:.2}"),
                    format!("{ne:.2}"),
                ],
                &widths
            )
        );
    }
    println!(
        "\ninterpolation: mean {:.2}%  max {:.2}%   (paper: <6% for most configurations)",
        mean(&interp_errs),
        nestwx_bench::max(&interp_errs)
    );
    println!(
        "naive points : mean {:.2}%  max {:.2}%   (paper: >19%)",
        mean(&naive_errs),
        nestwx_bench::max(&naive_errs)
    );
}

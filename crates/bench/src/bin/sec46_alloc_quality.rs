//! §4.6 — Allocation quality: the Huffman/split-tree partitioner against
//! the naïve proportional-strips allocator.
//!
//! Paper: on a 4-sibling configuration whose default execution takes
//! 4.49 s/iteration, naïve proportional chunks give 4.08 s (9 %) while the
//! paper's allocator gives 3.72 s (17 %) — an 8 % relative gain.

use nestwx_bench::{banner, pacific_parent, random_nests, rng_for, row, MEASURE_ITERS};
use nestwx_core::{AllocPolicy, MappingKind, Planner, Strategy};
use nestwx_netsim::Machine;

fn main() {
    banner(
        "sec46",
        "allocation quality: Huffman/split-tree vs naïve strips vs equal",
    );
    let parent = pacific_parent();
    let mut rng = rng_for("sec46");
    let base = Planner::new(Machine::bgl_rack());
    let widths = [5, 10, 10, 10, 10, 11, 11, 11];
    println!(
        "{}",
        row(
            &[
                "cfg".into(),
                "default".into(),
                "equal".into(),
                "naive".into(),
                "huffman".into(),
                "equal +%".into(),
                "naive +%".into(),
                "huff +%".into(),
            ],
            &widths
        )
    );
    let mut sums = [0.0f64; 3];
    let n_cfg = 5;
    for i in 0..n_cfg {
        let nests = random_nests(&mut rng, 4, 178 * 202, 415 * 445, &parent);
        let run = |p: Planner| {
            p.plan(&parent, &nests)
                .unwrap()
                .simulate(MEASURE_ITERS)
                .unwrap()
        };
        let default = run(base
            .clone()
            .strategy(Strategy::Sequential)
            .mapping(MappingKind::Oblivious));
        let equal = run(base.clone().alloc_policy(AllocPolicy::Equal));
        let naive = run(base.clone().alloc_policy(AllocPolicy::NaiveProportional));
        let huff = run(base.clone().alloc_policy(AllocPolicy::HuffmanSplitTree));
        sums[0] += equal.improvement_over(&default);
        sums[1] += naive.improvement_over(&default);
        sums[2] += huff.improvement_over(&default);
        println!(
            "{}",
            row(
                &[
                    (i + 1).to_string(),
                    format!("{:.2}", default.per_iteration()),
                    format!("{:.2}", equal.per_iteration()),
                    format!("{:.2}", naive.per_iteration()),
                    format!("{:.2}", huff.per_iteration()),
                    format!("{:.1}", equal.improvement_over(&default)),
                    format!("{:.1}", naive.improvement_over(&default)),
                    format!("{:.1}", huff.improvement_over(&default)),
                ],
                &widths
            )
        );
    }
    println!(
        "{}",
        row(
            &[
                "avg".into(),
                "".into(),
                "".into(),
                "".into(),
                "".into(),
                format!("{:.1}", sums[0] / n_cfg as f64),
                format!("{:.1}", sums[1] / n_cfg as f64),
                format!("{:.1}", sums[2] / n_cfg as f64),
            ],
            &widths
        )
    );
    println!("\nPaper: naïve 9 % vs Huffman/split-tree 17 % over the default —");
    println!("the paper's allocator should dominate the naïve strips on every row.");
}

//! Fig. 8 — Performance improvement on up to 4096 BG/P cores, including and
//! excluding I/O times, averaged over random domain configurations.
//!
//! Paper: improvement is *higher* when I/O is included, because PnetCDF
//! collective writes do not scale with writer count and the parallel
//! strategy writes each sibling's history with fewer ranks.

use nestwx_bench::{
    banner, env_usize, mean, pacific_parent, random_nests, rng_for, row, MEASURE_ITERS,
};
use nestwx_core::{compare_strategies, Planner};
use nestwx_netsim::{IoMode, Machine};

fn main() {
    let configs = env_usize("NESTWX_CONFIGS", 10);
    banner(
        "fig08",
        &format!("improvement incl./excl. I/O on BG/P ({configs} configs per point)"),
    );
    let parent = pacific_parent();
    let widths = [7, 16, 16];
    println!(
        "{}",
        row(
            &[
                "cores".into(),
                "excl. I/O (%)".into(),
                "incl. I/O (%)".into()
            ],
            &widths
        )
    );
    for cores in [512u32, 1024, 2048, 4096] {
        let mut rng = rng_for("fig08");
        let mut excl = Vec::new();
        let mut incl = Vec::new();
        for i in 0..configs {
            let k = 2 + (i % 3);
            let nests = random_nests(&mut rng, k, 178 * 202, 394 * 418, &parent);
            // Excluding I/O.
            let planner = Planner::new(Machine::bgp(cores));
            let cmp = compare_strategies(&planner, &parent, &nests, MEASURE_ITERS).unwrap();
            excl.push(cmp.improvement_pct());
            // Including I/O: PnetCDF history every iteration (high
            // frequency, §4.5).
            let planner = Planner::new(Machine::bgp(cores)).output(IoMode::PnetCdf, 1);
            let cmp = compare_strategies(&planner, &parent, &nests, MEASURE_ITERS).unwrap();
            incl.push(cmp.improvement_pct());
        }
        println!(
            "{}",
            row(
                &[
                    cores.to_string(),
                    format!("{:.2}", mean(&excl)),
                    format!("{:.2}", mean(&incl))
                ],
                &widths
            )
        );
    }
    println!("\nPaper shape: the incl.-I/O bars exceed the excl.-I/O bars at every core count.");
}

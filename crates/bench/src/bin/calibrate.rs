//! Calibration check: verifies the machine-model constants against the
//! paper's quantitative anchors before the experiment binaries are trusted.
//!
//! Anchors:
//! * Fig. 9 — sibling times on 1024 BG/L: sequential ≈ 0.4/0.2/0.2/0.3 s,
//!   concurrent ≈ 0.7/0.6/0.6/0.7 s, nest-phase gain ≈ 36 %;
//! * §4.3.1 — avg ≈ 21 %, max ≈ 33 % improvement over random configs;
//! * Fig. 10 — large nests: ≈ 1 % at 1024 BG/P cores → ≈ 21 % at 8192.

use nestwx_bench::{banner, mean, pacific_parent, random_nests, rng_for, MEASURE_ITERS};
use nestwx_core::{compare_strategies, Planner};
use nestwx_grid::{Domain, NestSpec};
use nestwx_netsim::Machine;

fn main() {
    banner("calibrate", "machine-model calibration anchors");

    // ---- Fig. 9 anchor: Table 2 configuration on BG/L(1024) ----
    let parent = pacific_parent();
    let nests = vec![
        NestSpec::new(394, 418, 3, (10, 10)),
        NestSpec::new(232, 202, 3, (150, 10)),
        NestSpec::new(232, 256, 3, (10, 160)),
        NestSpec::new(313, 337, 3, (150, 160)),
    ];
    let planner = Planner::new(Machine::bgl_rack());
    let cmp = compare_strategies(&planner, &parent, &nests, MEASURE_ITERS).unwrap();
    println!("\n[fig9 anchor] BG/L(1024), Table 2 nests");
    println!(
        "  default per-iteration : {:.3} s (paper ≈ 1.1 s nests + parent)",
        cmp.default_run.per_iteration()
    );
    println!(
        "  parallel per-iteration: {:.3} s",
        cmp.planned_run.per_iteration()
    );
    for i in 0..4 {
        println!(
            "  sibling {}: seq {:.3} s | conc {:.3} s   (paper: {} | {})",
            i + 1,
            cmp.default_run.sibling_per_iter(i),
            cmp.planned_run.sibling_per_iter(i),
            [0.4, 0.2, 0.2, 0.3][i],
            [0.7, 0.6, 0.6, 0.7][i],
        );
    }
    println!(
        "  improvement: {:.2}% (paper nest-phase ≈ 36%)",
        cmp.improvement_pct()
    );
    println!(
        "  MPI_Wait improvement: {:.2}%",
        cmp.mpi_wait_improvement_pct()
    );

    // ---- §4.3.1 anchor: sample of random configs on BG/L(1024) ----
    let mut rng = rng_for("calibrate-85");
    let mut imps = Vec::new();
    for i in 0..12 {
        let k = 2 + (i % 3);
        let nests = random_nests(&mut rng, k, 178 * 202, 394 * 418, &parent);
        let cmp = compare_strategies(&planner, &parent, &nests, MEASURE_ITERS).unwrap();
        imps.push(cmp.improvement_pct());
    }
    println!("\n[sec4.3.1 anchor] 12 random configs, 2-4 siblings, BG/L(1024)");
    println!(
        "  improvement avg {:.2}% (paper 21.14%), max {:.2}% (paper 33.04%), min {:.2}%",
        mean(&imps),
        nestwx_bench::max(&imps),
        imps.iter().copied().fold(f64::INFINITY, f64::min)
    );

    // ---- Fig. 10 anchor: large nests on BG/P ----
    let big_parent = Domain::parent(572, 614, 24.0);
    let large = vec![
        NestSpec::new(586, 643, 3, (10, 10)),
        NestSpec::new(856, 919, 3, (250, 10)),
        NestSpec::new(925, 850, 3, (10, 300)),
    ];
    println!("\n[fig10 anchor] 3 large siblings on BG/P");
    for cores in [1024u32, 2048, 4096, 8192] {
        let planner = Planner::new(Machine::bgp(cores));
        let cmp = compare_strategies(&planner, &big_parent, &large, MEASURE_ITERS).unwrap();
        println!(
            "  {:>5} cores: default {:.3} s, parallel {:.3} s, improvement {:+.2}%",
            cores,
            cmp.default_run.per_iteration(),
            cmp.planned_run.per_iteration(),
            cmp.improvement_pct()
        );
    }
    println!("  (paper: 1.33% at 1024 → 20.64% at 8192)");
}

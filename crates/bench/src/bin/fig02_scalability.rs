//! Fig. 2 — Execution time of a weather simulation with one subdomain on
//! Blue Gene/L, 32 … 1024 cores.
//!
//! Paper setup: parent domain 286×307 (24 km) with a 415×445 subdomain;
//! execution time per iteration saturates as core count grows.
//!
//! Pass `--trace-out <path>` (or set `NESTWX_TRACE`) to dump a Chrome
//! trace of the largest (1024-core) run.

use nestwx_bench::{
    banner, pacific_parent, row, run_parallel, trace_out, write_trace, MEASURE_ITERS,
};
use nestwx_core::{MappingKind, Planner, Strategy};
use nestwx_grid::NestSpec;
use nestwx_netsim::{Machine, ObsConfig};

fn main() {
    banner(
        "fig02",
        "WRF scalability with one 415×445 subdomain on BG/L",
    );
    let parent = pacific_parent();
    let nests = vec![NestSpec::new(415, 445, 3, (70, 80))];
    let widths = [8, 14, 16, 14];
    println!(
        "{}",
        row(
            &[
                "cores".into(),
                "s/iter".into(),
                "speedup".into(),
                "efficiency".into()
            ],
            &widths
        )
    );
    // Each core count is an independent simulation — run them in parallel.
    let cores_list = [32u32, 64, 128, 256, 512, 1024];
    let times = run_parallel(&cores_list, |&cores| {
        let planner = Planner::new(Machine::bgl(cores))
            .strategy(Strategy::Sequential)
            .mapping(MappingKind::Oblivious);
        let rep = planner
            .plan(&parent, &nests)
            .unwrap()
            .simulate(MEASURE_ITERS)
            .unwrap();
        rep.per_iteration()
    });
    let (c0, t0) = (cores_list[0], times[0]);
    for (&cores, &t) in cores_list.iter().zip(&times) {
        let speedup = t0 / t;
        let eff = speedup / (cores as f64 / c0 as f64);
        println!(
            "{}",
            row(
                &[
                    cores.to_string(),
                    format!("{t:.3}"),
                    format!("{speedup:.2}"),
                    format!("{:.0}%", eff * 100.0),
                ],
                &widths
            )
        );
    }
    if let Some(path) = trace_out() {
        let planner = Planner::new(Machine::bgl(*cores_list.last().unwrap()))
            .strategy(Strategy::Sequential)
            .mapping(MappingKind::Oblivious);
        let (_, rec) = planner
            .plan(&parent, &nests)
            .unwrap()
            .simulate_observed(MEASURE_ITERS, ObsConfig::counters())
            .unwrap();
        write_trace(&rec, &path);
    }
    println!("\nPaper shape: strongly diminishing returns approaching 1024 cores");
    println!("(\"the performance of WRF involving a subdomain saturates at about 512\").");
}

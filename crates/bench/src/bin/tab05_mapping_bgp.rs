//! Table 5 + Fig. 12 — Mapping comparison on 4096 BG/P cores: per-iteration
//! times, MPI_Wait improvement, and the reduction in average hops.
//!
//! Paper (Table 5, s/iteration): default 5.43/5.65/5.61; oblivious
//! 3.94/4.20/4.39; partition 3.92/4.1/4.28; multi-level 3.93/4.1/4.39.
//! Fig. 12(b): topology-aware mappings cut average hops by ≈ 50 %.
//!
//! Both the MPI_Wait and hop rows come from the observability layer's
//! recorded step metrics ([`ObsSummary`]). Pass `--trace-out <path>` (or
//! set `NESTWX_TRACE`) to dump a Chrome trace of config 1's
//! multi-level-mapped run.

use nestwx_bench::{
    banner, pacific_parent, random_nests, rng_for, row, run_parallel, trace_out, write_trace,
    MEASURE_ITERS,
};
use nestwx_core::{MappingKind, Planner, Strategy};
use nestwx_grid::NestSpec;
use nestwx_netsim::{Machine, ObsConfig, ObsSummary, SimReport};

fn main() {
    banner(
        "tab05",
        "mapping comparison on BG/P(4096): Table 5 and Fig. 12",
    );
    let parent = pacific_parent();
    let mut rng = rng_for("tab05");
    // Three configurations: two 4-sibling, one 3-sibling (paper's rows).
    let configs: Vec<Vec<NestSpec>> = [4usize, 4, 3]
        .iter()
        .map(|&k| random_nests(&mut rng, k, 250 * 250, 415 * 445, &parent))
        .collect();

    let base = Planner::new(Machine::bgp(4096));
    let widths = [5, 9, 11, 11, 11];
    println!(
        "{}",
        row(
            &[
                "cfg".into(),
                "default".into(),
                "oblivious".into(),
                "partition".into(),
                "multilevel".into()
            ],
            &widths
        )
    );
    // Flatten the independent (config, variant) measurements into one job
    // list and fan out across cores; variant 0 is the default
    // (sequential-strategy) baseline.
    const VARIANTS: [Option<MappingKind>; 4] = [
        None,
        Some(MappingKind::Oblivious),
        Some(MappingKind::Partition),
        Some(MappingKind::MultiLevel),
    ];
    let jobs: Vec<(usize, Option<MappingKind>)> = (0..configs.len())
        .flat_map(|i| VARIANTS.iter().map(move |&v| (i, v)))
        .collect();
    let results = run_parallel(&jobs, |&(i, variant)| -> (SimReport, ObsSummary, f64) {
        let p = match variant {
            None => base
                .clone()
                .strategy(Strategy::Sequential)
                .mapping(MappingKind::Oblivious),
            Some(m) => base.clone().mapping(m),
        };
        let (report, rec) = p
            .plan(&parent, &configs[i])
            .unwrap()
            .simulate_observed(MEASURE_ITERS, ObsConfig::detailed())
            .unwrap();
        let imbalance = rec.analysis().overall_imbalance;
        (report, rec.summary().clone(), imbalance)
    });
    for (i, nests) in configs.iter().enumerate() {
        let [default, obl, par, mul] = &results[i * VARIANTS.len()..(i + 1) * VARIANTS.len()]
        else {
            unreachable!("four variants per config");
        };
        println!(
            "{}",
            row(
                &[
                    format!("{} ({}s)", i + 1, nests.len()),
                    format!("{:.2}", default.0.per_iteration()),
                    format!("{:.2}", obl.0.per_iteration()),
                    format!("{:.2}", par.0.per_iteration()),
                    format!("{:.2}", mul.0.per_iteration()),
                ],
                &widths
            )
        );
        // Fig. 12 rows, rebuilt from recorded step metrics.
        let wimp =
            |r: &(SimReport, ObsSummary, f64)| (1.0 - r.1.halo_wait / default.1.halo_wait) * 100.0;
        println!(
            "{}",
            row(
                &[
                    "".into(),
                    "wait +%".into(),
                    format!("{:.1}", wimp(obl)),
                    format!("{:.1}", wimp(par)),
                    format!("{:.1}", wimp(mul)),
                ],
                &widths
            )
        );
        let hops = |r: &(SimReport, ObsSummary, f64)| {
            (1.0 - r.1.avg_hops() / default.1.avg_hops()) * 100.0
        };
        println!(
            "{}",
            row(
                &[
                    "".into(),
                    "hops -%".into(),
                    format!("{:.1}", hops(obl)),
                    format!("{:.1}", hops(par)),
                    format!("{:.1}", hops(mul)),
                ],
                &widths
            )
        );
        // Per-rank load-imbalance factor (max/mean busy) per variant, from
        // the recorded timelines; the default goes in the second column.
        println!(
            "{}",
            row(
                &[
                    "imbal".into(),
                    format!("{:.3}", default.2),
                    format!("{:.3}", obl.2),
                    format!("{:.3}", par.2),
                    format!("{:.3}", mul.2),
                ],
                &widths
            )
        );
    }
    if let Some(path) = trace_out() {
        let (_, rec) = base
            .clone()
            .mapping(MappingKind::MultiLevel)
            .plan(&parent, &configs[0])
            .unwrap()
            .simulate_observed(MEASURE_ITERS, ObsConfig::counters())
            .unwrap();
        write_trace(&rec, &path);
    }
    println!("\nPaper shape: MPI_Wait falls > 50 % on average for the mapped runs;");
    println!("topology-aware mappings cut average hops ≈ 50 % vs default/oblivious.");
}

//! Ablation study of the design choices DESIGN.md calls out:
//!
//! 1. **aspect-ratio feature** — predictor with the 2-D (aspect, points)
//!    feature space vs points alone (§3.1's motivation);
//! 2. **split dimension** — Algorithm 1 splitting along the longer vs
//!    shorter dimension (Fig. 4), measured end-to-end on the simulator;
//! 3. **fold level** — partition mapping's minimal fold vs multi-level's
//!    extra fold, via hop metrics of nest and parent edges;
//! 4. **physics jitter** — how the modelled load imbalance contributes to
//!    the default strategy's MPI_Wait.

use nestwx_alloc::partition::{partition_grid_with, SplitDim};
use nestwx_bench::{banner, mean, pacific_parent, random_nests, rng_for, MEASURE_ITERS};
use nestwx_core::profile::{fit_predictor, measure_domain_time, profile_basis, PROFILE_RANKS};
use nestwx_core::{compare_strategies, Planner};
use nestwx_grid::{DomainFeatures, ProcGrid, Rect};
use nestwx_netsim::{ExecStrategy, IoMode, Machine, Simulation};
use nestwx_predict::NaivePointsModel;
use nestwx_topo::metrics::{halo_edges, nested_iteration_edges, CommStats};
use nestwx_topo::Mapping;

fn main() {
    banner("ablation", "design-choice ablations");

    // ---- 1. aspect-ratio feature ----
    println!("\n[1] predictor feature space (BG/L 64-rank profiling):");
    let machine = Machine::bgl(64);
    let model2d = fit_predictor(&machine, 42);
    let naive = NaivePointsModel::fit(&profile_basis(&machine, 42));
    let tests = [
        (205u32, 410u32),
        (310, 215),
        (188, 300),
        (365, 244),
        (240, 240),
    ];
    let mut e2 = Vec::new();
    let mut e1 = Vec::new();
    for (nx, ny) in tests {
        let truth = measure_domain_time(&machine, nx, ny, PROFILE_RANKS);
        let f = DomainFeatures::from_dims(nx, ny);
        e2.push((model2d.predict(&f).unwrap() - truth).abs() / truth * 100.0);
        e1.push((naive.predict(&f) - truth).abs() / truth * 100.0);
    }
    println!(
        "  (aspect, points) interpolation: mean error {:.2} %",
        mean(&e2)
    );
    println!(
        "  points-only linear model      : mean error {:.2} %",
        mean(&e1)
    );

    // ---- 2. split dimension, end to end ----
    println!("\n[2] Algorithm 1 split dimension (BG/L 1024, 4 siblings, 5 configs):");
    let parent = pacific_parent();
    let mut rng = rng_for("ablation-split");
    let machine = Machine::bgl_rack();
    let mut t_long = Vec::new();
    let mut t_short = Vec::new();
    for _ in 0..5 {
        let nests = random_nests(&mut rng, 4, 178 * 202, 394 * 418, &parent);
        let cfg = nestwx_grid::NestedConfig::new(parent.clone(), nests.clone()).unwrap();
        let ratios: Vec<f64> = nests.iter().map(|n| n.points() as f64).collect();
        let grid = ProcGrid::new(32, 32);
        for (dim, acc) in [
            (SplitDim::Longer, &mut t_long),
            (SplitDim::Shorter, &mut t_short),
        ] {
            let parts: Vec<Rect> = partition_grid_with(&grid, &ratios, dim)
                .unwrap()
                .iter()
                .map(|p| p.rect)
                .collect();
            let mapping = Mapping::partition(machine.shape, &grid, &parts).unwrap();
            let rep = Simulation::new(
                &machine,
                grid,
                &cfg,
                ExecStrategy::Concurrent { partitions: parts },
                mapping,
                IoMode::None,
                None,
            )
            .unwrap()
            .run(MEASURE_ITERS);
            acc.push(rep.per_iteration());
        }
    }
    println!(
        "  split along longer dimension : {:.3} s/iter (mean)",
        mean(&t_long)
    );
    println!(
        "  split along shorter dimension: {:.3} s/iter (mean)",
        mean(&t_short)
    );
    println!(
        "  → longer-dimension split is {:.1} % faster",
        (1.0 - mean(&t_long) / mean(&t_short)) * 100.0
    );

    // ---- 3. fold level (hop metrics) ----
    println!("\n[3] mapping fold level (BG/L rack, Table 2 partitions):");
    let shape = machine.shape;
    let grid = ProcGrid::new(32, 32);
    let parts = [
        Rect::new(0, 0, 18, 24),
        Rect::new(0, 24, 18, 8),
        Rect::new(18, 0, 14, 12),
        Rect::new(18, 12, 14, 20),
    ];
    let nest_edges: Vec<_> = parts
        .iter()
        .flat_map(|p| halo_edges(&grid, p, 1.0))
        .collect();
    let all_edges = nested_iteration_edges(&grid, &parts, 1.0, 1.0, 3);
    for (name, m) in [
        ("oblivious      ", Mapping::oblivious(shape, 1024).unwrap()),
        (
            "partition fold ",
            Mapping::partition(shape, &grid, &parts).unwrap(),
        ),
        (
            "multilevel fold",
            Mapping::multilevel(shape, &grid, &parts).unwrap(),
        ),
    ] {
        let sn = CommStats::compute(&m, &nest_edges);
        let sa = CommStats::compute(&m, &all_edges);
        println!(
            "  {name}: nest avg {:.2} hops; nest+parent avg {:.2} hops, max link load {:.0}",
            sn.avg_hops, sa.avg_hops, sa.max_link_bytes
        );
    }

    // ---- 4. physics jitter ----
    println!("\n[4] physics load-imbalance jitter (BG/L 1024, 4 configs):");
    let mut rng = rng_for("ablation-jitter");
    let configs: Vec<Vec<nestwx_grid::NestSpec>> = (0..4)
        .map(|_| random_nests(&mut rng, 3, 178 * 202, 394 * 418, &parent))
        .collect();
    for jitter in [0.0, 0.08, 0.16] {
        let mut m = Machine::bgl_rack();
        m.compute.jitter = jitter;
        let planner = Planner::new(m);
        let mut imps = Vec::new();
        let mut waits = Vec::new();
        for nests in &configs {
            let cmp = compare_strategies(&planner, &parent, nests, MEASURE_ITERS).unwrap();
            imps.push(cmp.improvement_pct());
            waits.push(cmp.default_run.mpi_wait_total);
        }
        println!(
            "  jitter ±{:>2.0} %: improvement {:.2} %, default MPI_Wait {:.0} rank-s",
            jitter * 100.0,
            mean(&imps),
            mean(&waits)
        );
    }
}

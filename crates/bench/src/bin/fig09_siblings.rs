//! Table 2 + Fig. 9 — The 4-sibling configuration on 1024 BG/L cores:
//! processor allocation per sibling and the stacked sibling execution
//! times.
//!
//! Paper: nests 394×418, 232×202, 232×256, 313×337 allocated 18×24, 18×8,
//! 14×12, 14×20 processors; sequential sibling times 0.4+0.2+0.2+0.3 =
//! 1.1 s vs concurrent max ≈ 0.7 s → 36 % nest-phase gain.

use nestwx_bench::{banner, pacific_parent, row, MEASURE_ITERS};
use nestwx_core::{compare_strategies, Planner};
use nestwx_grid::NestSpec;
use nestwx_netsim::Machine;

fn main() {
    banner(
        "fig09",
        "4-sibling allocation and sibling times on BG/L(1024)",
    );
    let parent = pacific_parent();
    let nests = vec![
        NestSpec::new(394, 418, 3, (10, 10)),
        NestSpec::new(232, 202, 3, (150, 10)),
        NestSpec::new(232, 256, 3, (10, 160)),
        NestSpec::new(313, 337, 3, (150, 160)),
    ];
    let planner = Planner::new(Machine::bgl_rack());
    let plan = planner.plan(&parent, &nests).unwrap();

    println!("\nTable 2 — sibling configurations:");
    let widths = [10, 12, 12, 14, 14];
    println!(
        "{}",
        row(
            &[
                "sibling".into(),
                "nest size".into(),
                "procs".into(),
                "ours".into(),
                "paper".into()
            ],
            &widths
        )
    );
    let paper_procs = ["18x24", "18x8", "14x12", "14x20"];
    for (i, p) in plan.partitions.iter().enumerate() {
        println!(
            "{}",
            row(
                &[
                    (i + 1).to_string(),
                    format!("{}x{}", nests[i].nx, nests[i].ny),
                    p.rect.area().to_string(),
                    format!("{}x{}", p.rect.w, p.rect.h),
                    paper_procs[i].into(),
                ],
                &widths
            )
        );
    }

    let cmp = compare_strategies(&planner, &parent, &nests, MEASURE_ITERS).unwrap();
    println!("\nFig. 9 — sibling execution times per iteration (s):");
    let widths = [10, 14, 14, 16];
    println!(
        "{}",
        row(
            &[
                "sibling".into(),
                "sequential".into(),
                "concurrent".into(),
                "paper seq|conc".into()
            ],
            &widths
        )
    );
    let paper = [(0.4, 0.7), (0.2, 0.6), (0.2, 0.6), (0.3, 0.7)];
    let mut seq_sum = 0.0;
    let mut conc_max: f64 = 0.0;
    for (i, paper_row) in paper.iter().enumerate() {
        let s = cmp.default_run.sibling_per_iter(i);
        let c = cmp.planned_run.sibling_per_iter(i);
        seq_sum += s;
        conc_max = conc_max.max(c);
        println!(
            "{}",
            row(
                &[
                    (i + 1).to_string(),
                    format!("{s:.3}"),
                    format!("{c:.3}"),
                    format!("{:.1} | {:.1}", paper_row.0, paper_row.1),
                ],
                &widths
            )
        );
    }
    println!(
        "\nnest phase: sequential stack {seq_sum:.3} s vs concurrent max {conc_max:.3} s → {:.1} % gain (paper: 1.1 vs 0.7 s → 36 %)",
        (1.0 - conc_max / seq_sum) * 100.0
    );
    println!(
        "overall per-iteration improvement: {:.2} %",
        cmp.improvement_pct()
    );
}

//! CI performance-regression gate over `BENCH_netsim.json`,
//! `BENCH_serve.json`, `BENCH_sweep.json` and `BENCH_fleet.json`.
//!
//! Usage:
//!
//! ```text
//! perf_gate <baseline.json> <current.json>           # netsim steps/s gate
//! perf_gate --serve <baseline.json> <current.json>   # serve throughput gate
//! perf_gate --sweep <baseline.json> <current.json>   # sweep engine gate
//! perf_gate --fleet <baseline.json> <current.json>   # fleet socket-halo gate
//! ```
//!
//! Compares the compiled engine's steps/second in `current` against the
//! committed `baseline`, per rank count. Fails (exit 1) when any size
//! regresses by more than the tolerance — `NESTWX_PERF_TOLERANCE_PCT`,
//! default 20 % (CI runners are shared and jittery; the gate catches
//! step-function regressions, not noise). Also fails when `current`
//! reports `reports_identical: false` (compiled engine diverged from the
//! reference oracle) or `obs_identical: false` (observation perturbed the
//! simulation) — those are correctness regressions, tolerance never
//! applies.
//!
//! The `--serve` mode gates `throughput_rps` from `bench_serve` the same
//! way, and unconditionally fails on serving-correctness regressions:
//! `byte_identical: false`, non-zero `protocol_errors`, or a cache hit
//! rate under 90 % on the hot working set. When the current file carries
//! the flight-recorder overhead figures (`recorder_overhead_pct` from the
//! paired recording-on/off hot-set passes), the gate caps the overhead at
//! `NESTWX_PERF_TRACE_OVERHEAD_PCT` percent (default 5) — an absolute
//! bound, so span recording must stay cheap in every run. When the file
//! carries a `churn` section (client-churn mode of `bench_serve`), the gate also
//! requires a clean drain, gates churn flood throughput with the same
//! tolerance, and bounds peak RSS (vs. the baseline's churn RSS, or the
//! absolute `NESTWX_PERF_MAX_RSS_MB` cap — default 256 — when the baseline
//! predates churn). A *missing baseline file* is tolerated in `--serve`
//! mode (PASS with a note) so the gate can ship in the same change that
//! introduces the benchmark.
//!
//! The `--sweep` mode gates `bench_serve --sweep` output: cold-sweep
//! `scenarios_per_sec` and cold-vs-warm `warm_speedup` with the same
//! tolerance, `dedup_ratio` exactly (the spec is compiled in, so any
//! drift is a determinism bug, not noise), and — unconditionally —
//! `byte_identical: true`, a 100 % warm disk-hit rate and zero scenario
//! errors. A missing baseline is tolerated like `--serve`.
//!
//! The `--fleet` mode gates `bench_fleet` output: per-worker-count
//! `iters_per_sec` with the same tolerance, and — unconditionally —
//! `digests_match: true` at the top level and per size (a socket fleet
//! that diverges from the in-process run is a correctness bug, never
//! noise). A missing baseline is tolerated like `--serve`.
//!
//! Faster-than-baseline results pass with a note; refresh the committed
//! baseline by running `bench_netsim` (or `bench_serve`) on a quiet
//! machine.

use nestwx_bench::env_f64;
use serde_json::Value;
use std::process::ExitCode;

fn tolerance_pct() -> f64 {
    env_f64("NESTWX_PERF_TOLERANCE_PCT", 20.0)
}

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e:?}"))
}

/// `results` array of a bench file, as `(ranks, compiled steps/s)` pairs in
/// file order, plus the per-entry flag map for correctness checks.
fn results<'a>(v: &'a Value, path: &str) -> Result<Vec<(u64, f64, &'a Value)>, String> {
    let arr = v
        .get("results")
        .and_then(|r| r.as_array())
        .ok_or_else(|| format!("{path}: missing results array"))?;
    arr.iter()
        .map(|entry| {
            let ranks = entry
                .get("ranks")
                .and_then(|r| r.as_u64())
                .ok_or_else(|| format!("{path}: result entry missing ranks"))?;
            let sps = entry
                .get("compiled")
                .and_then(|c| c.get("steps_per_sec"))
                .and_then(|s| s.as_f64())
                .ok_or_else(|| {
                    format!("{path}: entry ranks={ranks} missing compiled.steps_per_sec")
                })?;
            Ok((ranks, sps, entry))
        })
        .collect()
}

fn bool_flag(entry: &Value, key: &str) -> Option<bool> {
    entry.get(key).and_then(|b| b.as_bool())
}

/// The `--serve` gate: throughput with tolerance, correctness flags
/// unconditionally, missing baseline tolerated.
fn run_serve(baseline_path: &str, current_path: &str) -> Result<bool, String> {
    let tol = tolerance_pct();
    let current = load(current_path)?;
    let mut ok = true;

    let hit_rate = current
        .get("cache_hit_rate")
        .and_then(|v| v.as_f64())
        .ok_or_else(|| format!("{current_path}: missing cache_hit_rate"))?;
    let throughput = current
        .get("throughput_rps")
        .and_then(|v| v.as_f64())
        .ok_or_else(|| format!("{current_path}: missing throughput_rps"))?;
    let protocol_errors = current
        .get("protocol_errors")
        .and_then(|v| v.as_u64())
        .unwrap_or(0);
    let byte_identical = bool_flag(&current, "byte_identical").unwrap_or(false);

    println!("serve gate: tolerance {tol:.0}% (NESTWX_PERF_TOLERANCE_PCT)");
    if !byte_identical {
        println!("serve gate: byte_identical is false  FAIL");
        ok = false;
    }
    if protocol_errors != 0 {
        println!("serve gate: protocol_errors = {protocol_errors}  FAIL");
        ok = false;
    }
    if hit_rate < 0.90 {
        println!(
            "serve gate: cache hit rate {:.1}% < 90%  FAIL",
            hit_rate * 100.0
        );
        ok = false;
    } else {
        println!("serve gate: cache hit rate {:.1}%  PASS", hit_rate * 100.0);
    }

    let baseline = match load(baseline_path) {
        Err(_) if !std::path::Path::new(baseline_path).exists() => {
            println!(
                "serve gate: no baseline at {baseline_path} — current {throughput:.0} req/s \
                 PASS (first run; commit {current_path} as the baseline)"
            );
            None
        }
        Err(e) => return Err(e),
        Ok(baseline) => {
            let base_rps = baseline
                .get("throughput_rps")
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("{baseline_path}: missing throughput_rps"))?;
            let delta_pct = (throughput / base_rps - 1.0) * 100.0;
            let pass = delta_pct >= -tol;
            println!(
                "serve gate: baseline {base_rps:.0} req/s, current {throughput:.0} req/s \
                 ({delta_pct:+.1}%)  {}",
                if pass {
                    if delta_pct > tol {
                        "PASS (faster — consider refreshing baseline)"
                    } else {
                        "PASS"
                    }
                } else {
                    "FAIL (regression beyond tolerance)"
                }
            );
            ok &= pass;
            Some(baseline)
        }
    };

    ok &= gate_recorder(&current);
    ok &= gate_churn(&current, baseline.as_ref(), tol)?;
    Ok(ok)
}

/// Gates flight-recorder overhead when the bench measured it: the hot-set
/// throughput with span recording on may trail the recording-off run by
/// at most `NESTWX_PERF_TRACE_OVERHEAD_PCT` percent (default 5). This is
/// an absolute cap, not a baseline comparison — recording must stay cheap
/// in every run, not merely no worse than last time. Files from external
/// (`--addr`) benches carry no recorder section and skip the gate.
fn gate_recorder(current: &Value) -> bool {
    let Some(pct) = current
        .get("recorder_overhead_pct")
        .and_then(|v| v.as_f64())
    else {
        println!("serve gate: no recorder_overhead_pct in current — skipping recorder gate");
        return true;
    };
    let cap = env_f64("NESTWX_PERF_TRACE_OVERHEAD_PCT", 5.0);
    let on = current
        .get("hot_rps_recording_on")
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);
    let off = current
        .get("hot_rps_recording_off")
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);
    let pass = pct <= cap;
    println!(
        "serve gate: recorder overhead {pct:.2}% ({on:.0} req/s on / {off:.0} req/s off) \
         vs cap {cap:.0}% (NESTWX_PERF_TRACE_OVERHEAD_PCT)  {}",
        if pass {
            "PASS"
        } else {
            "FAIL (span recording too expensive)"
        }
    );
    pass
}

/// Gates the churn section of a serve bench file when present: drain must
/// stay clean, flood throughput may not regress past tolerance, and peak
/// RSS may not grow past tolerance (or an absolute `NESTWX_PERF_MAX_RSS_MB`
/// cap when the baseline predates churn). Older baselines without a `churn`
/// section are tolerated so the gate can ship with the benchmark.
fn gate_churn(current: &Value, baseline: Option<&Value>, tol: f64) -> Result<bool, String> {
    let Some(churn) = current.get("churn").filter(|c| !c.is_null()) else {
        println!("serve gate: no churn section in current — skipping churn gate");
        return Ok(true);
    };
    let mut ok = true;
    let rps = churn
        .get("throughput_rps")
        .and_then(|v| v.as_f64())
        .ok_or_else(|| "churn section missing throughput_rps".to_string())?;
    let rss = churn
        .get("max_rss_mb")
        .and_then(|v| v.as_f64())
        .ok_or_else(|| "churn section missing max_rss_mb".to_string())?;
    if churn.get("drain_clean").and_then(|v| v.as_bool()) != Some(true) {
        println!("serve gate: churn drain_clean is not true  FAIL");
        ok = false;
    }

    let base_churn = baseline
        .and_then(|b| b.get("churn"))
        .filter(|c| !c.is_null());
    match base_churn
        .and_then(|c| c.get("throughput_rps"))
        .and_then(|v| v.as_f64())
    {
        Some(base_rps) => {
            let delta_pct = (rps / base_rps - 1.0) * 100.0;
            let pass = delta_pct >= -tol;
            println!(
                "serve gate: churn baseline {base_rps:.0} req/s, current {rps:.0} req/s \
                 ({delta_pct:+.1}%)  {}",
                if pass {
                    "PASS"
                } else {
                    "FAIL (regression beyond tolerance)"
                }
            );
            ok &= pass;
        }
        None => println!(
            "serve gate: baseline has no churn throughput — current {rps:.0} req/s \
             PASS (refresh the baseline to start gating)"
        ),
    }
    match base_churn
        .and_then(|c| c.get("max_rss_mb"))
        .and_then(|v| v.as_f64())
    {
        Some(base_rss) if base_rss > 0.0 => {
            let delta_pct = (rss / base_rss - 1.0) * 100.0;
            let pass = delta_pct <= tol;
            println!(
                "serve gate: churn baseline RSS {base_rss:.1} MiB, current {rss:.1} MiB \
                 ({delta_pct:+.1}%)  {}",
                if pass {
                    "PASS"
                } else {
                    "FAIL (memory growth beyond tolerance)"
                }
            );
            ok &= pass;
        }
        _ => {
            let cap = env_f64("NESTWX_PERF_MAX_RSS_MB", 256.0);
            let pass = rss <= cap;
            println!(
                "serve gate: no baseline churn RSS — current {rss:.1} MiB vs absolute cap \
                 {cap:.0} MiB  {}",
                if pass {
                    "PASS"
                } else {
                    "FAIL (over NESTWX_PERF_MAX_RSS_MB)"
                }
            );
            ok &= pass;
        }
    }
    Ok(ok)
}

/// A required f64 field of a bench file.
fn f64_field(v: &Value, path: &str, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(|x| x.as_f64())
        .ok_or_else(|| format!("{path}: missing {key}"))
}

/// The `--sweep` gate: scenario throughput and warm speedup with
/// tolerance, dedup ratio exactly, correctness flags unconditionally,
/// missing baseline tolerated.
fn run_sweep(baseline_path: &str, current_path: &str) -> Result<bool, String> {
    let tol = tolerance_pct();
    let current = load(current_path)?;
    let mut ok = true;

    let sps = f64_field(&current, current_path, "scenarios_per_sec")?;
    let speedup = f64_field(&current, current_path, "warm_speedup")?;
    let dedup = f64_field(&current, current_path, "dedup_ratio")?;
    let hit_rate = f64_field(&current, current_path, "warm_hit_rate")?;
    let errors = current.get("errors").and_then(|v| v.as_u64()).unwrap_or(0);
    let byte_identical = bool_flag(&current, "byte_identical").unwrap_or(false);

    println!("sweep gate: tolerance {tol:.0}% (NESTWX_PERF_TOLERANCE_PCT)");
    if !byte_identical {
        println!("sweep gate: byte_identical is false  FAIL");
        ok = false;
    }
    if errors != 0 {
        println!("sweep gate: {errors} scenario errors  FAIL");
        ok = false;
    }
    if hit_rate < 1.0 {
        println!(
            "sweep gate: warm hit rate {:.1}% < 100%  FAIL (warm sweep must replay from disk)",
            hit_rate * 100.0
        );
        ok = false;
    } else {
        println!("sweep gate: warm hit rate 100%  PASS");
    }

    match load(baseline_path) {
        Err(_) if !std::path::Path::new(baseline_path).exists() => {
            println!(
                "sweep gate: no baseline at {baseline_path} — current {sps:.0} scenarios/s \
                 PASS (first run; commit {current_path} as the baseline)"
            );
        }
        Err(e) => return Err(e),
        Ok(baseline) => {
            let base_sps = f64_field(&baseline, baseline_path, "scenarios_per_sec")?;
            let delta_pct = (sps / base_sps - 1.0) * 100.0;
            let pass = delta_pct >= -tol;
            println!(
                "sweep gate: baseline {base_sps:.0} scenarios/s, current {sps:.0} scenarios/s \
                 ({delta_pct:+.1}%)  {}",
                if pass {
                    if delta_pct > tol {
                        "PASS (faster — consider refreshing baseline)"
                    } else {
                        "PASS"
                    }
                } else {
                    "FAIL (regression beyond tolerance)"
                }
            );
            ok &= pass;

            let base_speedup = f64_field(&baseline, baseline_path, "warm_speedup")?;
            let delta_pct = (speedup / base_speedup - 1.0) * 100.0;
            let pass = delta_pct >= -tol;
            println!(
                "sweep gate: baseline warm speedup {base_speedup:.1}x, current {speedup:.1}x \
                 ({delta_pct:+.1}%)  {}",
                if pass {
                    "PASS"
                } else {
                    "FAIL (warm replay slowed beyond tolerance)"
                }
            );
            ok &= pass;

            // The spec is compiled into the benchmark: the dedup ratio is
            // a determinism invariant, not a measurement.
            let base_dedup = f64_field(&baseline, baseline_path, "dedup_ratio")?;
            if (dedup - base_dedup).abs() > 1e-9 {
                println!(
                    "sweep gate: dedup ratio {dedup:.4} != baseline {base_dedup:.4}  FAIL \
                     (expansion or canonical-digest drift)"
                );
                ok = false;
            } else {
                println!("sweep gate: dedup ratio {dedup:.2}  PASS");
            }
        }
    }
    Ok(ok)
}

/// The `--fleet` gate: bitwise identity unconditionally, per-size socket
/// throughput with tolerance, missing baseline tolerated.
fn run_fleet(baseline_path: &str, current_path: &str) -> Result<bool, String> {
    let tol = tolerance_pct();
    let current = load(current_path)?;
    let mut ok = true;

    println!("fleet gate: tolerance {tol:.0}% (NESTWX_PERF_TOLERANCE_PCT)");
    if bool_flag(&current, "digests_match") != Some(true) {
        println!("fleet gate: digests_match is not true  FAIL (socket fleet diverged)");
        ok = false;
    }
    let entries = |v: &Value, path: &str| -> Result<Vec<(u64, f64, bool)>, String> {
        let arr = v
            .get("results")
            .and_then(|r| r.as_array())
            .ok_or_else(|| format!("{path}: missing results array"))?;
        arr.iter()
            .map(|e| {
                let workers = e
                    .get("workers")
                    .and_then(|w| w.as_u64())
                    .ok_or_else(|| format!("{path}: result entry missing workers"))?;
                let ips = e
                    .get("iters_per_sec")
                    .and_then(|s| s.as_f64())
                    .ok_or_else(|| format!("{path}: workers={workers} missing iters_per_sec"))?;
                let matched = bool_flag(e, "digests_match").unwrap_or(false);
                Ok((workers, ips, matched))
            })
            .collect()
    };
    let cur = entries(&current, current_path)?;
    for (workers, _, matched) in &cur {
        if !matched {
            println!("fleet gate: {workers}-worker digests_match is false  FAIL");
            ok = false;
        }
    }

    match load(baseline_path) {
        Err(_) if !std::path::Path::new(baseline_path).exists() => {
            println!(
                "fleet gate: no baseline at {baseline_path} — PASS (first run; commit \
                 {current_path} as the baseline)"
            );
        }
        Err(e) => return Err(e),
        Ok(baseline) => {
            for (workers, base_ips, _) in entries(&baseline, baseline_path)? {
                let Some((_, cur_ips, _)) = cur.iter().find(|(w, _, _)| *w == workers) else {
                    println!("fleet gate: {workers}-worker entry missing in current  FAIL");
                    ok = false;
                    continue;
                };
                let delta_pct = (cur_ips / base_ips - 1.0) * 100.0;
                let pass = delta_pct >= -tol;
                println!(
                    "fleet gate: {workers} worker(s) baseline {base_ips:.1} iters/s, current \
                     {cur_ips:.1} iters/s ({delta_pct:+.1}%)  {}",
                    if pass {
                        if delta_pct > tol {
                            "PASS (faster — consider refreshing baseline)"
                        } else {
                            "PASS"
                        }
                    } else {
                        "FAIL (regression beyond tolerance)"
                    }
                );
                ok &= pass;
            }
        }
    }
    Ok(ok)
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let ["--serve", baseline_path, current_path] = args
        .iter()
        .map(String::as_str)
        .collect::<Vec<_>>()
        .as_slice()
    {
        return run_serve(baseline_path, current_path);
    }
    if let ["--sweep", baseline_path, current_path] = args
        .iter()
        .map(String::as_str)
        .collect::<Vec<_>>()
        .as_slice()
    {
        return run_sweep(baseline_path, current_path);
    }
    if let ["--fleet", baseline_path, current_path] = args
        .iter()
        .map(String::as_str)
        .collect::<Vec<_>>()
        .as_slice()
    {
        return run_fleet(baseline_path, current_path);
    }
    let [baseline_path, current_path] = args.as_slice() else {
        return Err(
            "usage: perf_gate [--serve|--sweep|--fleet] <baseline.json> <current.json>".into(),
        );
    };
    let tol = tolerance_pct();
    let baseline = load(baseline_path)?;
    let current = load(current_path)?;
    let base = results(&baseline, baseline_path)?;
    let cur = results(&current, current_path)?;

    println!("perf gate: tolerance {tol:.0}% (NESTWX_PERF_TOLERANCE_PCT)");
    println!(
        "{:>7}  {:>14}  {:>14}  {:>8}  verdict",
        "ranks", "baseline st/s", "current st/s", "delta"
    );
    let mut ok = true;
    for (ranks, base_sps, _) in &base {
        let Some((_, cur_sps, entry)) = cur.iter().find(|(r, _, _)| r == ranks) else {
            println!(
                "{ranks:>7}  {base_sps:>14.0}  {:>14}  {:>8}  FAIL (missing in current)",
                "-", "-"
            );
            ok = false;
            continue;
        };
        // Correctness flags gate unconditionally.
        for key in ["reports_identical", "obs_identical"] {
            // obs_identical lives under "obs" in current files; accept both
            // layouts so older baselines still parse.
            let flag =
                bool_flag(entry, key).or_else(|| entry.get("obs").and_then(|o| bool_flag(o, key)));
            if flag == Some(false) {
                println!("{ranks:>7}  correctness flag {key} is false  FAIL");
                ok = false;
            }
        }
        let delta_pct = (cur_sps / base_sps - 1.0) * 100.0;
        let pass = delta_pct >= -tol;
        println!(
            "{ranks:>7}  {base_sps:>14.0}  {cur_sps:>14.0}  {delta_pct:>+7.1}%  {}",
            if pass {
                if delta_pct > tol {
                    "PASS (faster — consider refreshing baseline)"
                } else {
                    "PASS"
                }
            } else {
                "FAIL (regression beyond tolerance)"
            }
        );
        ok &= pass;
    }
    Ok(ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => {
            println!("perf gate: PASS");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            eprintln!("perf gate: FAIL");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("perf gate: error: {e}");
            ExitCode::FAILURE
        }
    }
}
